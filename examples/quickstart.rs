//! Quickstart: the SC substrate in five minutes.
//!
//! Walks the deterministic thermometer pipeline end to end: encode values,
//! multiply with a truth table, accumulate with a bitonic sorting network,
//! re-scale, and push a value through the paper's two nonlinear blocks —
//! the Fig. 4 ternary GELU and the iterative approximate softmax.
//!
//! Run with: `cargo run -p ascend-examples --bin quickstart`

#![forbid(unsafe_code)]
use ascend_examples::section;
use sc_core::encoding::Thermometer;
use sc_core::rescale::{rescale, RescaleMode};
use sc_core::{bsn, ttmul};
use sc_nonlinear::gate_si::ternary_gelu;
use sc_nonlinear::ref_fn;
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn main() -> Result<(), sc_core::ScError> {
    section("thermometer encoding (paper §II-A)");
    let enc = Thermometer::new(8, 0.25)?; // 8-bit BSL, scale α = 0.25
    let a = enc.encode(0.75);
    let b = enc.encode(-0.5);
    println!("encode( 0.75) -> bits {} (level {:+})", a.bits(), a.level());
    println!("encode(-0.50) -> bits {} (level {:+})", b.bits(), b.level());

    section("truth-table multiplication (exact)");
    let prod = ttmul::mul(&a, &b)?;
    println!(
        "0.75 x -0.5 = {} (level {:+} at scale {})",
        prod.value(),
        prod.level(),
        prod.scale()
    );

    section("BSN addition = concatenate + sort (paper §II-A)");
    let sum = bsn::add(&[&a, &b])?;
    println!("0.75 + -0.5 = {} over {} bits: {}", sum.value(), sum.len(), sum.bits());

    section("re-scaling block: sub-sample by 4 (scale x4)");
    let shorter = rescale(&sum, 4, RescaleMode::Round)?;
    println!(
        "same value, quarter the bits: {} over {} bits (1 LSB = {})",
        shorter.value(),
        shorter.len(),
        shorter.scale()
    );

    section("gate-assisted SI ternary GELU (paper Fig. 4)");
    let gelu = ternary_gelu()?;
    for x in [-3.0, -1.0, 0.0, 1.0, 3.0] {
        let y = gelu.eval(&gelu.input().encode(x));
        println!(
            "GELU({x:+.1}) -> level {:+} (value {:+.2}, exact {:+.3})",
            y.level(),
            y.value(),
            ref_fn::gelu(x)
        );
    }
    println!(
        "threshold signals: {} (paper uses 3), assist gates: {}",
        gelu.threshold_count(),
        gelu.assist_gate_count()
    );

    section("iterative approximate softmax (paper Alg. 1 / Fig. 5)");
    let block = IterSoftmaxBlock::new(IterSoftmaxConfig {
        m: 8,
        k: 3,
        bx: 4,
        ax: 1.0,
        by: 16,
        ay: 0.125,
        s1: 4,
        s2: 8,
        mode: RescaleMode::Round,
    })?;
    let logits = [2.0, -1.0, 0.5, 0.0, -0.5, 1.0, -2.0, 0.2];
    let sc = block.run(&logits)?;
    let exact = ref_fn::softmax(&logits);
    println!("logit   SC-softmax   exact");
    for ((l, s), e) in logits.iter().zip(sc.iter()).zip(exact.iter()) {
        println!("{l:+.1}     {s:.4}      {e:.4}");
    }
    Ok(())
}
