//! Attention softmax on SC hardware: accuracy and cost of the iterative
//! approximate softmax block versus the FSM baseline, on attention-shaped
//! logit rows.
//!
//! Run with: `cargo run -p ascend-examples --bin sc_attention`

#![forbid(unsafe_code)]
use ascend::report::{eng, TextTable};
use ascend_examples::section;
use sc_core::rescale::RescaleMode;
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::mae::InputDist;
use sc_nonlinear::ref_fn;
use sc_nonlinear::softmax_fsm::{FsmSoftmax, FsmSoftmaxConfig};
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn main() -> Result<(), sc_core::ScError> {
    let m = 64;
    let rows = InputDist::Gaussian { mean: 0.0, sigma: 2.0, min: -5.0, max: 5.0 }
        .sample_rows(40, m, 99);

    section("one attention row through both designs");
    let ours = IterSoftmaxBlock::new(IterSoftmaxConfig {
        m,
        ay: 1.0 / m as f64,
        ax: 2.5,
        ..IterSoftmaxConfig::default()
    })?;
    let fsm = FsmSoftmax::new(FsmSoftmaxConfig { m, bsl: 1024, ..Default::default() })?;
    let row = &rows[0];
    let exact = ref_fn::softmax(row);
    let got_ours = ours.run(row)?;
    let got_fsm = fsm.run(row)?;
    let top = exact
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!("top token {top}: exact {:.4}  ours {:.4}  fsm {:.4}", exact[top], got_ours[top], got_fsm[top]);

    section("batch MAE and hardware cost");
    let lib = CellLibrary::paper_calibrated();
    let mut table = TextTable::new(vec!["Design", "MAE", "Area (um2)", "Delay (ns)", "ADP"]);
    let mae_ours = ours.mae_levels(&rows)?;
    let cost_ours = blocks::iter_softmax(&lib, &ours)?;
    table.row(vec![
        "iterative (ours)".into(),
        format!("{mae_ours:.4}"),
        eng(cost_ours.area_um2),
        eng(cost_ours.delay_ns()),
        eng(cost_ours.adp()),
    ]);
    let mut mae_fsm = 0.0;
    for row in &rows {
        let got = fsm.run(row)?;
        let want = ref_fn::softmax(row);
        mae_fsm += got
            .iter()
            .zip(want.iter())
            .map(|(g, w)| (g - w).abs())
            .sum::<f64>()
            / m as f64;
    }
    mae_fsm /= rows.len() as f64;
    let cost_fsm =
        blocks::fsm_softmax(&lib, &FsmSoftmaxConfig { m, bsl: 1024, ..Default::default() });
    table.row(vec![
        "FSM baseline [17]".into(),
        format!("{mae_fsm:.4}"),
        eng(cost_fsm.area_um2),
        eng(cost_fsm.delay_ns()),
        eng(cost_fsm.adp()),
    ]);
    println!("{}", table.render());
    println!(
        "ADP advantage: x{:.1} in favour of the iterative block",
        cost_fsm.adp() / cost_ours.adp()
    );

    section("effect of the rounding mode (re-scaling blocks)");
    for mode in [RescaleMode::Floor, RescaleMode::Round, RescaleMode::Ceil] {
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig {
            m,
            ay: 1.0 / m as f64,
            ax: 2.5,
            mode,
            ..IterSoftmaxConfig::default()
        })?;
        println!("{mode:?}: MAE {:.4}", block.mae_levels(&rows)?);
    }
    Ok(())
}
