//! Interactive-scale design-space exploration: a reduced Fig. 8 sweep that
//! prints the ADP/MAE cloud and its Pareto front for one `Bx`.
//!
//! Run with: `cargo run --release -p ascend-examples --bin pareto_explorer [bx]`

#![forbid(unsafe_code)]
use ascend::report::{eng, TextTable};
use ascend_examples::section;
use sc_core::rescale::RescaleMode;
use sc_hw::pareto::{pareto_front, DesignPoint};
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::mae::InputDist;
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn main() {
    let bx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let m = 64usize;
    let lib = CellLibrary::paper_calibrated();
    let rows = InputDist::Gaussian { mean: 0.0, sigma: 2.5, min: -6.0, max: 6.0 }
        .sample_rows(16, m, 5);

    section(&format!("sweeping Bx = {bx}, m = {m}"));
    let mut points = Vec::new();
    let mut infeasible = 0usize;
    for by in [4usize, 8, 16] {
        for k in [2usize, 3, 4] {
            for s1 in [8usize, 32, 128] {
                for s2 in [2usize, 8, 16] {
                    let cfg = IterSoftmaxConfig {
                        m,
                        k,
                        bx,
                        ax: 12.0 / bx as f64,
                        by,
                        ay: 1.0 / m as f64,
                        s1,
                        s2,
                        mode: RescaleMode::Round,
                    };
                    let Ok(block) = IterSoftmaxBlock::new(cfg) else {
                        infeasible += 1;
                        continue;
                    };
                    let Ok(mae) = block.mae_levels(&rows) else { continue };
                    let Ok(cost) = blocks::iter_softmax(&lib, &block) else { continue };
                    points.push(DesignPoint { id: (by, k, s1, s2), adp: cost.adp(), mae });
                }
            }
        }
    }
    println!("{} feasible, {} infeasible designs", points.len(), infeasible);

    let front = pareto_front(points);
    section(&format!("Pareto front ({} optima)", front.len()));
    let mut table = TextTable::new(vec!["By", "k", "s1", "s2", "ADP (um2*ns)", "MAE"]);
    for p in &front {
        let (by, k, s1, s2) = p.id;
        table.row(vec![
            by.to_string(),
            k.to_string(),
            s1.to_string(),
            s2.to_string(),
            eng(p.adp),
            format!("{:.4}", p.mae),
        ]);
    }
    println!("{}", table.render());
    println!("pick the knee: small ADP step up for the last big MAE drop.");
}
