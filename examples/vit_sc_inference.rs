//! End-to-end demo: train a small SC-friendly ViT with the two-stage
//! pipeline, compile the SC inference engine, and compare float vs SC
//! classification on held-out images.
//!
//! Run with: `cargo run --release -p ascend-examples --bin vit_sc_inference`

#![forbid(unsafe_code)]
use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::pipeline::{Pipeline, PipelineConfig};
use ascend_examples::section;
use ascend_vit::train::evaluate;

fn main() {
    section("two-stage pipeline (reduced scale)");
    let cfg = PipelineConfig {
        classes: 10,
        n_train: 600,
        n_test: 200,
        stage1_epochs: 4,
        stage2_epochs: 2,
        verbose: true,
        ..PipelineConfig::default()
    };
    let mut pipeline = Pipeline::new(cfg);
    let report = pipeline.run();
    println!("{}", report.table());

    let model = pipeline.final_model.as_ref().expect("pipeline trains the final model");
    let (train_set, test_set) = pipeline.datasets();

    section("compiling the SC engine ([By, s1, s2, k] = [8, 32, 8, 3])");
    let calib_idx: Vec<usize> = (0..32).collect();
    let calib = train_set.patches(&calib_idx, model.config.patch);
    let engine = ScEngine::compile(model, EngineConfig::default(), &calib, calib_idx.len())
        .expect("engine compiles");
    let sm = engine.softmax_block().config();
    println!(
        "softmax block: m={} Bx={} ax={:.3} By={} ay={:.4} s1={} s2={} k={}",
        sm.m, sm.bx, sm.ax, sm.by, sm.ay, sm.s1, sm.s2, sm.k
    );

    section("float vs SC classification");
    let float_acc = evaluate(model, test_set, 64) * 100.0;
    let sc_acc = engine.accuracy(test_set, 64).expect("SC inference runs") * 100.0;
    println!("float (quantized) model accuracy: {float_acc:.2}%");
    println!("SC engine accuracy:               {sc_acc:.2}%");

    let idx: Vec<usize> = (0..10).collect();
    let patches = test_set.patches(&idx, model.config.patch);
    let sc_logits = engine.forward(&patches, 10).expect("SC inference runs");
    let float_logits = model.predict(&patches, 10);
    println!();
    println!("sample  label  float-pred  sc-pred");
    for (i, label) in test_set.labels_for(&idx).iter().enumerate() {
        println!(
            "{i:>6}  {label:>5}  {:>10}  {:>7}",
            float_logits.argmax_rows()[i],
            sc_logits.argmax_rows()[i]
        );
    }
}
