//! Shared helpers for the ASCEND example binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}
