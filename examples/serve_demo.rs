//! Serving-runtime demo: compile an SC engine once, then serve batches
//! through the parallel `BatchRunner` — and prove the parallel logits are
//! bit-for-bit identical to the serial engine while throughput scales.
//!
//! Run with: `cargo run --release -p ascend-examples --bin serve_demo`

use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{BatchRunner, ServeConfig, ServeRequest};
use ascend_examples::section;
use std::time::Instant;

fn main() {
    section("training a tiny SC-friendly ViT (checkpoint-cached)");
    let mut recipe = FixtureRecipe::tiny("serve-demo", 5);
    recipe.pre_epochs = 4;
    recipe.qat_epochs = 4;
    let (compiled, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("engine compiles");

    section("persisting and re-loading the engine artifact");
    let artifact = std::env::temp_dir().join(format!("serve-demo-{}.sceng", std::process::id()));
    compiled.save(&artifact).expect("engine saves");
    // From here on the demo serves from the *loaded* engine — exactly what
    // a serving process does: no model, no dataset, no training code.
    let engine = ScEngine::load(&artifact).expect("engine loads");
    println!(
        "saved + re-loaded {} ({} bytes) — serving from the loaded artifact",
        artifact.display(),
        std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0)
    );

    section("session facade over the same artifact");
    // The one documented entry point: the builder sniffs the artifact kind
    // and assembles backend + serving pool in one go.
    let session = ascend::Session::builder()
        .artifact(&artifact)
        .backend(ascend::BackendKind::Sc)
        .workers(2)
        .micro_batch(4)
        .build()
        .expect("session builds");
    let demo = test.patches(&(0..8).collect::<Vec<_>>(), 4);
    let (_, report) = session.serve_batch(&demo, 8).expect("session serves");
    println!("`{}` backend: {}", session.backend().name(), report.summary());
    std::fs::remove_file(&artifact).ok();

    section("serial baseline");
    let n = test.len();
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let t0 = Instant::now();
    let serial = engine.forward(&patches, n).expect("serial forward");
    let serial_wall = t0.elapsed();
    println!(
        "serial: {n} images in {:.1} ms — {:.1} images/s",
        serial_wall.as_secs_f64() * 1e3,
        n as f64 / serial_wall.as_secs_f64()
    );

    section("parallel batch runner (determinism checked per run)");
    for workers in [1usize, 2, 4] {
        let runner = BatchRunner::new(
            &engine,
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("runner builds");
        let (logits, report) = runner.run_batch(&patches, n).expect("parallel run");
        let identical = logits
            .data()
            .iter()
            .zip(serial.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!("workers={workers}: {}", report.summary());
        println!("          bit-identical to serial: {identical}");
        assert!(identical, "parallel output diverged from serial");
    }

    section("request queue with auto config and mixed batch sizes");
    let runner = BatchRunner::new(&engine, ServeConfig::auto()).expect("runner builds");
    let sizes = [5usize, 1, 9, 3, 14, 2, 8, 6];
    let mut requests = Vec::new();
    let mut offset = 0usize;
    for &sz in &sizes {
        let idx: Vec<usize> = (offset..offset + sz).collect();
        requests.push(ServeRequest::new(test.patches(&idx, 4), sz));
        offset += sz;
    }
    let outcome = runner.run(&requests).expect("queue run");
    println!("{}", outcome.report.summary());
    println!(
        "request latencies: p50 {:.2} ms | p95 {:.2} ms | max {:.2} ms over {} requests",
        outcome.report.latency_percentile(50.0).as_secs_f64() * 1e3,
        outcome.report.latency_percentile(95.0).as_secs_f64() * 1e3,
        outcome.report.latency_percentile(100.0).as_secs_f64() * 1e3,
        outcome.report.requests()
    );
    println!();
    println!("serve demo OK");
}
