//! Serving-runtime demo: compile an SC engine once, then serve through a
//! persistent `ServePool` — long-lived workers, streaming submit/collect,
//! bounded-queue backpressure, graceful shutdown — and prove the parallel
//! logits are bit-for-bit identical to the serial engine while the same
//! pool serves round after round.
//!
//! Run with: `cargo run --release -p ascend-examples --bin serve_demo`

#![forbid(unsafe_code)]
use ascend::engine::{EngineConfig, ScEngine};
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{ServeConfig, ServePool, ServeRequest};
use ascend::InferenceBackend;
use ascend_examples::section;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    section("training a tiny SC-friendly ViT (checkpoint-cached)");
    let mut recipe = FixtureRecipe::tiny("serve-demo", 5);
    recipe.pre_epochs = 4;
    recipe.qat_epochs = 4;
    let (compiled, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("engine compiles");

    section("persisting and re-loading the engine artifact");
    let artifact = std::env::temp_dir().join(format!("serve-demo-{}.sceng", std::process::id()));
    compiled.save(&artifact).expect("engine saves");
    // From here on the demo serves from the *loaded* engine — exactly what
    // a serving process does: no model, no dataset, no training code.
    let engine = Arc::new(ScEngine::load(&artifact).expect("engine loads"));
    println!(
        "saved + re-loaded {} ({} bytes) — serving from the loaded artifact",
        artifact.display(),
        std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0)
    );

    section("session facade: one persistent pool across rounds");
    // The one documented entry point: the builder sniffs the artifact kind
    // and the session owns one persistent pool — repeated serve calls
    // reuse the same worker threads.
    let session = ascend::Session::builder()
        .artifact(&artifact)
        .backend(ascend::BackendKind::Sc)
        .workers(2)
        .micro_batch(4)
        .build()
        .expect("session builds");
    let demo = test.patches(&(0..8).collect::<Vec<_>>(), 4);
    for round in 1..=3 {
        let (_, report) = session.serve_batch(&demo, 8).expect("session serves");
        println!("`{}` round {round}: {}", session.backend().name(), report.summary());
    }
    std::fs::remove_file(&artifact).ok();

    section("serial baseline");
    let n = test.len();
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let t0 = Instant::now();
    let serial = engine.forward(&patches, n).expect("serial forward");
    let serial_wall = t0.elapsed();
    println!(
        "serial: {n} images in {:.1} ms — {:.1} images/s",
        serial_wall.as_secs_f64() * 1e3,
        n as f64 / serial_wall.as_secs_f64()
    );

    section("persistent pool (reused across rounds, determinism checked)");
    for workers in [1usize, 2, 4] {
        let pool = ServePool::new(
            Arc::clone(&engine),
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("pool builds");
        // Two rounds on the SAME pool: the long-lived workers (one
        // reusable scratch each) must be numerically invisible.
        for round in 1..=2 {
            let (logits, report) = pool.run_batch(&patches, n).expect("parallel run");
            let identical = logits
                .data()
                .iter()
                .zip(serial.data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            println!("workers={workers} round {round}: {}", report.summary());
            println!("          bit-identical to serial: {identical}");
            assert!(identical, "parallel output diverged from serial");
        }
        pool.shutdown(); // graceful: queue closes, workers join
    }

    section("streaming submit/collect through a bounded queue");
    // queue_depth = 2: once two requests are waiting, submit blocks until
    // a worker frees a slot — backpressure instead of unbounded buffering,
    // and a slow request only ever occupies its own worker.
    let pool = ServePool::new(
        Arc::clone(&engine),
        ServeConfig { workers: 2, micro_batch: 4, queue_depth: 2 },
    )
    .expect("pool builds");
    let sizes = [5usize, 1, 9, 3, 14, 2, 8, 6];
    let mut handles = Vec::new();
    let mut offset = 0usize;
    for &sz in &sizes {
        let idx: Vec<usize> = (offset..offset + sz).collect();
        handles.push(
            pool.submit(ServeRequest::new(test.patches(&idx, 4), sz)).expect("submit"),
        );
        offset += sz;
    }
    let mut images = 0usize;
    let mut max_latency = std::time::Duration::ZERO;
    for handle in handles {
        images += handle.images();
        let (_logits, timing) = handle.collect().expect("collect");
        max_latency = max_latency.max(timing.total());
    }
    println!(
        "streamed {images} images over {} ragged requests (max request latency {:.2} ms)",
        sizes.len(),
        max_latency.as_secs_f64() * 1e3
    );
    pool.shutdown();
    println!();
    println!("serve demo OK");
}
