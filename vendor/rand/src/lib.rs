//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored shim provides exactly the API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngExt::random`],
//! [`RngExt::random_range`] and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic, fast, and of
//! ample statistical quality for the seeded experiments in this repo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // `start + u*(end-start)` can round up onto `end`; keep the
                // range exclusive.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Inclusive unit draw: 53 bits over [0, 1] so `hi` is
                // reachable, unlike the half-open StandardUniform draw.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let v = lo + (unit as $t) * (hi - lo);
                v.clamp(lo, hi)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard distribution (`[0, 1)` for
    /// floats, uniform over all values for integers and `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related randomization.

    use super::{RngCore, RngExt};

    /// In-place randomization of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f32 = rng.random_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&x));
            let q: i64 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&q));
            let u: usize = rng.random_range(0..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
