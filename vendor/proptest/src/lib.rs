//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of proptest this workspace's property suites use: range and tuple
//! strategies, [`Strategy::prop_map`]/[`Strategy::prop_flat_map`],
//! [`collection::vec`], [`sample::select`], [`arbitrary::any`], the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` macros. Failing cases are reported with their case number
//! and inputs' debug output is left to the assertion message; there is no
//! shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy derived from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // Rounding (e.g. the f64→f32 narrowing) can land exactly
                    // on `end`; keep the range exclusive.
                    if v < self.end { v } else { self.end.next_down() }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    // Inclusive upper bound: scale a 53-bit fraction onto
                    // [0, 1] by dividing by 2^53 − 1.
                    let u = rng.next_u64() >> 11;
                    let unit = u as f64 / ((1u64 << 53) - 1) as f64;
                    lo + (unit as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`any`] entry point for canonical per-type strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy over their full value space.
    pub trait Arbitrary: Sized {
        /// Draws one value from the canonical distribution.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_sample(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Strategies over collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Strategies that sample from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    ///
    /// Panics (at sample time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty set");
        Select { options }
    }
}

pub mod test_runner {
    //! Configuration, RNG and the case-execution loop.

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A deterministic 64-bit generator (SplitMix64) driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a fixed seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Runs `case` for `config.cases` deterministic cases, panicking on the
    /// first failure.
    pub fn run<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Fixed seed: failures reproduce across runs and machines.
        let mut rng = TestRng::new(0xA5CE_2D00_D47E_2024);
        for i in 0..config.cases {
            if let Err(e) = case(&mut rng) {
                panic!("proptest case {i}/{} failed: {e}", config.cases);
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(q in -8i64..=8, u in 0usize..10, x in 0.25f64..0.75) {
            prop_assert!((-8..=8).contains(&q));
            prop_assert!(u < 10);
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(any::<bool>(), 0..16)) {
            let n = v.len();
            prop_assert!(n < 16);
            let doubled = (0..=4i64, 0.0f64..1.0).prop_map(|(a, _)| a * 2);
            let d = Strategy::sample(&doubled, &mut crate::test_runner::TestRng::new(1));
            prop_assert_eq!(d % 2, 0);
        }

        #[test]
        fn select_picks_members(m in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(m == 2 || m == 4 || m == 8);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_number() {
        crate::test_runner::run(&ProptestConfig::with_cases(3), |_rng| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
