//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! API surface the workspace's `benches/` targets use — [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkGroup`], [`BenchmarkId`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer: a short calibration pass sizes the iteration count,
//! then the median of several batches is reported as ns/iter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);
/// Number of measured batches; the median is reported.
const BATCHES: usize = 5;

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count filling ~BATCH_TARGET.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || n >= 1 << 30 {
                break;
            }
            n = if elapsed.is_zero() {
                n * 16
            } else {
                let scale = BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                ((n as f64 * scale.min(16.0)).ceil() as u64).max(n + 1)
            };
        }
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[BATCHES / 2];
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
}

/// The benchmark manager: runs closures and prints timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.ns_per_iter);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("sort", 64).id, "sort/64");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
