//! Golden regression: a fixed-seed tiny pipeline snapshot.
//!
//! The constants below were captured from a known-good build. Any engine
//! refactor that silently changes numerics — calibration, softmax scale
//! selection, quantization order, weight pre-quantization — fails here in
//! tier-1 instead of drifting unnoticed. Intentional numeric changes must
//! update the constants (run with `--nocapture` to see the fresh values).
//!
//! Comparisons use a small tolerance rather than bit equality so the
//! snapshot survives last-ulp differences in `exp`/`tanh` across platforms;
//! anything a tolerance of 5e-3 catches is a genuine numeric change.

use ascend::engine::{EngineConfig, ScEngine};
use ascend_vit::data::{synth_cifar, Dataset};
use ascend_vit::train::{train_model, TrainConfig};
use ascend_vit::{PrecisionPlan, VitConfig, VitModel};

/// SC engine top-1 accuracy on the 24-image fixed-seed test split.
const GOLDEN_SC_ACCURACY: f32 = 0.375;

/// SC logits of the first three test images (4 classes each).
const GOLDEN_LOGITS: [[f32; 4]; 3] = [
    [0.48290414, 0.709514, -0.69589436, 0.35470432],
    [-0.0073154382, -1.5145624, -2.2707572, -0.1737375],
    [1.6445307, -1.4789618, 1.8848817, -1.4585421],
];

const LOGIT_TOLERANCE: f32 = 5e-3;
const ACCURACY_TOLERANCE: f32 = 0.05;

/// The fixed-seed recipe: every seed is pinned (model init 42 via
/// `VitConfig::default`, data 7, shuffling 0 via `TrainConfig::default`).
fn golden_engine() -> (ScEngine, Dataset) {
    let cfg = VitConfig {
        image: 8,
        patch: 4,
        dim: 16,
        layers: 2,
        heads: 2,
        classes: 4,
        ..Default::default()
    };
    let mut model = VitModel::new(cfg);
    let (train, test) = synth_cifar(4, 96, 24, 8, 7);
    let tc = TrainConfig { epochs: 3, batch: 16, ..Default::default() };
    train_model(&mut model, None, &train, &test, &tc);
    model.set_plan(PrecisionPlan::w2_a2_r16());
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    model.calibrate_steps(&calib, 16);
    train_model(&mut model, None, &train, &test, &tc);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16)
        .expect("golden engine compiles");
    (engine, test)
}

#[test]
fn fixed_seed_pipeline_matches_golden_snapshot() {
    let (engine, test) = golden_engine();

    let accuracy = engine.accuracy(&test, 8).expect("SC accuracy");
    let idx: Vec<usize> = (0..3).collect();
    let patches = test.patches(&idx, 4);
    let logits = engine.forward(&patches, 3).expect("SC forward");

    // Fresh values, for updating the constants after intentional changes.
    eprintln!("golden accuracy: {accuracy:?}");
    for r in 0..3 {
        eprintln!("golden logits[{r}]: {:?}", &logits.data()[r * 4..(r + 1) * 4]);
    }

    assert!(
        (accuracy - GOLDEN_SC_ACCURACY).abs() <= ACCURACY_TOLERANCE,
        "SC accuracy drifted: got {accuracy}, golden {GOLDEN_SC_ACCURACY}"
    );
    for (r, want_row) in GOLDEN_LOGITS.iter().enumerate() {
        for (c, want) in want_row.iter().enumerate() {
            let got = logits.data()[r * 4 + c];
            assert!(
                (got - want).abs() <= LOGIT_TOLERANCE,
                "logit [{r}][{c}] drifted: got {got}, golden {want}"
            );
        }
    }
}
