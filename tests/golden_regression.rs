//! Golden regression: a fixed-seed tiny pipeline snapshot, plus the
//! artifact round-trip guarantees built on top of it.
//!
//! The constants below were captured from a known-good build. Any engine
//! refactor that silently changes numerics — calibration, softmax scale
//! selection, quantization order, weight pre-quantization — fails here in
//! tier-1 instead of drifting unnoticed. Intentional numeric changes must
//! update the constants (run with `--nocapture` to see the fresh values).
//!
//! Because the trained model now comes from the shared checkpoint-cached
//! fixture, this file also pins the *persistence* contract: a cache hit
//! (model restored from an `ascend-io` artifact) must reproduce the same
//! golden numbers as a cache miss (freshly trained model) — and the
//! explicit round-trip tests below assert bit equality for both artifact
//! kinds, which is the PR's acceptance criterion.
//!
//! Comparisons against the golden constants use a small tolerance rather
//! than bit equality so the snapshot survives last-ulp differences in
//! `exp`/`tanh` across platforms; the round-trip tests, by contrast,
//! demand exact bit equality — serialization has no platform-dependent
//! math to excuse.

use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::fixture::{train_or_load, FixtureRecipe};
use ascend_io::ModelCheckpoint;
use ascend_vit::data::Dataset;
use ascend_vit::VitModel;
use std::path::PathBuf;

/// SC engine top-1 accuracy on the 24-image fixed-seed test split.
const GOLDEN_SC_ACCURACY: f32 = 0.375;

/// SC logits of the first three test images (4 classes each).
const GOLDEN_LOGITS: [[f32; 4]; 3] = [
    [0.48290414, 0.709514, -0.69589436, 0.35470432],
    [-0.0073154382, -1.5145624, -2.2707572, -0.1737375],
    [1.6445307, -1.4789618, 1.8848817, -1.4585421],
];

const LOGIT_TOLERANCE: f32 = 5e-3;
const ACCURACY_TOLERANCE: f32 = 0.05;

/// The fixed-seed recipe: every seed is pinned (model init 42 via
/// `VitConfig::default`, data 7, shuffling 0 via `TrainConfig::default`).
/// The schedule reproduces the original golden capture exactly: 3 FP
/// epochs, calibrate on 16 train images, 3 QAT epochs.
fn golden_recipe() -> FixtureRecipe {
    let mut recipe = FixtureRecipe::tiny("golden-tiny", 7);
    recipe.n_test = 24;
    recipe.pre_epochs = 3;
    recipe.qat_epochs = 3;
    recipe
}

fn golden_model() -> (VitModel, Dataset, Dataset) {
    train_or_load(&golden_recipe())
}

fn golden_engine() -> (ScEngine, Dataset) {
    let (model, train, test) = golden_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16)
        .expect("golden engine compiles");
    (engine, test)
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ascend-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

mod support;
use support::assert_bit_identical;

#[test]
fn fixed_seed_pipeline_matches_golden_snapshot() {
    let (engine, test) = golden_engine();

    let accuracy = engine.accuracy(&test, 8).expect("SC accuracy");
    let idx: Vec<usize> = (0..3).collect();
    let patches = test.patches(&idx, 4);
    let logits = engine.forward(&patches, 3).expect("SC forward");

    // Fresh values, for updating the constants after intentional changes.
    eprintln!("golden accuracy: {accuracy:?}");
    for r in 0..3 {
        eprintln!("golden logits[{r}]: {:?}", &logits.data()[r * 4..(r + 1) * 4]);
    }

    assert!(
        (accuracy - GOLDEN_SC_ACCURACY).abs() <= ACCURACY_TOLERANCE,
        "SC accuracy drifted: got {accuracy}, golden {GOLDEN_SC_ACCURACY}"
    );
    for (r, want_row) in GOLDEN_LOGITS.iter().enumerate() {
        for (c, want) in want_row.iter().enumerate() {
            let got = logits.data()[r * 4 + c];
            assert!(
                (got - want).abs() <= LOGIT_TOLERANCE,
                "logit [{r}][{c}] drifted: got {got}, golden {want}"
            );
        }
    }
}

#[test]
fn checkpoint_roundtrip_compiles_a_bit_identical_engine() {
    // model → save → load → compile must equal the in-memory
    // model → compile path, bit for bit — the train-once guarantee.
    let (model, train, test) = golden_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let in_memory = ScEngine::compile(&model, EngineConfig::default(), &calib, 16)
        .expect("in-memory engine compiles");

    let path = scratch_path("roundtrip-model.ckpt");
    ModelCheckpoint::capture(&model)
        .with_calib(calib, 16)
        .save(&path)
        .expect("checkpoint saves");
    let loaded = ModelCheckpoint::load(&path).expect("checkpoint loads");
    let from_disk = ScEngine::compile_from_checkpoint(&loaded, EngineConfig::default())
        .expect("engine compiles from checkpoint");
    std::fs::remove_file(&path).ok();

    let idx: Vec<usize> = (0..test.len()).collect();
    let patches = test.patches(&idx, 4);
    let want = in_memory.forward(&patches, idx.len()).expect("in-memory forward");
    let got = from_disk.forward(&patches, idx.len()).expect("from-disk forward");
    assert_bit_identical(&got, &want, "checkpoint round-trip");
}

#[test]
fn engine_artifact_roundtrip_is_bit_identical() {
    // engine → save → load must reproduce the exact logits *and* the
    // exact compiled configuration, with no model or dataset in sight.
    let (engine, test) = golden_engine();
    let path = scratch_path("roundtrip-engine.sceng");
    engine.save(&path).expect("engine saves");
    let loaded = ScEngine::load(&path).expect("engine loads");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.config(), engine.config(), "engine config must round-trip");
    assert_eq!(
        loaded.softmax_block().config(),
        engine.softmax_block().config(),
        "calibrated softmax config must round-trip"
    );
    assert_eq!(loaded.vit_config(), engine.vit_config());
    assert_eq!(loaded.plan(), engine.plan());
    assert_eq!(loaded.num_layers(), engine.num_layers());

    let idx: Vec<usize> = (0..test.len()).collect();
    let patches = test.patches(&idx, 4);
    let want = engine.forward(&patches, idx.len()).expect("original forward");
    let got = loaded.forward(&patches, idx.len()).expect("loaded forward");
    assert_bit_identical(&got, &want, "engine round-trip");

    let want_acc = engine.accuracy(&test, 8).expect("original accuracy");
    let got_acc = loaded.accuracy(&test, 8).expect("loaded accuracy");
    assert_eq!(want_acc.to_bits(), got_acc.to_bits(), "accuracy must match exactly");
}

#[test]
fn cached_fixture_matches_fresh_training_bit_for_bit() {
    // The fixture cache must be numerics-neutral: a model restored from
    // the cached checkpoint and a freshly trained one produce identical
    // logits. (`train_or_load` caches on first call; retraining the same
    // recipe by hand reproduces it deterministically.)
    let recipe = golden_recipe();
    let (cached, _, test) = train_or_load(&recipe); // cache hit or fresh — either way
    let (fresh, _, _) = {
        // Train from scratch, bypassing the cache, by replaying the
        // recipe's schedule manually.
        use ascend_vit::train::{train_model, TrainConfig};
        let (train, test2) = recipe.datasets();
        let mut model = VitModel::new(recipe.model);
        let tc = TrainConfig {
            epochs: recipe.pre_epochs,
            batch: recipe.batch,
            lr: recipe.lr,
            ..Default::default()
        };
        train_model(&mut model, None, &train, &test2, &tc);
        model.set_plan(recipe.plan);
        let calib = train.patches(&(0..recipe.calib_n).collect::<Vec<_>>(), recipe.model.patch);
        model.calibrate_steps(&calib, recipe.calib_n);
        let qat = TrainConfig { epochs: recipe.qat_epochs, ..tc };
        train_model(&mut model, None, &train, &test2, &qat);
        (model, train, test2)
    };
    let idx: Vec<usize> = (0..8).collect();
    let patches = test.patches(&idx, 4);
    assert_bit_identical(
        &cached.predict(&patches, 8),
        &fresh.predict(&patches, 8),
        "fixture cache",
    );
}
