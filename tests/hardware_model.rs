//! Integration: the analytic synthesis model reproduces the paper's
//! cost *shapes* across crates (structural scalings, headline ratios).

use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::bernstein::BernsteinConfig;
use sc_nonlinear::gate_si;
use sc_nonlinear::softmax_fsm::FsmSoftmaxConfig;
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn lib() -> CellLibrary {
    CellLibrary::paper_calibrated()
}

#[test]
fn table3_shape_gate_si_beats_bernstein_on_adp_and_mae() {
    let xs: Vec<f64> = (0..500).map(|i| -4.0 + i as f64 * 0.016).collect();
    let ours = gate_si::gelu_block_calibrated(256, 8, &xs).unwrap();
    let ours_cost = blocks::gate_si(&lib(), &ours);
    let base_cost = blocks::bernstein(
        &lib(),
        &BernsteinConfig { terms: 4, bsl: 1024, ..Default::default() },
        false,
    );
    // ADP reduction in the paper: 3.36–5.29x; accept anything clearly > 2x.
    let adp_ratio = base_cost.adp() / ours_cost.adp();
    assert!(adp_ratio > 2.0, "ADP ratio {adp_ratio}");
    // Delay: parallel vs stream-serial — orders of magnitude.
    assert!(base_cost.delay_ns() / ours_cost.delay_ns() > 50.0);
}

#[test]
fn table4_shape_iterative_beats_fsm_on_adp() {
    let ours = IterSoftmaxBlock::new(IterSoftmaxConfig::default()).unwrap();
    let ours_cost = blocks::iter_softmax(&lib(), &ours).unwrap();
    let fsm_cost = blocks::fsm_softmax(
        &lib(),
        &FsmSoftmaxConfig { bsl: 1024, ..Default::default() },
    );
    let ratio = fsm_cost.adp() / ours_cost.adp();
    // Paper: 12.6x vs the 1024b FSM row at By = 8.
    assert!(ratio > 3.0, "ADP ratio vs FSM@1024 too small: {ratio}");
    // FSM area must be BSL-independent while its delay grows.
    let fsm128 =
        blocks::fsm_softmax(&lib(), &FsmSoftmaxConfig { bsl: 128, ..Default::default() });
    assert_eq!(fsm128.area_um2, fsm_cost.area_um2);
    assert!(fsm_cost.delay_ns() > 4.0 * fsm128.delay_ns());
}

#[test]
fn softmax_area_scales_superlinearly_in_by() {
    // Table IV/VI: By 4 → 16 grows area drastically (paper ~20x 4→16).
    let cost_for = |by: usize| {
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig {
            by,
            ay: 1.0 / 64.0,
            ..IterSoftmaxConfig::default()
        })
        .unwrap();
        blocks::iter_softmax(&lib(), &block).unwrap().area_um2
    };
    let a4 = cost_for(4);
    let a16 = cost_for(16);
    assert!(a16 / a4 > 8.0, "area 4→16 ratio {}", a16 / a4);
}

#[test]
fn paper_magnitude_anchors() {
    // Absolute magnitudes within ~3x of the paper's reported values.
    let xs: Vec<f64> = (0..500).map(|i| -4.0 + i as f64 * 0.016).collect();
    let g8 = blocks::gate_si(&lib(), &gate_si::gelu_block_calibrated(256, 8, &xs).unwrap());
    assert!((900.0..8000.0).contains(&g8.area_um2), "paper: 2581.7, got {}", g8.area_um2);
    assert!((0.2..1.7).contains(&g8.delay_ns()), "paper: 0.55, got {}", g8.delay_ns());

    let fsm = blocks::fsm_softmax(&lib(), &FsmSoftmaxConfig::default());
    assert!(
        (4.2e3..3.8e4).contains(&fsm.area_um2),
        "paper: 1.26e4, got {}",
        fsm.area_um2
    );
}
