//! Tier-1 parity contract between the [`InferenceBackend`]
//! implementations, driven end to end through the [`Session`] facade:
//!
//! * the float-reference backend and the SC-exact backend, compiled from
//!   the *same* checkpoint, must agree on predicted classes within the
//!   paper's tolerance — their only delta is SC approximation (iterative
//!   softmax + transfer-table GELU), which the network was trained to
//!   absorb;
//! * a [`FaultInjectingBackend`] at rate 0.0 must be **bit-identical** to
//!   its inner backend — the decorator may never perturb the clean path;
//! * at a small non-zero rate, thermometer fault tolerance must show: the
//!   network degrades gracefully instead of collapsing.

use ascend::engine::EngineConfig;
use ascend::fixture::{session_or_load, FixtureRecipe};
use ascend::{BackendKind, FaultInjectingBackend, InferenceBackend, Session};
use ascend_vit::data::Dataset;

/// The converged shared fixture — the same definition (and therefore the
/// same cached checkpoint) the engine unit tests use. Parity must be
/// judged on a converged model: an underfit model sits at near-tie logits
/// where argmax is noise, not signal.
fn parity_recipe() -> FixtureRecipe {
    FixtureRecipe::tiny_converged("engine-unit", 5)
}

fn sessions() -> (Session, Session, Dataset) {
    let recipe = parity_recipe();
    let (sc, _, test) =
        session_or_load(&recipe, EngineConfig::default(), BackendKind::Sc).expect("sc session");
    let (reference, _, _) = session_or_load(&recipe, EngineConfig::default(), BackendKind::Ref)
        .expect("ref session");
    (sc, reference, test)
}

mod support;
use support::assert_bit_identical;

#[test]
fn ref_and_sc_backends_agree_within_the_papers_tolerance() {
    let (sc, reference, test) = sessions();
    assert_eq!(sc.backend().name(), "sc-exact");
    assert_eq!(reference.backend().name(), "float-ref");
    assert_eq!(sc.backend().vit_config(), reference.backend().vit_config());
    assert_eq!(sc.backend().plan(), reference.backend().plan());

    let n = test.len();
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let sc_logits = sc.forward(&patches, n).expect("sc forward");
    let ref_logits = reference.forward(&patches, n).expect("ref forward");
    let agree = sc_logits
        .argmax_rows()
        .iter()
        .zip(ref_logits.argmax_rows().iter())
        .filter(|(a, b)| a == b)
        .count();
    // The paper's end-to-end claim is ~1% accuracy loss at [8, 32, 8, 3];
    // at this miniature scale we hold the analogous bound: the SC engine
    // may not flip more than a small minority of predictions vs the
    // high-precision reference.
    assert!(
        agree * 4 >= n * 3,
        "SC-exact and float-ref disagree on {}/{n} images (need ≥ 75% agreement)",
        n - agree
    );

    let sc_acc = sc.accuracy(&test, 8).expect("sc accuracy");
    let ref_acc = reference.accuracy(&test, 8).expect("ref accuracy");
    assert!(
        (sc_acc - ref_acc).abs() <= 0.25,
        "backend accuracy gap too wide: sc {sc_acc} vs ref {ref_acc}"
    );
}

#[test]
fn zero_rate_fault_wrapper_is_bit_identical_to_its_inner_backend() {
    let (sc, reference, test) = sessions();
    let n = 8usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    // Wrap each bare backend directly (the decorator composes over any
    // `InferenceBackend`, including the session's boxed trait object).
    for (session, label) in [(&sc, "sc-exact"), (&reference, "float-ref")] {
        let clean = session.forward(&patches, n).expect("clean forward");
        let wrapped = FaultInjectingBackend::new(session.backend(), 0.0, 99).expect("wrapper");
        let faulted = wrapped.forward(&patches, n).expect("wrapped forward");
        assert_bit_identical(&faulted, &clean, &format!("rate-0 wrapper over {label}"));
    }

    // And through the facade: a session built with .fault(0.0, seed).
    let recipe = parity_recipe();
    let (ckpt, _, _) = ascend::fixture::checkpoint_or_load(&recipe);
    let via_builder = Session::builder()
        .checkpoint(ckpt)
        .backend(BackendKind::Sc)
        .fault(0.0, 123)
        .build()
        .expect("fault session builds");
    assert_eq!(via_builder.backend().name(), "fault(rate=0)+sc-exact");
    let clean = sc.forward(&patches, n).expect("clean forward");
    let got = via_builder.forward(&patches, n).expect("fault-session forward");
    assert_bit_identical(&got, &clean, "rate-0 session");
}

#[test]
fn small_fault_rates_degrade_gracefully_and_deterministically() {
    let (sc, _, test) = sessions();
    let n = test.len();
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let clean_acc = sc.accuracy(&test, 8).expect("clean accuracy");

    let wrapped = FaultInjectingBackend::new(sc.backend(), 0.02, 7).expect("wrapper");
    // Determinism: the fault universe is a function of (seed, image), so
    // two runs see identical faults.
    let a = wrapped.forward(&patches, n).expect("faulted forward");
    let b = wrapped.forward(&patches, n).expect("faulted forward again");
    assert_bit_identical(&a, &b, "faulted forward determinism");

    // Graceful degradation (the SC fault-tolerance argument, end to end):
    // 2% input bit flips must not collapse accuracy to chance.
    let faulted_acc = wrapped.accuracy(&test, 8).expect("faulted accuracy");
    assert!(
        faulted_acc >= clean_acc - 0.25,
        "2% bit flips collapsed accuracy: clean {clean_acc} vs faulted {faulted_acc}"
    );
}

#[test]
fn parallel_serving_is_bit_identical_for_every_backend() {
    // The serve determinism contract holds per backend: the pool is
    // generic, so the proof must not silently narrow to the SC engine.
    let (sc, reference, test) = sessions();
    let n = 13usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    for (session, label) in [(&sc, "sc"), (&reference, "ref")] {
        let serial = session.forward(&patches, n).expect("serial forward");
        let (parallel, report) = session.serve_batch(&patches, n).expect("parallel serve");
        assert_bit_identical(&parallel, &serial, &format!("{label} parallel vs serial"));
        assert_eq!(report.images(), n);
    }
}

#[test]
fn fault_injecting_backend_stays_deterministic_on_a_reused_pool() {
    // The persistent pool must preserve the parallel == serial contract
    // for the decorator stack too: fault sampling is a function of
    // (seed, image), never of which long-lived worker serves the request
    // or how many runs the pool has already served.
    let recipe = parity_recipe();
    let (ckpt, _, test) = ascend::fixture::checkpoint_or_load(&recipe);
    let session = Session::builder()
        .checkpoint(ckpt)
        .backend(BackendKind::Sc)
        .fault(0.02, 7)
        .workers(2)
        .micro_batch(4)
        .build()
        .expect("fault session builds");
    let n = 13usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let serial = session.forward(&patches, n).expect("serial faulted forward");
    for round in 0..3 {
        // Every round reuses the session's one pool (same worker threads).
        let (parallel, report) = session.serve_batch(&patches, n).expect("faulted serve");
        assert_bit_identical(&parallel, &serial, &format!("faulted pool reuse round {round}"));
        assert_eq!(report.workers(), 2);
    }
}
