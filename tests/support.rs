//! Shared helpers for the cross-crate integration suite (included per test
//! binary via `mod support;`).

use ascend_tensor::Tensor;

/// Asserts two logit tensors are equal to the last bit — the workspace's
/// one definition of the bit-identity contract that the serve-determinism,
/// golden-regression, and backend-parity suites all enforce.
pub fn assert_bit_identical(a: &Tensor, b: &Tensor, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shapes differ");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: logit {i} differs: {x} vs {y}");
    }
}
