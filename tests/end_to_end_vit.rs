//! Integration: trained quantized ViT → SC engine, end to end.

use ascend::engine::{EngineConfig, ScEngine};
use ascend_vit::data::synth_cifar;
use ascend_vit::train::{evaluate, train_model, TrainConfig};
use ascend_vit::{PrecisionPlan, SoftmaxKind, VitConfig, VitModel};

fn trained_model() -> (VitModel, ascend_vit::data::Dataset, ascend_vit::data::Dataset) {
    let cfg = VitConfig {
        image: 8,
        patch: 4,
        dim: 16,
        layers: 2,
        heads: 2,
        classes: 4,
        ..Default::default()
    };
    let mut model = VitModel::new(cfg);
    let (train, test) = synth_cifar(4, 128, 64, 8, 21);
    let tc = TrainConfig { epochs: 6, batch: 16, lr: 2e-3, ..Default::default() };
    train_model(&mut model, None, &train, &test, &tc);
    model.set_plan(PrecisionPlan::w2_a2_r16());
    let calib = train.patches(&(0..8).collect::<Vec<_>>(), 4);
    model.calibrate_steps(&calib, 8);
    train_model(&mut model, None, &train, &test, &tc);
    (model, train, test)
}

#[test]
fn quantized_training_reaches_useful_accuracy() {
    let (model, _, test) = trained_model();
    let acc = evaluate(&model, &test, 16);
    assert!(acc > 0.4, "W2-A2-R16 model should beat 25% chance clearly, got {acc}");
}

#[test]
fn sc_engine_accuracy_tracks_float_accuracy() {
    let (model, train, test) = trained_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).unwrap();
    let sc = engine.accuracy(&test, 16).unwrap();
    let float = evaluate(&model, &test, 16);
    assert!(
        (sc - float).abs() < 0.25,
        "SC engine accuracy {sc} should track float accuracy {float}"
    );
}

#[test]
fn engine_deterministic_across_runs() {
    let (model, train, test) = trained_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).unwrap();
    let idx: Vec<usize> = (0..8).collect();
    let patches = test.patches(&idx, 4);
    let a = engine.forward(&patches, 8).unwrap();
    let b = engine.forward(&patches, 8).unwrap();
    assert_eq!(a, b, "deterministic SC pipeline must be reproducible");
}

#[test]
fn float_model_softmax_swap_changes_little_after_training_with_it() {
    // Train *with* the approximate softmax (as stage 2 does), then verify
    // exact-softmax eval is close — the adaptation argument of §V.
    let cfg = VitConfig {
        image: 8,
        patch: 4,
        dim: 16,
        layers: 2,
        heads: 2,
        classes: 4,
        softmax: SoftmaxKind::IterApprox { k: 3 },
        ..Default::default()
    };
    let mut model = VitModel::new(cfg);
    let (train, test) = synth_cifar(4, 96, 48, 8, 31);
    let tc = TrainConfig { epochs: 6, batch: 16, lr: 2e-3, ..Default::default() };
    train_model(&mut model, None, &train, &test, &tc);
    let acc_approx = evaluate(&model, &test, 16);
    model.set_softmax(SoftmaxKind::Exact);
    let acc_exact = evaluate(&model, &test, 16);
    assert!(
        (acc_approx - acc_exact).abs() < 0.3,
        "approx-trained model should transfer: approx {acc_approx} exact {acc_exact}"
    );
}
