//! Integration: trained quantized ViT → SC engine, end to end.

use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::fixture::{train_or_load, FixtureRecipe};
use ascend_vit::train::evaluate;
use ascend_vit::{SoftmaxKind, VitConfig, VitModel};

fn trained_model() -> (VitModel, ascend_vit::data::Dataset, ascend_vit::data::Dataset) {
    // Checkpoint-cached fixture: 6 + 6 epochs at lr 2e-3 on a larger
    // split (trains once per cache lifetime).
    let mut recipe = FixtureRecipe::tiny("e2e-qat", 21);
    recipe.n_train = 128;
    recipe.n_test = 64;
    recipe.pre_epochs = 6;
    recipe.qat_epochs = 6;
    recipe.lr = 2e-3;
    recipe.calib_n = 8;
    train_or_load(&recipe)
}

#[test]
fn quantized_training_reaches_useful_accuracy() {
    let (model, _, test) = trained_model();
    let acc = evaluate(&model, &test, 16);
    assert!(acc > 0.4, "W2-A2-R16 model should beat 25% chance clearly, got {acc}");
}

#[test]
fn sc_engine_accuracy_tracks_float_accuracy() {
    let (model, train, test) = trained_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).unwrap();
    let sc = engine.accuracy(&test, 16).unwrap();
    let float = evaluate(&model, &test, 16);
    assert!(
        (sc - float).abs() < 0.25,
        "SC engine accuracy {sc} should track float accuracy {float}"
    );
}

#[test]
fn engine_deterministic_across_runs() {
    let (model, train, test) = trained_model();
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).unwrap();
    let idx: Vec<usize> = (0..8).collect();
    let patches = test.patches(&idx, 4);
    let a = engine.forward(&patches, 8).unwrap();
    let b = engine.forward(&patches, 8).unwrap();
    assert_eq!(a, b, "deterministic SC pipeline must be reproducible");
}

#[test]
fn float_model_softmax_swap_changes_little_after_training_with_it() {
    // Train *with* the approximate softmax (as stage 2 does), then verify
    // exact-softmax eval is close — the adaptation argument of §V.
    let mut recipe = FixtureRecipe::tiny("e2e-approx-softmax", 31);
    recipe.model = VitConfig {
        softmax: SoftmaxKind::IterApprox { k: 3 },
        ..recipe.model
    };
    recipe.pre_epochs = 6;
    recipe.lr = 2e-3;
    recipe.plan = ascend_vit::PrecisionPlan::fp(); // FP: no plan switch
    let (mut model, _train, test) = train_or_load(&recipe);
    let acc_approx = evaluate(&model, &test, 16);
    model.set_softmax(SoftmaxKind::Exact);
    let acc_exact = evaluate(&model, &test, 16);
    assert!(
        (acc_approx - acc_exact).abs() < 0.3,
        "approx-trained model should transfer: approx {acc_approx} exact {acc_exact}"
    );
}
