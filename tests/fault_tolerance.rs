//! Integration: fault injection — the SC motivation that a single bit flip
//! perturbs a thermometer value by exactly one LSB, while positional binary
//! can lose half the range.

use sc_core::encoding::Thermometer;
use sc_core::{bsn, ThermStream};

/// Flip each bit of a thermometer stream in turn: the decoded value must
/// move by exactly one LSB.
#[test]
fn single_bit_flip_moves_value_by_one_lsb() {
    let enc = Thermometer::new(16, 0.125).unwrap();
    let x = enc.encode(0.5);
    for i in 0..x.len() {
        let mut bits = x.bits().clone();
        bits.flip(i);
        let corrupted = ThermStream::new(bits, x.scale()).unwrap();
        let delta = (corrupted.value() - x.value()).abs();
        assert!(
            (delta - x.scale()).abs() < 1e-12,
            "bit {i}: delta {delta} should be one LSB ({})",
            x.scale()
        );
    }
}

/// Positional binary worst case for comparison: flipping the MSB of an
/// 8-bit two's-complement value moves it by 128 LSBs.
#[test]
fn binary_msb_flip_is_catastrophic_by_contrast() {
    let value: i8 = 64;
    let flipped = value ^ (1i8 << 6); // flip bit 6
    assert_eq!((value as i16 - flipped as i16).abs(), 64, "positional weight");
    // Thermometer: any flip = 1 LSB (shown above). The ratio grows with
    // word size; this is the fault-tolerance argument for SC ([11]).
}

/// Fault tolerance must survive arithmetic: flips before a BSN addition
/// still move the sum by exactly one LSB each.
#[test]
fn flips_propagate_linearly_through_bsn_addition() {
    let enc = Thermometer::new(8, 0.25).unwrap();
    let a = enc.encode(0.75);
    let b = enc.encode(-0.25);
    let clean = bsn::add(&[&a, &b]).unwrap();

    let mut worst = 0.0f64;
    for i in 0..a.len() {
        let mut bits = a.bits().clone();
        bits.flip(i);
        let fa = ThermStream::new(bits, a.scale()).unwrap();
        let sum = bsn::add(&[&fa, &b]).unwrap();
        worst = worst.max((sum.value() - clean.value()).abs());
    }
    assert!(
        (worst - a.scale()).abs() < 1e-12,
        "worst-case deviation {worst} should equal one input LSB"
    );
}

/// Multi-flip: k random flips move the value by at most k LSBs.
#[test]
fn k_flips_bounded_by_k_lsb() {
    let enc = Thermometer::new(32, 0.0625).unwrap();
    let x = enc.encode(1.0);
    let mut bits = x.bits().clone();
    for i in [3usize, 7, 20, 31] {
        bits.flip(i);
    }
    let corrupted = ThermStream::new(bits, x.scale()).unwrap();
    let delta = (corrupted.value() - x.value()).abs();
    assert!(delta <= 4.0 * x.scale() + 1e-12, "4 flips moved value by {delta}");
}
