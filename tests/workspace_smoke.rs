//! Workspace wiring smoke test: the full crate DAG (sc-core → sc-nonlinear /
//! sc-hw → tensor → vit → core) must link, and a tiny end-to-end run of the
//! two-stage pipeline must produce finite accuracies for every Table V row.

use ascend::pipeline::{Pipeline, PipelineConfig};

#[test]
fn tiny_pipeline_runs_end_to_end_with_finite_outputs() {
    let cfg = PipelineConfig {
        n_train: 32,
        n_test: 16,
        stage1_epochs: 1,
        stage2_epochs: 1,
        batch: 16,
        ..PipelineConfig::smoke_test()
    };
    let mut pipeline = Pipeline::new(cfg);
    let report = pipeline.run();

    assert!(!report.rows.is_empty(), "pipeline produced no Table V rows");
    for row in &report.rows {
        assert!(
            row.accuracy.is_finite(),
            "row {:?} has non-finite accuracy {}",
            row.name,
            row.accuracy
        );
        assert!(
            (0.0..=100.0).contains(&row.accuracy),
            "row {:?} accuracy {} outside [0, 100]",
            row.name,
            row.accuracy
        );
    }
    // The rendered table must mention every row label.
    let table = report.table();
    for row in &report.rows {
        assert!(table.contains(&row.name), "table is missing row {:?}", row.name);
    }
}
