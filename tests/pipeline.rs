//! Integration: the two-stage training pipeline produces the Table V rows
//! with the paper's qualitative ordering.

use ascend::pipeline::{Pipeline, PipelineConfig};

#[test]
fn pipeline_rows_reproduce_paper_ordering_at_smoke_scale() {
    // Slightly larger than the unit smoke test so the ordering claims have
    // room to show; still seconds-scale.
    let cfg = PipelineConfig {
        n_train: 160,
        n_test: 80,
        stage1_epochs: 4,
        stage2_epochs: 2,
        ..PipelineConfig::smoke_test()
    };
    let mut pipeline = Pipeline::new(cfg);
    let report = pipeline.run();

    let fp = report.accuracy("FP LN-ViT [24]").unwrap();
    let prog = report.accuracy("BN-ViT + progressive quant").unwrap();
    let ft = report.accuracy("BN-ViT + progressive quant + appr-aware ft").unwrap();

    // The FP reference must be strong on the smoke task.
    assert!(fp > 40.0, "FP reference too weak: {fp}");
    // Progressive quantization must stay within reach of FP (the paper's
    // headline: it recovers most of the direct-quantization collapse).
    assert!(prog > 25.0, "progressive quant collapsed: {prog}");
    // The final SC-friendly model must be usable.
    assert!(ft > 25.0, "fine-tuned model unusable: {ft}");
    // Artifacts exposed.
    assert!(pipeline.final_model.is_some());
    assert!(pipeline.teacher_fp.is_some());
    let final_model = pipeline.final_model.as_ref().unwrap();
    assert_eq!(
        final_model.plan(),
        ascend_vit::PrecisionPlan::w2_a2_r16(),
        "final model must be at SC precision"
    );
}
