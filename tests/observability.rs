//! The observability layer's cross-crate contracts:
//!
//! * **Instrumentation is invisible to numerics** — a `ServePool` over an
//!   [`InstrumentedBackend`] produces logits bit-for-bit equal to the bare
//!   pool's, while the wrapped backend's [`StageStats`] actually fill.
//! * **Histograms agree with `ServeReport`** — the log2-bucket histogram
//!   and the report's exact nearest-rank percentile implement the *same*
//!   rank definition, so on identical samples the exact percentile always
//!   lies inside the histogram's bucket bounds.
//! * **Traces cover exactly the served requests** — every job a worker
//!   claims leaves a queue-wait and a service span attributed to its trace
//!   id; a shed request (bounded queue full) leaves none.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ascend::engine::{EngineConfig, ScEngine};
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::instrument::{InstrumentedBackend, StageStats};
use ascend::serve::{ServeConfig, ServePool, ServeReport, ServeRequest};
use ascend::{ForwardScratch, InferenceBackend};
use ascend_obs::{Registry, TraceId};
use ascend_tensor::Tensor;
use ascend_vit::data::Dataset;
use ascend_vit::{PrecisionPlan, VitConfig};
use sc_core::ScError;

mod support;
use support::assert_bit_identical;

/// This file's fixture: 2 FP epochs, calibrate, no QAT — observability
/// tests need *a* compiled engine, not an accurate one.
fn tiny_engine() -> (Arc<ScEngine>, Dataset) {
    let mut recipe = FixtureRecipe::tiny("serve-tiny", 5);
    recipe.n_train = 48;
    recipe.n_test = 24;
    recipe.pre_epochs = 2;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("tiny engine compiles");
    (Arc::new(engine), test)
}

#[test]
fn instrumented_pool_is_bit_identical_to_bare_pool() {
    let (engine, test) = tiny_engine();
    let n = 13usize; // ragged: 3 full micro-batches of 4 plus a tail of 1
    let idx: Vec<usize> = (0..n).collect();
    let patches = test.patches(&idx, 4);
    let cfg = ServeConfig { workers: 2, micro_batch: 4, queue_depth: 0 };

    let bare = ServePool::new(Arc::clone(&engine), cfg).expect("bare pool builds");
    let (reference, _) = bare.run_batch(&patches, n).expect("bare run");

    let stats = Arc::new(StageStats::new());
    let wrapped = InstrumentedBackend::with_stats(Arc::clone(&engine), Arc::clone(&stats));
    let instrumented = ServePool::new(Arc::new(wrapped), cfg).expect("instrumented pool builds");
    let (observed, report) = instrumented.run_batch(&patches, n).expect("instrumented run");

    assert_bit_identical(&observed, &reference, "instrumented vs bare pool");
    // One micro-batch request per 4 images, one counted forward per image.
    assert_eq!(report.requests(), n.div_ceil(4));
    assert_eq!(stats.forwards(), n as u64);
    // Every stage of the ViT forward showed up in the per-stage breakdown.
    for stage in ascend_obs::Stage::ALL {
        assert!(
            stats.stage_snapshot(stage).count() > 0,
            "stage {stage:?} recorded no samples"
        );
    }
}

#[test]
fn histogram_brackets_serve_report_percentiles_on_identical_samples() {
    // A deliberately skewed latency population: microsecond-scale bulk
    // with a heavy millisecond tail, crossing many log2 buckets.
    let samples_ns: Vec<u64> = (1..=200u64)
        .map(|i| if i % 17 == 0 { i * 1_000_000 } else { 300 + i * i * 40 })
        .collect();

    let registry = Registry::new();
    let hist = registry.histogram("agreement_seconds", "percentile agreement fixture");
    for &ns in &samples_ns {
        hist.observe_ns(ns);
    }
    let snap = hist.snapshot();

    let latencies: Vec<Duration> = samples_ns.iter().map(|&ns| Duration::from_nanos(ns)).collect();
    let report = ServeReport::from_parts(latencies, Duration::from_secs(1), 200, 1);

    assert_eq!(snap.count(), 200);
    for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
        let exact = u64::try_from(report.latency_percentile(p).as_nanos()).expect("fits u64");
        let (lo, hi) = snap.percentile_bounds_ns(p);
        assert!(
            lo <= exact && exact <= hi,
            "p{p}: exact nearest-rank {exact}ns outside histogram bucket [{lo}, {hi}]"
        );
        // The conservative scalar percentile is the bucket's upper bound.
        assert_eq!(snap.percentile_ns(p), hi);
    }
}

/// A controllable backend: `forward_one` blocks until the gate opens, then
/// echoes `[sum, -sum]` — lets the test hold a worker busy, queue a second
/// request, and shed a third, all deterministically.
struct GatedBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GatedBackend {
    fn new() -> Self {
        GatedBackend {
            cfg: VitConfig {
                image: 8,
                patch: 4,
                dim: 16,
                layers: 1,
                heads: 2,
                classes: 2,
                ..Default::default()
            },
            plan: PrecisionPlan::fp(),
            gate: Mutex::new(false),
            opened: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.gate.lock().expect("gate lock") = true;
        self.opened.notify_all();
    }

    fn payload(&self) -> Tensor {
        let values = self.cfg.num_patches() * self.cfg.patch_dim();
        Tensor::from_vec(
            (0..values).map(|i| i as f32 * 0.01).collect(),
            &[self.cfg.num_patches(), self.cfg.patch_dim()],
        )
    }
}

impl InferenceBackend for GatedBackend {
    fn name(&self) -> &str {
        "gated"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        let mut open = self.gate.lock().expect("gate lock");
        while !*open {
            open = self.opened.wait(open).expect("gate wait");
        }
        drop(open);
        let sum: f32 = patches.data().iter().sum();
        Ok(vec![sum, -sum])
    }
}

#[test]
fn spans_cover_every_served_request_and_never_a_shed_one() {
    let backend = Arc::new(GatedBackend::new());
    let pool = ServePool::new(
        Arc::clone(&backend),
        ServeConfig { workers: 1, micro_batch: 1, queue_depth: 1 },
    )
    .expect("pool builds");

    let ids: Vec<TraceId> = (0..3).map(|_| TraceId::mint()).collect();
    let request = |i: usize| ServeRequest::new(backend.payload(), 1).with_trace(ids[i]);

    // A is claimed by the lone worker and blocks on the gate; wait until
    // the queue slot frees up so B deterministically occupies it.
    let a = pool.submit(request(0)).expect("submit A");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while pool.queued() > 0 {
        assert!(std::time::Instant::now() < deadline, "worker never claimed A");
        std::thread::yield_now();
    }
    let b = pool.try_submit(request(1)).expect("submit B");
    // C: queue full — shed at admission, before any worker involvement.
    match pool.try_submit(request(2)) {
        Err(ScError::QueueFull { .. }) => {}
        Err(e) => panic!("expected QueueFull for C, got {e}"),
        Ok(_) => panic!("C was admitted despite a full queue"),
    }

    // Hold the gate shut a beat longer: A is mid-service and B is queued
    // for all of it, so the split must attribute that time to A's service
    // and B's queue wait respectively.
    let held = Duration::from_millis(50);
    std::thread::sleep(held);
    backend.open();
    let (_, timing_a) = a.collect().expect("collect A");
    let (_, timing_b) = b.collect().expect("collect B");
    assert!(timing_a.service >= held, "A's gate-blocked time must land in service");
    assert!(timing_b.queue_wait >= held, "B's queued time must land in queue_wait");

    let obs = pool.obs();
    assert_eq!(obs.queue_wait().snapshot().count(), 2, "queue-wait histogram");
    assert_eq!(obs.service().snapshot().count(), 2, "service histogram");

    let spans = obs.trace().snapshot();
    assert_eq!(spans.len(), 4, "two spans per served request, none for the shed one");
    for (i, expect_served) in [(0usize, true), (1, true), (2, false)] {
        let mine: Vec<_> = spans.iter().filter(|s| s.trace_id == ids[i]).collect();
        if expect_served {
            assert_eq!(mine.len(), 2, "request {i} span count");
            let names: Vec<&str> = mine.iter().map(|s| s.name).collect();
            assert!(names.contains(&"queue_wait") && names.contains(&"service"));
        } else {
            assert!(mine.is_empty(), "shed request {i} leaked spans: {mine:?}");
        }
    }
    let json = obs.trace().to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "chrome envelope");
    assert!(!json.contains(&format!("\"trace_id\":{}", ids[2].0)), "shed id in chrome export");
}
