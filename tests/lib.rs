//! Shared fixtures for the cross-crate integration tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A deterministic pseudo-random logit row (no rand dependency needed at
/// call sites).
pub fn logit_row(m: usize, seed: u64) -> Vec<f64> {
    (0..m)
        .map(|i| (((i as f64) + seed as f64 * 1.7) * 0.613).sin() * 2.0)
        .collect()
}
