//! Integration: the deterministic SC stack composes correctly across
//! crates — thermometer GEMM equals integer GEMM, and the nonlinear blocks
//! plug into the same streams.

use sc_core::encoding::Thermometer;
use sc_core::rescale::{rescale, RescaleMode};
use sc_core::{bsn, ttmul, ThermStream};
use sc_nonlinear::gate_si::GateAssistedSi;
use sc_nonlinear::ref_fn;

/// A dot product computed entirely with SC primitives must equal the
/// integer dot product of the quantized operands.
#[test]
fn sc_dot_product_equals_integer_dot_product() {
    let w_enc = Thermometer::new(2, 0.5).unwrap(); // ternary weights
    let x_enc = Thermometer::new(2, 0.25).unwrap(); // ternary activations
    let weights = [-0.5, 0.0, 0.5, 0.5, -0.5, 0.0, 0.5, -0.5];
    let acts = [0.25, -0.25, 0.25, 0.0, -0.25, 0.25, 0.0, 0.25];

    // SC path: truth-table multiply every pair, BSN-accumulate.
    let products: Vec<ThermStream> = weights
        .iter()
        .zip(acts.iter())
        .map(|(&w, &x)| ttmul::mul(&w_enc.encode(w), &x_enc.encode(x)).unwrap())
        .collect();
    let refs: Vec<&ThermStream> = products.iter().collect();
    let acc = bsn::add(&refs).unwrap();

    // Integer path.
    let exact: f64 = weights.iter().zip(acts.iter()).map(|(w, x)| w * x).sum();
    assert!((acc.value() - exact).abs() < 1e-12, "{} vs {exact}", acc.value());

    // The accumulated stream re-scales into a narrower residual stream with
    // bounded error.
    let narrowed = rescale(&acc, 4, RescaleMode::Round).unwrap();
    assert!((narrowed.value() - exact).abs() <= narrowed.scale() + 1e-12);
}

/// A full "linear layer + GELU" slice: accumulate, rescale, and feed the
/// gate-assisted SI block, comparing against the float reference within the
/// compiled grid error.
#[test]
fn linear_then_gelu_slice_matches_reference_within_grid() {
    let w_enc = Thermometer::new(2, 0.5).unwrap();
    let x_enc = Thermometer::new(2, 0.5).unwrap();
    let weights = [0.5, -0.5, 0.5, 0.5, 0.0, -0.5];
    let acts = [0.5, 0.5, -0.5, 0.5, 0.5, 0.5];

    let products: Vec<ThermStream> = weights
        .iter()
        .zip(acts.iter())
        .map(|(&w, &x)| ttmul::mul(&w_enc.encode(w), &x_enc.encode(x)).unwrap())
        .collect();
    let refs: Vec<&ThermStream> = products.iter().collect();
    let pre = bsn::add(&refs).unwrap(); // scale 0.25, len 12

    // Compile a GELU for exactly this stream geometry.
    let gelu_in = Thermometer::new(pre.len(), pre.scale()).unwrap();
    let gelu_out = Thermometer::new(8, 0.125).unwrap();
    let block = GateAssistedSi::compile(ref_fn::gelu, gelu_in, gelu_out).unwrap();
    let y = block.eval(&pre);

    let exact = ref_fn::gelu(weights.iter().zip(acts.iter()).map(|(w, x)| w * x).sum());
    assert!(
        (y.value() - exact).abs() <= 0.125 / 2.0 + 1e-9,
        "{} vs {exact}",
        y.value()
    );
}

/// Negation, addition and subtraction compose across the whole stack.
#[test]
fn signed_arithmetic_composes() {
    let enc = Thermometer::new(16, 0.125).unwrap();
    let a = enc.encode(0.875);
    let b = enc.encode(-0.375);
    let diff = bsn::sub(&a, &b).unwrap();
    assert!((diff.value() - 1.25).abs() < 1e-12);
    let back = bsn::add(&[&diff, &b]).unwrap();
    assert!((back.value() - 0.875).abs() < 1e-12);
}
