//! Tier-1 determinism contract of the serving runtime: the persistent
//! [`ServePool`] must produce **bit-for-bit** the same logits as the
//! serial [`ScEngine::forward`] for the same inputs, across worker counts,
//! odd batch sizes that do not divide evenly into micro-batches, and —
//! since the pool is long-lived — across successive runs on one pool.
//!
//! This is what makes the runtime safe to drop into accuracy experiments:
//! parallelism is purely a scheduling concern and never a numerics one.
//! The same file proves the pool's queueing semantics: a bounded queue
//! blocks submitters (real backpressure) without ever dropping or
//! reordering a request.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ascend::engine::{EngineConfig, ScEngine};
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{BatchRunner, ServeConfig, ServePool, ServeRequest};
use ascend::{ForwardScratch, InferenceBackend, RefEngine};
use ascend_tensor::Tensor;
use ascend_vit::data::Dataset;
use ascend_vit::{PrecisionPlan, VitConfig};
use sc_core::ScError;

/// The one definition of this file's fixture: 2 FP epochs, calibrate, no
/// QAT — determinism tests only need *a* compiled engine, trained once.
fn tiny_recipe() -> FixtureRecipe {
    let mut recipe = FixtureRecipe::tiny("serve-tiny", 5);
    recipe.n_train = 48;
    recipe.n_test = 24;
    recipe.pre_epochs = 2;
    recipe.qat_epochs = 0;
    recipe
}

fn tiny_engine() -> (Arc<ScEngine>, Dataset) {
    let (engine, _train, test) =
        engine_or_load(&tiny_recipe(), EngineConfig::default()).expect("tiny engine compiles");
    (Arc::new(engine), test)
}

mod support;
use support::assert_bit_identical;

#[test]
fn batch_runner_is_bit_identical_across_worker_counts() {
    let (engine, test) = tiny_engine();
    // Odd batch sizes: 7 = 4 + 3 and 13 = 3·4 + 1 leave ragged final
    // micro-batches at micro_batch = 4.
    for &n in &[7usize, 13] {
        let idx: Vec<usize> = (0..n).collect();
        let patches = test.patches(&idx, 4);
        let serial = engine.forward(&patches, n).expect("serial forward");
        for workers in [1usize, 2, 4] {
            let runner = BatchRunner::new(
                Arc::clone(&engine),
                ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
            )
            .expect("runner builds");
            let (parallel, report) = runner.run_batch(&patches, n).expect("parallel run");
            assert_bit_identical(&parallel, &serial, &format!("n={n} workers={workers}"));
            assert_eq!(report.images(), n);
            assert_eq!(report.requests(), n.div_ceil(4));
            // The report states the pool size that actually served the
            // run: the number of long-lived threads, exactly as asked.
            assert_eq!(report.workers(), workers);
            assert_eq!(runner.workers(), workers);
        }
    }
}

#[test]
fn request_queue_matches_per_request_serial_forward() {
    let (engine, test) = tiny_engine();
    // Heterogeneous request sizes through a bounded work queue.
    let sizes = [3usize, 1, 5, 2];
    let mut requests = Vec::new();
    let mut offset = 0usize;
    for &sz in &sizes {
        let idx: Vec<usize> = (offset..offset + sz).collect();
        requests.push(ServeRequest::new(test.patches(&idx, 4), sz));
        offset += sz;
    }
    let pool = ServePool::new(
        Arc::clone(&engine),
        ServeConfig { workers: 3, micro_batch: 4, queue_depth: 2 },
    )
    .expect("pool builds");
    let outcome = pool.run(&requests).expect("queue run");
    assert_eq!(outcome.logits.len(), sizes.len());
    assert_eq!(outcome.report.requests(), sizes.len());
    assert_eq!(outcome.report.images(), sizes.iter().sum::<usize>());
    assert_eq!(outcome.report.latencies().len(), sizes.len());
    for (req, got) in requests.iter().zip(outcome.logits.iter()) {
        let want = engine.forward(&req.patches, req.images).expect("serial forward");
        assert_bit_identical(got, &want, &format!("request of {} images", req.images));
    }
}

#[test]
fn pool_reuse_is_bit_identical_to_fresh_pools_for_both_backends() {
    // The acceptance bar of the persistent pool: successive `run_batch`
    // calls on ONE pool must match both the serial forward and a freshly
    // spawned pool per call, bit for bit, for the SC and ref backends
    // alike, across worker counts and a ragged micro-batch split.
    let recipe = tiny_recipe();
    let (ckpt, _, test) = ascend::fixture::checkpoint_or_load(&recipe);
    let sc: Arc<dyn InferenceBackend> = Arc::new(
        ScEngine::compile_from_checkpoint(&ckpt, EngineConfig::default()).expect("sc compiles"),
    );
    let reference: Arc<dyn InferenceBackend> =
        Arc::new(RefEngine::compile_from_checkpoint(&ckpt).expect("ref compiles"));
    let n = 13usize; // 3·4 + 1: ragged at micro_batch = 4
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    for (backend, label) in [(&sc, "sc"), (&reference, "ref")] {
        let serial = backend.forward(&patches, n).expect("serial forward");
        for workers in [1usize, 2, 4] {
            let cfg = ServeConfig { workers, micro_batch: 4, queue_depth: 0 };
            let reused = ServePool::new(Arc::clone(backend), cfg).expect("pool builds");
            for round in 0..3 {
                let (from_reused, report) =
                    reused.run_batch(&patches, n).expect("reused-pool run");
                assert_bit_identical(
                    &from_reused,
                    &serial,
                    &format!("{label} reused pool round {round} workers={workers}"),
                );
                assert_eq!(report.workers(), workers);
                // A spawn-per-call pool must agree with the reused one.
                let fresh = ServePool::new(Arc::clone(backend), cfg).expect("fresh pool");
                let (from_fresh, _) = fresh.run_batch(&patches, n).expect("fresh-pool run");
                assert_bit_identical(
                    &from_fresh,
                    &from_reused,
                    &format!("{label} fresh vs reused round {round} workers={workers}"),
                );
                fresh.shutdown();
            }
            reused.shutdown();
        }
    }
}

#[test]
fn streaming_submit_collect_preserves_request_order() {
    let (engine, test) = tiny_engine();
    let pool = ServePool::new(
        Arc::clone(&engine),
        ServeConfig { workers: 2, micro_batch: 4, queue_depth: 3 },
    )
    .expect("pool builds");
    // Submit a stream of single-image requests, collect handles in
    // submission order, and check each against the serial forward.
    let sizes = [2usize, 1, 3, 1, 2];
    let mut offset = 0usize;
    let mut handles = Vec::new();
    let mut wants = Vec::new();
    for &sz in &sizes {
        let idx: Vec<usize> = (offset..offset + sz).collect();
        let patches = test.patches(&idx, 4);
        wants.push(engine.forward(&patches, sz).expect("serial forward"));
        let handle = pool.submit(ServeRequest::new(patches, sz)).expect("submit");
        assert_eq!(handle.images(), sz);
        handles.push(handle);
        offset += sz;
    }
    for ((handle, want), sz) in handles.into_iter().zip(&wants).zip(&sizes) {
        let (got, _latency) = handle.collect().expect("collect");
        assert_bit_identical(&got, want, &format!("streamed request of {sz} images"));
    }
    pool.shutdown();
}

#[test]
fn pool_with_more_workers_than_requests_drains_cleanly() {
    let (engine, test) = tiny_engine();
    let pool = ServePool::new(
        Arc::clone(&engine),
        ServeConfig { workers: 8, micro_batch: 4, queue_depth: 1 },
    )
    .expect("pool builds");
    let patches = test.patches(&[0, 1], 4);
    let serial = engine.forward(&patches, 2).expect("serial forward");
    let outcome = pool
        .run(&[ServeRequest::new(patches.clone(), 2)])
        .expect("underfull pool run");
    assert_bit_identical(&outcome.logits[0], &serial, "workers > requests");
    assert_eq!(outcome.report.workers(), 8, "report must state the real pool size");
    // Idle workers must not wedge shutdown.
    pool.shutdown();
}

/// A controllable backend for queueing tests: every `forward_one` blocks
/// until the gate opens, then echoes a deterministic function of its
/// input, so tests can hold the pool stalled and observe the queue.
struct GatedBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GatedBackend {
    fn new() -> Self {
        let cfg = VitConfig {
            image: 8,
            patch: 4,
            dim: 16,
            layers: 1,
            heads: 2,
            classes: 2,
            ..Default::default()
        };
        GatedBackend { cfg, plan: PrecisionPlan::fp(), gate: Mutex::new(false), opened: Condvar::new() }
    }

    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }
}

impl InferenceBackend for GatedBackend {
    fn name(&self) -> &str {
        "gated"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
        drop(open);
        let sum: f32 = patches.data().iter().sum();
        Ok(vec![sum, -sum])
    }
}

#[test]
fn full_queue_blocks_submitters_without_dropping_or_reordering() {
    let backend = Arc::new(GatedBackend::new());
    let (p, pd) = (backend.cfg.num_patches(), backend.cfg.patch_dim());
    // One worker, queue depth 1: with the gate closed the worker stalls on
    // request 0, the queue holds one more, and every further submit must
    // block — that is the backpressure contract.
    let pool = ServePool::new(
        Arc::clone(&backend),
        ServeConfig { workers: 1, micro_batch: 1, queue_depth: 1 },
    )
    .expect("pool builds");
    let total = 6usize;
    let submitted = AtomicUsize::new(0);
    let make = |v: f32| ServeRequest::new(Tensor::from_vec(vec![v; p * pd], &[p, pd]), 1);

    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            (0..total)
                .map(|i| {
                    let handle = pool.submit(make(i as f32)).expect("submit");
                    submitted.fetch_add(1, Ordering::SeqCst);
                    handle
                })
                .collect::<Vec<_>>()
        });
        // Give the submitter real time: while the pool is stalled, at most
        // the in-flight request plus the one queue slot can be admitted.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let admitted = submitted.load(Ordering::SeqCst);
        let submitter_done = submitter.is_finished();
        // Open the gate BEFORE asserting on the captured observations: a
        // failed assertion must unwind through the scope's implicit join,
        // and the submitter can only finish once the pool drains —
        // asserting first would turn a test failure into a deadlock.
        backend.open();
        assert!(
            admitted <= 2,
            "bounded queue (depth 1) admitted {admitted} submissions while the pool was stalled"
        );
        assert!(!submitter_done, "submitter must be blocked, not done");

        // Everything drains, nothing was dropped, and the results come
        // back in submission order with the right payloads.
        let handles = submitter.join().expect("submitter thread");
        assert_eq!(handles.len(), total);
        for (i, handle) in handles.into_iter().enumerate() {
            let (logits, _) = handle.collect().expect("collect");
            let want = i as f32 * (p * pd) as f32;
            assert_eq!(logits.data()[0], want, "request {i} dropped or reordered");
            assert_eq!(logits.data()[1], -want, "request {i} corrupted");
        }
    });
    pool.shutdown();
}

#[test]
fn try_submit_sheds_on_a_full_queue_and_the_gauges_track_it() {
    let backend = Arc::new(GatedBackend::new());
    let (p, pd) = (backend.cfg.num_patches(), backend.cfg.patch_dim());
    let make = |v: f32| ServeRequest::new(Tensor::from_vec(vec![v; p * pd], &[p, pd]), 1);
    // On timeout, open the gate BEFORE panicking: the pool's Drop joins
    // its worker, and a worker parked on a closed gate would turn a test
    // failure into a deadlock.
    let wait_until = |what: &str, mut done: Box<dyn FnMut() -> bool + '_>| {
        let start = std::time::Instant::now();
        while !done() {
            if start.elapsed() >= std::time::Duration::from_secs(5) {
                backend.open();
                panic!("timed out waiting for {what}");
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    let pool = ServePool::new(
        Arc::clone(&backend),
        ServeConfig { workers: 1, micro_batch: 1, queue_depth: 1 },
    )
    .expect("pool builds");
    assert_eq!(pool.queue_capacity(), 1);

    // A is admitted and picked up by the gated (stalled) worker; B fills
    // the single queue slot.
    let a = pool.try_submit(make(1.0)).expect("A admitted");
    wait_until("A in flight", Box::new(|| pool.in_flight() == 1));
    let b = pool.try_submit(make(2.0)).expect("B queued");
    wait_until("B queued", Box::new(|| pool.queued() == 1));

    // C must be shed *now*, with the typed error — never block, never
    // enqueue. (`submit` would block here; that contract is proved by
    // `full_queue_blocks_submitters_without_dropping_or_reordering`.)
    match pool.try_submit(make(3.0)) {
        Err(ScError::QueueFull { depth }) => assert_eq!(depth, 1),
        other => {
            backend.open(); // never leave the pool wedged on a failure
            panic!(
                "full queue must shed with QueueFull, got {:?}",
                other.map(|_| "an admitted handle")
            );
        }
    }

    // Drain: A and B were untouched by the shed, in order and intact.
    backend.open();
    for (handle, v) in [(a, 1.0f32), (b, 2.0f32)] {
        let (logits, _) = handle.collect().expect("collect");
        let want = v * (p * pd) as f32;
        assert_eq!(logits.data(), &[want, -want], "request {v} dropped or corrupted");
    }
    wait_until("gauges drain to zero", Box::new(|| pool.queued() == 0 && pool.in_flight() == 0));

    // The shed request was never enqueued: the drained pool serves again.
    let (logits, _) = pool.try_submit(make(4.0)).expect("post-drain admit").collect().expect("ok");
    assert_eq!(logits.data()[0], 4.0 * (p * pd) as f32);
    pool.shutdown();
}

/// A backend whose worker dies on first contact, for the pool-loss path.
struct PanickingBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
}

impl InferenceBackend for PanickingBackend {
    fn name(&self) -> &str {
        "panicking"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        _patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        panic!("worker down (intentional, this test kills the pool)");
    }
}

#[test]
fn worker_loss_surfaces_pool_gone_instead_of_hanging() {
    let gated = GatedBackend::new(); // only for its VitConfig geometry
    let (p, pd) = (gated.cfg.num_patches(), gated.cfg.patch_dim());
    let make = |v: f32| ServeRequest::new(Tensor::from_vec(vec![v; p * pd], &[p, pd]), 1);
    let backend = Arc::new(PanickingBackend { cfg: gated.cfg, plan: PrecisionPlan::fp() });
    let pool = ServePool::new(
        backend,
        ServeConfig { workers: 1, micro_batch: 1, queue_depth: 1 },
    )
    .expect("pool builds");

    // The first request kills the only worker; its dropped reply channel
    // must surface as the typed pool-gone error, not a hang.
    let handle = pool.submit(make(1.0)).expect("first submit is admitted");
    let err = handle.collect().map(|_| ()).unwrap_err();
    assert!(matches!(err, ScError::PoolGone), "got {err:?}");

    // Once the dead worker's queue handle is gone, both admission paths
    // answer PoolGone promptly. The unwind races us, so poll briefly: an
    // `Ok` admission just means the queue still looked open — collecting
    // it must itself report PoolGone, never block.
    let start = std::time::Instant::now();
    loop {
        match pool.try_submit(make(2.0)) {
            Err(ScError::PoolGone) => break,
            Err(other) => panic!("expected PoolGone, got {other:?}"),
            Ok(handle) => {
                let err = handle.collect().map(|_| ()).unwrap_err();
                assert!(matches!(err, ScError::PoolGone), "got {err:?}");
            }
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "try_submit after worker loss never reported PoolGone"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let err = pool.submit(make(3.0)).map(|_| ()).unwrap_err();
    assert!(matches!(err, ScError::PoolGone), "blocking submit must error too, got {err:?}");
    pool.shutdown();
}

#[test]
fn forward_one_composes_to_batched_forward() {
    let (engine, test) = tiny_engine();
    let idx: Vec<usize> = (0..5).collect();
    let patches = test.patches(&idx, 4);
    let batched = engine.forward(&patches, 5).expect("batched forward");
    let cfg = engine.vit_config();
    let (p, pd) = (cfg.num_patches(), cfg.patch_dim());
    let mut scratch = engine.scratch();
    let mut rows = Vec::new();
    for bi in 0..5 {
        let img = Tensor::from_vec(
            patches.data()[bi * p * pd..(bi + 1) * p * pd].to_vec(),
            &[p, pd],
        );
        rows.extend(engine.forward_one(&img, &mut scratch).expect("forward_one"));
    }
    let stacked = Tensor::from_vec(rows, &[5, cfg.classes]);
    assert_bit_identical(&stacked, &batched, "forward_one composition");
}

#[test]
fn session_facade_preserves_the_bit_identity_contract() {
    // The same parallel == serial proof, driven end to end through the
    // public `Session` facade on the SC backend: build from the fixture
    // checkpoint, serve repeatedly through `Session::serve_batch` (which
    // reuses the session's one persistent pool), compare against
    // `Session::forward`.
    let recipe = tiny_recipe();
    for workers in [1usize, 2, 4] {
        let (ckpt, _, test) = ascend::fixture::checkpoint_or_load(&recipe);
        let session = ascend::Session::builder()
            .checkpoint(ckpt)
            .backend(ascend::BackendKind::Sc)
            .workers(workers)
            .micro_batch(4)
            .build()
            .expect("session builds");
        assert_eq!(session.backend().name(), "sc-exact");
        let n = 13usize;
        let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
        let serial = session.forward(&patches, n).expect("serial forward");
        for round in 0..2 {
            let (parallel, report) = session.serve_batch(&patches, n).expect("parallel serve");
            assert_bit_identical(
                &parallel,
                &serial,
                &format!("session workers={workers} round={round}"),
            );
            assert_eq!(report.images(), n);
            assert_eq!(report.requests(), n.div_ceil(4));
            assert_eq!(report.workers(), workers, "session pool size must be stable");
        }
    }
}

#[test]
fn session_compiles_the_same_engine_as_the_direct_path() {
    // Facade neutrality: a session built from the fixture checkpoint must
    // produce logits bit-identical to the directly compiled engine.
    let (engine, test) = tiny_engine();
    let (session, _, _) = ascend::fixture::session_or_load(
        &tiny_recipe(),
        EngineConfig::default(),
        ascend::BackendKind::Sc,
    )
    .expect("session builds");
    let patches = test.patches(&(0..5).collect::<Vec<_>>(), 4);
    let direct = engine.forward(&patches, 5).expect("direct forward");
    let via_session = session.forward(&patches, 5).expect("session forward");
    assert_bit_identical(&via_session, &direct, "session vs direct engine");
}

#[test]
fn runner_rejects_malformed_configs_and_requests() {
    let (engine, test) = tiny_engine();
    assert!(
        ServePool::new(
            Arc::clone(&engine),
            ServeConfig { micro_batch: 0, ..ServeConfig::auto() }
        )
        .is_err(),
        "micro_batch = 0 must be rejected"
    );
    let pool = ServePool::new(Arc::clone(&engine), ServeConfig::auto()).expect("pool builds");
    // Claiming 3 images while providing 2 images' worth of patches.
    let two = test.patches(&[0, 1], 4);
    assert!(pool.run(&[ServeRequest::new(two.clone(), 3)]).is_err());
    assert!(pool.run_batch(&two, 3).is_err());
    assert!(pool.submit(ServeRequest::new(two.clone(), 3)).is_err());
    // A rejected request must not poison the pool for valid ones.
    let serial = engine.forward(&two, 2).expect("serial forward");
    let outcome = pool.run(&[ServeRequest::new(two, 2)]).expect("valid run after reject");
    assert_bit_identical(&outcome.logits[0], &serial, "pool healthy after rejection");
}
