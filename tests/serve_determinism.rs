//! Tier-1 determinism contract of the serving runtime: the parallel
//! [`BatchRunner`] must produce **bit-for-bit** the same logits as the
//! serial [`ScEngine::forward`] for the same inputs, across worker counts
//! and odd batch sizes that do not divide evenly into micro-batches.
//!
//! This is what makes the runtime safe to drop into accuracy experiments:
//! parallelism is purely a scheduling concern and never a numerics one.

use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{BatchRunner, ServeConfig, ServeRequest};
use ascend_tensor::Tensor;
use ascend_vit::data::Dataset;

/// The one definition of this file's fixture: 2 FP epochs, calibrate, no
/// QAT — determinism tests only need *a* compiled engine, trained once.
fn tiny_recipe() -> FixtureRecipe {
    let mut recipe = FixtureRecipe::tiny("serve-tiny", 5);
    recipe.n_train = 48;
    recipe.n_test = 24;
    recipe.pre_epochs = 2;
    recipe.qat_epochs = 0;
    recipe
}

fn tiny_engine() -> (ScEngine, Dataset) {
    let (engine, _train, test) =
        engine_or_load(&tiny_recipe(), EngineConfig::default()).expect("tiny engine compiles");
    (engine, test)
}

mod support;
use support::assert_bit_identical;

#[test]
fn batch_runner_is_bit_identical_across_worker_counts() {
    let (engine, test) = tiny_engine();
    // Odd batch sizes: 7 = 4 + 3 and 13 = 3·4 + 1 leave ragged final
    // micro-batches at micro_batch = 4.
    for &n in &[7usize, 13] {
        let idx: Vec<usize> = (0..n).collect();
        let patches = test.patches(&idx, 4);
        let serial = engine.forward(&patches, n).expect("serial forward");
        for workers in [1usize, 2, 4] {
            let runner = BatchRunner::new(
                &engine,
                ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
            )
            .expect("runner builds");
            let (parallel, report) = runner.run_batch(&patches, n).expect("parallel run");
            assert_bit_identical(&parallel, &serial, &format!("n={n} workers={workers}"));
            assert_eq!(report.images(), n);
            assert_eq!(report.requests(), n.div_ceil(4));
            // The report states the parallelism actually available: the
            // pool size capped by the number of requests.
            assert_eq!(report.workers(), workers.min(n.div_ceil(4)));
        }
    }
}

#[test]
fn request_queue_matches_per_request_serial_forward() {
    let (engine, test) = tiny_engine();
    // Heterogeneous request sizes through a bounded admission queue.
    let sizes = [3usize, 1, 5, 2];
    let mut requests = Vec::new();
    let mut offset = 0usize;
    for &sz in &sizes {
        let idx: Vec<usize> = (offset..offset + sz).collect();
        requests.push(ServeRequest::new(test.patches(&idx, 4), sz));
        offset += sz;
    }
    let runner = BatchRunner::new(
        &engine,
        ServeConfig { workers: 3, micro_batch: 4, queue_depth: 2 },
    )
    .expect("runner builds");
    let outcome = runner.run(&requests).expect("queue run");
    assert_eq!(outcome.logits.len(), sizes.len());
    assert_eq!(outcome.report.requests(), sizes.len());
    assert_eq!(outcome.report.images(), sizes.iter().sum::<usize>());
    assert_eq!(outcome.report.latencies().len(), sizes.len());
    for (req, got) in requests.iter().zip(outcome.logits.iter()) {
        let want = engine.forward(&req.patches, req.images).expect("serial forward");
        assert_bit_identical(got, &want, &format!("request of {} images", req.images));
    }
}

#[test]
fn forward_one_composes_to_batched_forward() {
    let (engine, test) = tiny_engine();
    let idx: Vec<usize> = (0..5).collect();
    let patches = test.patches(&idx, 4);
    let batched = engine.forward(&patches, 5).expect("batched forward");
    let cfg = engine.vit_config();
    let (p, pd) = (cfg.num_patches(), cfg.patch_dim());
    let mut scratch = engine.scratch();
    let mut rows = Vec::new();
    for bi in 0..5 {
        let img = Tensor::from_vec(
            patches.data()[bi * p * pd..(bi + 1) * p * pd].to_vec(),
            &[p, pd],
        );
        rows.extend(engine.forward_one(&img, &mut scratch).expect("forward_one"));
    }
    let stacked = Tensor::from_vec(rows, &[5, cfg.classes]);
    assert_bit_identical(&stacked, &batched, "forward_one composition");
}

#[test]
fn session_facade_preserves_the_bit_identity_contract() {
    // The same parallel == serial proof, driven end to end through the
    // public `Session` facade on the SC backend: build from the fixture
    // checkpoint, serve through `Session::serve_batch`, compare against
    // `Session::forward`.
    let recipe = tiny_recipe();
    for workers in [1usize, 2, 4] {
        let (ckpt, _, test) = ascend::fixture::checkpoint_or_load(&recipe);
        let session = ascend::Session::builder()
            .checkpoint(ckpt)
            .backend(ascend::BackendKind::Sc)
            .workers(workers)
            .micro_batch(4)
            .build()
            .expect("session builds");
        assert_eq!(session.backend().name(), "sc-exact");
        let n = 13usize;
        let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
        let serial = session.forward(&patches, n).expect("serial forward");
        let (parallel, report) = session.serve_batch(&patches, n).expect("parallel serve");
        assert_bit_identical(&parallel, &serial, &format!("session workers={workers}"));
        assert_eq!(report.images(), n);
        assert_eq!(report.requests(), n.div_ceil(4));
    }
}

#[test]
fn session_compiles_the_same_engine_as_the_direct_path() {
    // Facade neutrality: a session built from the fixture checkpoint must
    // produce logits bit-identical to the directly compiled engine.
    let (engine, test) = tiny_engine();
    let (session, _, _) = ascend::fixture::session_or_load(
        &tiny_recipe(),
        EngineConfig::default(),
        ascend::BackendKind::Sc,
    )
    .expect("session builds");
    let patches = test.patches(&(0..5).collect::<Vec<_>>(), 4);
    let direct = engine.forward(&patches, 5).expect("direct forward");
    let via_session = session.forward(&patches, 5).expect("session forward");
    assert_bit_identical(&via_session, &direct, "session vs direct engine");
}

#[test]
fn runner_rejects_malformed_configs_and_requests() {
    let (engine, test) = tiny_engine();
    assert!(
        BatchRunner::new(&engine, ServeConfig { micro_batch: 0, ..ServeConfig::auto() }).is_err(),
        "micro_batch = 0 must be rejected"
    );
    let runner = BatchRunner::new(&engine, ServeConfig::auto()).expect("runner builds");
    // Claiming 3 images while providing 2 images' worth of patches.
    let two = test.patches(&[0, 1], 4);
    assert!(runner.run(&[ServeRequest::new(two.clone(), 3)]).is_err());
    assert!(runner.run_batch(&two, 3).is_err());
}
