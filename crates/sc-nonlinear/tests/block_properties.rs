//! Property tests across the nonlinear-block families.

use proptest::prelude::*;
use sc_core::encoding::Thermometer;
use sc_core::rescale::RescaleMode;
use sc_core::ThermStream;
use sc_nonlinear::gate_si::GateAssistedSi;
use sc_nonlinear::ref_fn;
use sc_nonlinear::si::SiBlock;
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

proptest! {
    /// Gate-assisted SI must realize its compiled table exactly for every
    /// input level — the "exact, fluctuation-free" claim of §IV-A.
    #[test]
    fn gate_si_realizes_its_table_exactly(
        bx in prop::sample::select(vec![4usize, 8, 16, 32]),
        by in prop::sample::select(vec![2usize, 4, 8]),
        scale_num in 1u32..8,
    ) {
        let input = Thermometer::new(bx, 0.25 * scale_num as f64).unwrap();
        let output = Thermometer::new(by, 0.1).unwrap();
        let block = GateAssistedSi::compile(ref_fn::gelu, input, output).unwrap();
        for t in 0..=bx {
            let x = ThermStream::from_level(t as i64 - (bx / 2) as i64, bx, input.scale()).unwrap();
            let y = block.eval(&x);
            let expect = block.ones_table()[t] as i64 - (by / 2) as i64;
            prop_assert_eq!(y.level(), expect, "t={}", t);
        }
    }

    /// Naive SI can never beat gate-assisted SI on the same grids (its
    /// transfer is the isotonic projection of the gate-SI table).
    #[test]
    fn naive_si_never_beats_gate_si(
        bx in prop::sample::select(vec![8usize, 16, 32]),
        by in prop::sample::select(vec![4usize, 8]),
    ) {
        let input = Thermometer::with_range(bx, 4.0).unwrap();
        let output = Thermometer::new(by, 0.17).unwrap();
        let gate = GateAssistedSi::compile(ref_fn::gelu, input, output).unwrap();
        let naive = SiBlock::compile(ref_fn::gelu, input, output).unwrap();
        let mut gate_err = 0.0;
        let mut naive_err = 0.0;
        let mut x = -4.0;
        while x <= 4.0 {
            gate_err += (gate.eval_value(x) - ref_fn::gelu(x)).abs();
            naive_err += (naive.eval_value(x) - ref_fn::gelu(x)).abs();
            x += 0.05;
        }
        prop_assert!(gate_err <= naive_err + 1e-9, "gate {} vs naive {}", gate_err, naive_err);
    }

    /// The softmax block's level-domain twin matches the bit-level circuit
    /// on randomized configurations and inputs.
    #[test]
    fn softmax_level_twin_matches_bits(
        m in prop::sample::select(vec![4usize, 8, 16]),
        k in 1usize..=4,
        by in prop::sample::select(vec![8usize, 16]),
        seed in 0u64..50,
    ) {
        let cfg = IterSoftmaxConfig {
            m,
            k,
            bx: 4,
            ax: 1.0,
            by,
            ay: 1.0 / m as f64,
            s1: 2,
            s2: 2,
            mode: RescaleMode::Round,
        };
        if let Ok(block) = IterSoftmaxBlock::new(cfg) {
            let x: Vec<f64> = (0..m)
                .map(|i| ((i as f64 + seed as f64) * 0.77).sin() * 1.5)
                .collect();
            let bits = block.run(&x).unwrap();
            let levels = block.run_levels(&x).unwrap();
            for (b, l) in bits.iter().zip(levels.iter()) {
                prop_assert!((b - l).abs() < 1e-12);
            }
        }
    }

    /// Softmax block outputs stay within the representable state range and
    /// are deterministic.
    #[test]
    fn softmax_outputs_bounded_and_deterministic(seed in 0u64..30) {
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig {
            m: 8,
            k: 3,
            bx: 4,
            ax: 1.0,
            by: 16,
            ay: 0.125,
            s1: 4,
            s2: 4,
            mode: RescaleMode::Round,
        })
        .unwrap();
        let x: Vec<f64> = (0..8).map(|i| ((i as f64 * 1.3) + seed as f64).sin() * 2.0).collect();
        let a = block.run_levels(&x).unwrap();
        let b = block.run_levels(&x).unwrap();
        prop_assert_eq!(&a, &b);
        let bound = 0.125 * 8.0 + 1e-12;
        for v in a {
            prop_assert!(v.abs() <= bound, "out of state range: {}", v);
        }
    }
}
