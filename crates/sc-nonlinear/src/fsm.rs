//! FSM-based stochastic nonlinear blocks (baselines \[6\]–\[9\]).
//!
//! The classic SC approach drives a saturating counter with the input
//! bitstream and derives the output bit from the counter state. The designs
//! here are sequential: they need one clock per stream bit, so accuracy
//! costs latency (paper §II-B, §III-A).

use sc_core::sng::{ComparatorSng, Lfsr};
use sc_core::{Bitstream, ScError};

/// A `2^bits`-state saturating up/down counter — the storage element of
/// every FSM block in this module.
///
/// ```
/// use sc_nonlinear::fsm::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(8)?; // 8 states, starts centered
/// assert_eq!(c.state(), 4);
/// c.step(true);
/// assert_eq!(c.state(), 5);
/// for _ in 0..10 { c.step(true); }
/// assert_eq!(c.state(), 7); // saturates
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaturatingCounter {
    states: u32,
    state: u32,
}

impl SaturatingCounter {
    /// Creates a counter with `states ≥ 2` states, initialized to the middle.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if `states < 2`.
    pub fn new(states: u32) -> Result<Self, ScError> {
        if states < 2 {
            return Err(ScError::InvalidParam {
                name: "states",
                reason: format!("need at least 2 states, got {states}"),
            });
        }
        Ok(SaturatingCounter { states, state: states / 2 })
    }

    /// Number of states.
    pub fn states(&self) -> u32 {
        self.states
    }

    /// Current state in `0..states`.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Steps up (input bit 1) or down (input bit 0), saturating at the ends.
    pub fn step(&mut self, up: bool) {
        if up {
            if self.state < self.states - 1 {
                self.state += 1;
            }
        } else if self.state > 0 {
            self.state -= 1;
        }
    }

    /// True when the state is in the upper half — the standard output rule.
    pub fn in_upper_half(&self) -> bool {
        self.state >= self.states / 2
    }

    /// Resets to the middle state.
    pub fn reset(&mut self) {
        self.state = self.states / 2;
    }
}

/// Brown–Card stochastic tanh: an `n`-state FSM whose upper-half output
/// approximates `tanh(n/2 · x)` for a bipolar input stream of value `x`.
///
/// Returns the output bipolar stream (same length as the input).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `states < 2`.
pub fn stanh(input: &Bitstream, states: u32) -> Result<Bitstream, ScError> {
    let mut fsm = SaturatingCounter::new(states)?;
    Ok(Bitstream::from_fn(input.len(), |i| {
        fsm.step(input.get(i));
        fsm.in_upper_half()
    }))
}

/// Stochastic ReLU in bipolar encoding, after the HEIF \[9\] construction: the
/// output follows the input when the FSM believes the value is positive and
/// emits the zero-value pattern (alternating bits, p = 1/2) otherwise.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `states < 2`.
pub fn srelu(input: &Bitstream, states: u32) -> Result<Bitstream, ScError> {
    let mut fsm = SaturatingCounter::new(states)?;
    let mut toggle = false;
    Ok(Bitstream::from_fn(input.len(), |i| {
        let bit = input.get(i);
        fsm.step(bit);
        if fsm.in_upper_half() {
            bit
        } else {
            // Alternating 0101… decodes to bipolar 0.
            toggle = !toggle;
            toggle
        }
    }))
}

/// Configuration of the FSM-based GELU baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsmGeluConfig {
    /// Bitstream length (BSL). Paper's Fig. 2(a) uses 128 and 1024.
    pub bsl: usize,
    /// FSM state count; tunes the sigmoid sharpness. 16 by default.
    pub states: u32,
    /// Input clipping range: values are encoded bipolar as `x / range`.
    pub range: f64,
    /// LFSR seed for the input SNG (the baseline is stochastic; different
    /// seeds give different draws, which is the fluctuation the paper shows).
    pub seed: u32,
}

impl Default for FsmGeluConfig {
    fn default() -> Self {
        FsmGeluConfig { bsl: 128, states: 16, range: 4.0, seed: 0xBEEF }
    }
}

/// FSM-based GELU baseline: the HEIF-style smooth-ReLU FSM pressed into
/// GELU service, as the CNN-oriented prior work does (\[9\], paper §III-A).
///
/// A MUX forwards the input stream when the saturating FSM (driven by an
/// independent draw of the input) sits in its upper half and emits the
/// zero pattern otherwise, so the output approximates `x · P(upper)` with
/// `P(upper) ≈ (tanh(n/2 · x/range) + 1)/2` — a smooth ReLU. For negative
/// inputs the output saturates at value 0 instead of following GELU's dip:
/// the systematic error of Fig. 2(a). For positive inputs the finite stream
/// length leaves random fluctuation.
#[derive(Debug, Clone)]
pub struct FsmGelu {
    config: FsmGeluConfig,
}

impl FsmGelu {
    /// Creates the block.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] for `states < 2`, a zero BSL or a
    /// non-positive range.
    pub fn new(config: FsmGeluConfig) -> Result<Self, ScError> {
        if config.states < 2 {
            return Err(ScError::InvalidParam {
                name: "states",
                reason: format!("need at least 2 states, got {}", config.states),
            });
        }
        if config.bsl == 0 {
            return Err(ScError::InvalidParam { name: "bsl", reason: "BSL must be non-zero".into() });
        }
        if !(config.range.is_finite() && config.range > 0.0) {
            return Err(ScError::InvalidParam {
                name: "range",
                reason: format!("range must be positive, got {}", config.range),
            });
        }
        Ok(FsmGelu { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FsmGeluConfig {
        &self.config
    }

    /// Evaluates GELU on a single value, returning the decoded output.
    ///
    /// The input is clipped to `[−range, range]`.
    pub fn eval(&self, x: f64) -> f64 {
        let c = &self.config;
        let xv = (x / c.range).clamp(-1.0, 1.0);
        // Two independent SNG draws of the input: one feeds the FSM (scaled
        // so the FSM's effective gain matches σ(1.702x)), one is the value
        // path the MUX forwards.
        let gate_seed = c.seed.wrapping_mul(2654435761).max(1);
        let val_seed = c.seed.wrapping_add(0x9E3779B9).max(1);
        // ascend-lint: allow(no-panic-in-hot-path) -- Lfsr::new only rejects unsupported widths and 16 is statically valid; any seed is accepted
        let mut sng_gate = ComparatorSng::new(Lfsr::new(16, gate_seed).expect("valid width"));
        // ascend-lint: allow(no-panic-in-hot-path) -- Lfsr::new only rejects unsupported widths and 16 is statically valid; any seed is accepted
        let mut sng_val = ComparatorSng::new(Lfsr::new(16, val_seed).expect("valid width"));
        // ascend-lint: allow(no-panic-in-hot-path) -- xv was clamped to [-1, 1] above, the only range bipolar rejects
        let gate_stream = sng_gate.bipolar(xv, c.bsl).expect("clamped value is in range");
        // ascend-lint: allow(no-panic-in-hot-path) -- xv was clamped to [-1, 1] above, the only range bipolar rejects
        let val_stream = sng_val.bipolar(xv, c.bsl).expect("clamped value is in range");

        // ascend-lint: allow(no-panic-in-hot-path) -- c.states was validated by FsmGelu::new before eval can run
        let mut fsm = SaturatingCounter::new(c.states).expect("validated in new");
        let mut toggle = false;
        let out = Bitstream::from_fn(c.bsl, |i| {
            fsm.step(gate_stream.get(i));
            if fsm.in_upper_half() {
                val_stream.get(i)
            } else {
                toggle = !toggle;
                toggle
            }
        });
        (2.0 * out.frac_ones() - 1.0) * c.range
    }

    /// Evaluates GELU over a slice of inputs.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Latency in clock cycles: one bit per cycle (sequential design).
    pub fn cycles(&self) -> usize {
        self.config.bsl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    #[test]
    fn counter_validates_and_saturates() {
        assert!(SaturatingCounter::new(1).is_err());
        let mut c = SaturatingCounter::new(4).unwrap();
        for _ in 0..10 {
            c.step(false);
        }
        assert_eq!(c.state(), 0);
        assert!(!c.in_upper_half());
        c.reset();
        assert_eq!(c.state(), 2);
    }

    #[test]
    fn stanh_tracks_tanh_shape() {
        // stanh(n) ≈ tanh(n/2·x): check sign and saturation behaviour.
        let mut sng = ComparatorSng::new(Lfsr::new(16, 77).unwrap());
        for &x in &[-0.9, -0.5, 0.5, 0.9] {
            let s = sng.bipolar(x, 8192).unwrap();
            let y = stanh(&s, 8).unwrap();
            let v = 2.0 * y.frac_ones() - 1.0;
            let expect = (4.0 * x).tanh();
            assert!((v - expect).abs() < 0.15, "x={x}: {v} vs {expect}");
        }
    }

    #[test]
    fn srelu_zeroes_negatives_passes_positives() {
        let mut sng = ComparatorSng::new(Lfsr::new(16, 5).unwrap());
        let neg = sng.bipolar(-0.8, 8192).unwrap();
        let y = srelu(&neg, 16).unwrap();
        let v = 2.0 * y.frac_ones() - 1.0;
        assert!(v.abs() < 0.1, "negative input should give ~0, got {v}");

        let pos = sng.bipolar(0.8, 8192).unwrap();
        let y = srelu(&pos, 16).unwrap();
        let v = 2.0 * y.frac_ones() - 1.0;
        assert!((v - 0.8).abs() < 0.1, "positive input should pass, got {v}");
    }

    #[test]
    fn fsm_gelu_saturates_at_zero_for_negative_inputs() {
        // The paper's Fig. 2(a) point: systematic error — FSM GELU outputs
        // ~0 where real GELU dips below zero.
        let block = FsmGelu::new(FsmGeluConfig { bsl: 1024, ..Default::default() }).unwrap();
        let y = block.eval(-1.0);
        assert!(y.abs() < 0.12, "expected saturation near 0, got {y}");
        // Real GELU(-1) ≈ −0.159: the baseline misses the dip entirely.
        assert!((y - ref_fn::gelu(-1.0)).abs() > 0.05);
    }

    #[test]
    fn fsm_gelu_tracks_positive_range_with_noise() {
        let block = FsmGelu::new(FsmGeluConfig { bsl: 1024, ..Default::default() }).unwrap();
        for &x in &[1.0, 2.0, 3.0] {
            let y = block.eval(x);
            assert!(
                (y - ref_fn::gelu(x)).abs() < 0.4,
                "x={x}: {y} vs {}",
                ref_fn::gelu(x)
            );
        }
    }

    #[test]
    fn fsm_gelu_longer_streams_reduce_fluctuation() {
        // The random error component must shrink with BSL: compare the
        // spread of outputs across seeds at a fixed input.
        let spread = |bsl: usize| -> f64 {
            let ys: Vec<f64> = (0..8)
                .map(|seed| {
                    FsmGelu::new(FsmGeluConfig { bsl, seed: 1000 + seed, ..Default::default() })
                        .unwrap()
                        .eval(1.5)
                })
                .collect();
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            (ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / ys.len() as f64).sqrt()
        };
        assert!(
            spread(4096) < spread(128),
            "long {} short {}",
            spread(4096),
            spread(128)
        );
    }

    #[test]
    fn fsm_gelu_validation() {
        assert!(FsmGelu::new(FsmGeluConfig { states: 1, ..Default::default() }).is_err());
        assert!(FsmGelu::new(FsmGeluConfig { bsl: 0, ..Default::default() }).is_err());
        assert!(FsmGelu::new(FsmGeluConfig { range: 0.0, ..Default::default() }).is_err());
    }

    #[test]
    fn fsm_gelu_cycles_equals_bsl() {
        let block = FsmGelu::new(FsmGeluConfig { bsl: 256, ..Default::default() }).unwrap();
        assert_eq!(block.cycles(), 256);
    }
}
