//! # sc-nonlinear — SC blocks for nonlinear functions
//!
//! Implements every nonlinear-function circuit family the ASCEND paper
//! discusses, at bit-accurate functional fidelity:
//!
//! | Family | Paper role | Module |
//! |--------|------------|--------|
//! | FSM / saturating counters (\[6\]–\[9\]) | baseline; saturates at 0 for negative GELU inputs (Fig. 2a) | [`fsm`] |
//! | Bernstein polynomials (\[18\]) | baseline; needs long streams + many SNGs (Fig. 2b) | [`bernstein`] |
//! | Naive selective interconnect (\[5\], \[15\]) | baseline; monotone-only (Fig. 2c) | [`si`] |
//! | **Gate-assisted SI** | **ASCEND §IV-A**: exact non-monotonic transfer (Fig. 2d, Fig. 4) | [`gate_si`] |
//! | FSM/binary softmax (\[17\]) | baseline for Table IV | [`softmax_fsm`] |
//! | **Iterative approximate softmax** | **ASCEND §IV-B**: Algorithm 1 on thermometer SC (Fig. 5) | [`softmax_iter`] |
//!
//! [`ref_fn`] provides float-exact references and [`mae`] the error harness
//! used by the table/figure benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bernstein;
pub mod fsm;
pub mod gate_si;
pub mod mae;
pub mod ref_fn;
pub mod si;
pub mod softmax_fsm;
pub mod softmax_iter;


pub use gate_si::GateAssistedSi;
pub use softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig, IterSoftmaxDims};
