//! Iterative approximate softmax — ASCEND's softmax block (§IV-B).
//!
//! Division and exponentiation are hostile to SC; ASCEND sidesteps both with
//! the iterative approximation of \[22\] (Algorithm 1 in the paper): for
//! `y(t) = softmax(t·x)`, `y(0) = 1/m` is known and `y'(t)` is expressible
//! in `y(t)`, so `k` Euler steps march from the uniform vector to softmax
//! using only multiply, accumulate, and division by the *constant* `k` —
//! which in thermometer SC is a scale-factor edit, free in hardware.
//!
//! The circuit (paper Fig. 5) has `m` compute units (MUL① `z_i = x_i·y_i`,
//! MUL② `y_i·sum(z)`, two re-scaling blocks) and two BSNs (sum(z) and the
//! final accumulate). [`IterSoftmaxBlock`] simulates it bit-accurately with
//! every quantization the hardware makes: input/state thermometer grids
//! (`Bx`/`αx`, `By`/`αy`), the `s1`/`s2` sub-sampling of `sum(z)` and
//! `y·sum(z)`, and saturating truncation back to the `By` state register.

use sc_core::encoding::Thermometer;
use sc_core::rescale::{align_scale, rescale, truncate_center, RescaleMode};
use sc_core::{bsn, ttmul, ScError, ThermStream};

/// Float-exact Algorithm 1: `k` Euler steps from the uniform vector.
///
/// This is the *algorithmic* approximation the circuit then quantizes; the
/// gap between this and [`crate::ref_fn::softmax`] is the iteration error,
/// the rest of the block's error is quantization.
///
/// ```
/// use sc_nonlinear::softmax_iter::iterative_softmax_float;
/// use sc_nonlinear::ref_fn;
///
/// let x = [0.5, -0.2, 0.1, 0.9];
/// let approx = iterative_softmax_float(&x, 8);
/// let exact = ref_fn::softmax(&x);
/// for (a, e) in approx.iter().zip(exact.iter()) {
///     assert!((a - e).abs() < 0.05);
/// }
/// ```
pub fn iterative_softmax_float(x: &[f64], k: usize) -> Vec<f64> {
    let m = x.len();
    if m == 0 {
        return Vec::new();
    }
    let mut y = vec![1.0 / m as f64; m];
    for _ in 0..k {
        let z: Vec<f64> = x.iter().zip(y.iter()).map(|(xi, yi)| xi * yi).collect();
        let sum_z: f64 = z.iter().sum();
        for i in 0..m {
            y[i] += (z[i] - y[i] * sum_z) / k as f64;
        }
    }
    y
}

/// Parameters of the SC softmax block (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterSoftmaxConfig {
    /// Row-vector length `m` (64 for the paper's Table IV).
    pub m: usize,
    /// Iteration count `k`.
    pub k: usize,
    /// Input BSL `Bx`.
    pub bx: usize,
    /// Input scale `αx`.
    pub ax: f64,
    /// State BSL `By`.
    pub by: usize,
    /// State scale `αy`.
    pub ay: f64,
    /// Sub-sample rate of `sum(z)` (`s1`).
    pub s1: usize,
    /// Sub-sample rate of `y·sum(z)` (`s2`).
    pub s2: usize,
    /// Rounding behaviour of the re-scaling blocks.
    pub mode: RescaleMode,
}

impl Default for IterSoftmaxConfig {
    fn default() -> Self {
        // The paper's recommended configuration [By, s1, s2, k] = [8,32,8,3]
        // with Bx = 4.
        IterSoftmaxConfig {
            m: 64,
            k: 3,
            bx: 4,
            ax: 1.0,
            by: 8,
            ay: 0.0625,
            s1: 32,
            s2: 8,
            mode: RescaleMode::Round,
        }
    }
}

impl IterSoftmaxConfig {
    /// Basic sanity checks (positivity, parity).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] describing the first violation.
    pub fn validate(&self) -> Result<(), ScError> {
        let fail = |name: &'static str, reason: String| ScError::InvalidParam { name, reason };
        if self.m == 0 {
            return Err(fail("m", "row length must be non-zero".into()));
        }
        if self.k == 0 {
            return Err(fail("k", "iteration count must be non-zero".into()));
        }
        for (name, v) in [("bx", self.bx), ("by", self.by)] {
            if v == 0 || v % 2 != 0 {
                return Err(fail(name, format!("BSL must be even and non-zero, got {v}")));
            }
        }
        for (name, v) in [("ax", self.ax), ("ay", self.ay)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(fail(name, format!("scale must be finite and positive, got {v}")));
            }
        }
        if self.s1 == 0 || self.s2 == 0 {
            return Err(fail("s1/s2", "sub-sample rates must be non-zero".into()));
        }
        Ok(())
    }
}

/// Internal datapath stream lengths of one softmax compute unit (per
/// iteration), consumed by the `sc-hw` cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterSoftmaxDims {
    /// `z_i = x_i·y_i` product length (`Bx·By/2`).
    pub z_len: usize,
    /// BSN① output length (`m·z_len`).
    pub sum_len: usize,
    /// `sum(z)` after the `s1` sub-sample.
    pub sum_sub_len: usize,
    /// MUL② product length before the `s2` sub-sample.
    pub w_len: usize,
    /// MUL② product after the `s2` sub-sample.
    pub w_sub_len: usize,
    /// The `z/k` term after re-scaling onto `αy`.
    pub zk_len: usize,
    /// The `y·sum(z)/k` term after re-scaling onto `αy`.
    pub wk_len: usize,
    /// BSN② input width (`By + zk_len + wk_len`).
    pub acc_len: usize,
}

/// Bit-accurate simulator of the Fig. 5 softmax circuit block.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSoftmaxBlock {
    config: IterSoftmaxConfig,
    in_codec: Thermometer,
    state_codec: Thermometer,
}

impl IterSoftmaxBlock {
    /// Builds the block, verifying the configuration is self-consistent
    /// (every internal re-scale must be feasible — this is what makes some
    /// of the 2916 DSE grid points "impossible designs").
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if validation or any dry-run
    /// feasibility check fails.
    pub fn new(config: IterSoftmaxConfig) -> Result<Self, ScError> {
        config.validate()?;
        let in_codec = Thermometer::new(config.bx, config.ax)?;
        let state_codec = Thermometer::new(config.by, config.ay)?;
        let block = IterSoftmaxBlock { config, in_codec, state_codec };
        // Dry-run one step on a zero vector to surface infeasible rescales.
        block.run(&vec![0.0; config.m])?;
        Ok(block)
    }

    /// The configuration.
    pub fn config(&self) -> &IterSoftmaxConfig {
        &self.config
    }

    /// Input codec (`Bx`, `αx`).
    pub fn input_codec(&self) -> &Thermometer {
        &self.in_codec
    }

    /// State codec (`By`, `αy`).
    pub fn state_codec(&self) -> &Thermometer {
        &self.state_codec
    }

    /// Runs the circuit on a logit row, returning the decoded softmax
    /// approximation.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if `x.len() != m`, and
    /// [`ScError::InvalidParam`] if an internal re-scale is infeasible for
    /// this configuration.
    pub fn run(&self, x: &[f64]) -> Result<Vec<f64>, ScError> {
        let c = &self.config;
        if x.len() != c.m {
            return Err(ScError::LengthMismatch { left: x.len(), right: c.m });
        }
        // Encode inputs once (clamped to the αx·Bx/2 range).
        let xs: Vec<ThermStream> = x.iter().map(|&v| self.in_codec.encode(v)).collect();
        // y⁰ = 1/m on the state grid.
        let y0 = self.state_codec.encode(1.0 / c.m as f64);
        let mut ys: Vec<ThermStream> = vec![y0; c.m];

        for _ in 0..c.k {
            // MUL①: z_i = x_i · y_i (truth-table, exact).
            let zs: Vec<ThermStream> = xs
                .iter()
                .zip(ys.iter())
                .map(|(xi, yi)| ttmul::mul(xi, yi))
                .collect::<Result<_, _>>()?;
            // BSN①: sum(z), then sub-sample by s1.
            let z_refs: Vec<&ThermStream> = zs.iter().collect();
            let sum_z = bsn::add(&z_refs)?;
            let sum_z = rescale(&sum_z, c.s1, c.mode)?;

            let mut next = Vec::with_capacity(c.m);
            for (yi, zi) in ys.iter().zip(zs.iter()) {
                // MUL②: w_i = y_i · sum(z), then sub-sample by s2.
                let wi = ttmul::mul(yi, &sum_z)?;
                let wi = rescale(&wi, c.s2, c.mode)?;

                // ÷k by scale folding (free), then re-scale onto αy.
                let zk = zi.with_scale(zi.scale() / c.k as f64)?;
                let zk = align_scale(&zk, c.ay, c.mode)?;
                let wk = wi.with_scale(wi.scale() / c.k as f64)?;
                let wk = align_scale(&wk, c.ay, c.mode)?;

                // BSN②: y_i + z_i/k − w_i/k, saturate back into By bits.
                let acc = bsn::add(&[yi, &zk, &wk.negate()])?;
                next.push(truncate_center(&acc, c.by)?);
            }
            ys = next;
        }
        Ok(ys.iter().map(ThermStream::value).collect())
    }

    /// Measures the internal datapath widths (stream lengths) by pushing a
    /// zero vector through one iteration — the numbers the hardware cost
    /// model needs. Lengths are data-independent.
    ///
    /// # Errors
    ///
    /// Propagates the same feasibility errors as [`IterSoftmaxBlock::run`].
    pub fn dims(&self) -> Result<IterSoftmaxDims, ScError> {
        let c = &self.config;
        let x0 = self.in_codec.encode(0.0);
        let y0 = self.state_codec.encode(1.0 / c.m as f64);
        let z = ttmul::mul(&x0, &y0)?;
        let zs: Vec<ThermStream> = vec![z.clone(); c.m];
        let z_refs: Vec<&ThermStream> = zs.iter().collect();
        let sum_z = bsn::add(&z_refs)?;
        let sum_sub = rescale(&sum_z, c.s1, c.mode)?;
        let w = ttmul::mul(&y0, &sum_sub)?;
        let w_sub = rescale(&w, c.s2, c.mode)?;
        let zk = align_scale(&z.with_scale(z.scale() / c.k as f64)?, c.ay, c.mode)?;
        let wk = align_scale(&w_sub.with_scale(w_sub.scale() / c.k as f64)?, c.ay, c.mode)?;
        Ok(IterSoftmaxDims {
            z_len: z.len(),
            sum_len: sum_z.len(),
            sum_sub_len: sum_sub.len(),
            w_len: w.len(),
            w_sub_len: w_sub.len(),
            zk_len: zk.len(),
            wk_len: wk.len(),
            acc_len: c.by + zk.len() + wk.len(),
        })
    }

    /// Mean absolute error per element against exact softmax, averaged over
    /// a batch of logit rows.
    ///
    /// # Errors
    ///
    /// Propagates [`IterSoftmaxBlock::run`] errors; rejects an empty batch.
    pub fn mae(&self, rows: &[Vec<f64>]) -> Result<f64, ScError> {
        if rows.is_empty() {
            return Err(ScError::InvalidParam {
                name: "rows",
                reason: "need at least one test vector".into(),
            });
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for row in rows {
            let got = self.run(row)?;
            let want = crate::ref_fn::softmax(row);
            for (g, w) in got.iter().zip(want.iter()) {
                total += (g - w).abs();
                count += 1;
            }
        }
        Ok(total / count as f64)
    }
}


/// A `(level, len, scale)` triple mirroring a [`ThermStream`] without
/// materializing bits — the fast twin used by the design-space sweep and
/// the SC inference engine. Every operation reproduces the bit-level
/// semantics exactly (property-tested against [`IterSoftmaxBlock::run`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LevelStream {
    /// Level `q = ones − len/2`.
    q: i64,
    len: usize,
    scale: f64,
}

impl LevelStream {
    fn encode(x: f64, len: usize, scale: f64) -> Self {
        let half = (len / 2) as i64;
        let q = (x / scale).round().clamp(-(half as f64), half as f64) as i64;
        LevelStream { q, len, scale }
    }

    fn ones(&self) -> i64 {
        self.q + (self.len / 2) as i64
    }

    fn value(&self) -> f64 {
        self.scale * self.q as f64
    }

    fn mul(&self, o: &LevelStream) -> Self {
        LevelStream {
            q: self.q * o.q,
            len: self.len * o.len / 2,
            scale: self.scale * o.scale,
        }
    }

    fn sum(streams: &[LevelStream]) -> Self {
        let q = streams.iter().map(|s| s.q).sum();
        let len = streams.iter().map(|s| s.len).sum();
        LevelStream { q, len, scale: streams[0].scale }
    }

    /// Mirrors `rescale`: strided tap at the mode's phase.
    fn rescale(&self, s: usize, mode: RescaleMode) -> Self {
        if s == 1 {
            return *self;
        }
        let out_len = self.len / s;
        let phase = mode.phase(s) as i64;
        let ones = self.ones();
        // count' = #{i in 0..out_len : i*s + phase < ones}
        let count = if ones <= phase {
            0
        } else {
            (((ones - phase - 1) / s as i64) + 1).min(out_len as i64)
        };
        LevelStream { q: count - (out_len / 2) as i64, len: out_len, scale: self.scale * s as f64 }
    }

    /// Mirrors `resample`: per-tap positions over the sorted stream.
    fn resample(&self, out_len: usize, mode: RescaleMode) -> Self {
        let l = self.len;
        let ones = self.ones();
        let mut count = 0i64;
        for j in 0..out_len {
            let pos = sc_core::rescale::resample_tap(j, l, out_len, mode);
            if (pos as i64) < ones {
                count += 1;
            }
        }
        LevelStream {
            q: count - (out_len / 2) as i64,
            len: out_len,
            scale: self.scale * l as f64 / out_len as f64,
        }
    }

    /// Mirrors `align_scale` (nearest even tap count + exact relabel).
    fn align_scale(&self, target: f64, mode: RescaleMode) -> Self {
        let ideal = self.scale * self.len as f64 / target;
        let mut out_len = (ideal / 2.0).round() as usize * 2;
        if out_len < 2 {
            out_len = 2;
        }
        let mut r = self.resample(out_len, mode);
        r.scale = target;
        r
    }

    fn negate(&self) -> Self {
        LevelStream { q: -self.q, ..*self }
    }

    fn truncate_center(&self, out_len: usize) -> Self {
        let half = (out_len / 2) as i64;
        LevelStream { q: self.q.clamp(-half, half), len: out_len, scale: self.scale }
    }
}

impl IterSoftmaxBlock {
    /// Level-domain fast path: identical results to [`IterSoftmaxBlock::run`]
    /// (property-tested) at a fraction of the cost. Use for design-space
    /// sweeps and in-loop inference.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if `x.len() != m`.
    pub fn run_levels(&self, x: &[f64]) -> Result<Vec<f64>, ScError> {
        let c = &self.config;
        if x.len() != c.m {
            return Err(ScError::LengthMismatch { left: x.len(), right: c.m });
        }
        let xs: Vec<LevelStream> =
            x.iter().map(|&v| LevelStream::encode(v, c.bx, c.ax)).collect();
        let y0 = LevelStream::encode(1.0 / c.m as f64, c.by, c.ay);
        let mut ys = vec![y0; c.m];
        for _ in 0..c.k {
            let zs: Vec<LevelStream> = xs.iter().zip(ys.iter()).map(|(a, b)| a.mul(b)).collect();
            let sum_z = LevelStream::sum(&zs).rescale(c.s1, c.mode);
            let mut next = Vec::with_capacity(c.m);
            for (yi, zi) in ys.iter().zip(zs.iter()) {
                let wi = yi.mul(&sum_z).rescale(c.s2, c.mode);
                let mut zk = *zi;
                zk.scale /= c.k as f64;
                let zk = zk.align_scale(c.ay, c.mode);
                let mut wk = wi;
                wk.scale /= c.k as f64;
                let wk = wk.align_scale(c.ay, c.mode).negate();
                let acc = LevelStream::sum(&[*yi, zk, wk]);
                next.push(acc.truncate_center(c.by));
            }
            ys = next;
        }
        Ok(ys.iter().map(LevelStream::value).collect())
    }

    /// MAE via the level-domain fast path.
    ///
    /// # Errors
    ///
    /// Propagates [`IterSoftmaxBlock::run_levels`] errors; rejects an empty
    /// batch.
    pub fn mae_levels(&self, rows: &[Vec<f64>]) -> Result<f64, ScError> {
        if rows.is_empty() {
            return Err(ScError::InvalidParam {
                name: "rows",
                reason: "need at least one test vector".into(),
            });
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for row in rows {
            let got = self.run_levels(row)?;
            let want = crate::ref_fn::softmax(row);
            for (g, w) in got.iter().zip(want.iter()) {
                total += (g - w).abs();
                count += 1;
            }
        }
        Ok(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    #[test]
    fn float_iteration_converges_with_k() {
        let x = [1.0, -0.5, 0.3, 0.0, 0.9, -1.2];
        let exact = ref_fn::softmax(&x);
        let err = |k: usize| -> f64 {
            iterative_softmax_float(&x, k)
                .iter()
                .zip(exact.iter())
                .map(|(a, e)| (a - e).abs())
                .sum::<f64>()
        };
        assert!(err(16) < err(4), "k=16: {} k=4: {}", err(16), err(4));
        assert!(err(16) < 0.02);
    }

    #[test]
    fn float_iteration_preserves_simplex_approximately() {
        let x = [2.0, -1.0, 0.5, 0.2];
        for k in [2, 4, 8] {
            let y = iterative_softmax_float(&x, k);
            let s: f64 = y.iter().sum();
            assert!((s - 1.0).abs() < 0.05, "k={k} sum={s}");
        }
        assert!(iterative_softmax_float(&[], 4).is_empty());
    }

    fn small_block(m: usize) -> IterSoftmaxBlock {
        IterSoftmaxBlock::new(IterSoftmaxConfig {
            m,
            k: 2,
            bx: 4,
            ax: 1.0,
            by: 16,
            ay: 1.0 / 8.0,
            s1: 2,
            s2: 8,
            mode: RescaleMode::Round,
        })
        .expect("feasible test configuration")
    }

    #[test]
    fn block_outputs_rough_softmax_shape() {
        let block = small_block(4);
        let x = vec![2.0, -2.0, 0.0, 0.0];
        let y = block.run(&x).unwrap();
        // Largest logit must win; order preserved for the clear gap.
        let argmax = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 0, "y = {y:?}");
        assert!(y[0] > y[1], "y = {y:?}");
    }

    #[test]
    fn block_rejects_wrong_row_length() {
        let block = small_block(4);
        assert!(matches!(
            block.run(&[0.0; 3]).unwrap_err(),
            ScError::LengthMismatch { left: 3, right: 4 }
        ));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let bad = |f: fn(&mut IterSoftmaxConfig)| {
            let mut c = IterSoftmaxConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.m = 0));
        assert!(bad(|c| c.k = 0));
        assert!(bad(|c| c.bx = 3));
        assert!(bad(|c| c.by = 0));
        assert!(bad(|c| c.ax = -1.0));
        assert!(bad(|c| c.ay = f64::NAN));
        assert!(bad(|c| c.s1 = 0));
        assert!(bad(|c| c.s2 = 0));
    }

    #[test]
    fn infeasible_rescale_is_reported_at_construction() {
        // s1 that does not divide m·Bx·By/2 → construction must fail, not
        // panic at run time.
        let cfg = IterSoftmaxConfig {
            m: 3,
            k: 2,
            bx: 4,
            ax: 1.0,
            by: 4,
            ay: 0.25,
            s1: 7,
            s2: 2,
            mode: RescaleMode::Round,
        };
        assert!(IterSoftmaxBlock::new(cfg).is_err());
    }

    #[test]
    fn paper_recommended_config_is_feasible() {
        // [By, s1, s2, k] = [8, 32, 8, 3] with Bx = 4, m = 64 (§VI-B3).
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig::default()).unwrap();
        let x: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.37).sin()).collect();
        let y = block.run(&x).unwrap();
        assert_eq!(y.len(), 64);
        // Order of the extremes must be preserved.
        let exact = ref_fn::softmax(&x);
        let argmax_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let got_at_max = y[argmax_exact];
        assert!(y.iter().all(|v| *v <= got_at_max + 1e-9), "argmax not preserved");
    }

    #[test]
    fn finer_state_grid_reduces_mae() {
        // Table IV's By sweep: By = 16 must beat By = 4 on the same inputs.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|r| {
                (0..8)
                    .map(|i| ((r * 8 + i) as f64 * 0.7).sin() * 1.5)
                    .collect()
            })
            .collect();
        let mae_for = |by: usize| -> f64 {
            IterSoftmaxBlock::new(IterSoftmaxConfig {
                m: 8,
                k: 3,
                bx: 4,
                ax: 1.0,
                by,
                ay: 2.0 / by as f64,
                s1: 4,
                s2: 4,
                mode: RescaleMode::Round,
            })
            .expect("feasible")
            .mae(&rows)
            .expect("runs")
        };
        let coarse = mae_for(4);
        let fine = mae_for(16);
        assert!(fine < coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn uniform_input_is_near_fixed_point() {
        // softmax(0,…,0) = 1/m and the iteration should stay there up to
        // quantization.
        let block = small_block(8);
        let y = block.run(&[0.0; 8]).unwrap();
        for v in &y {
            assert!((v - 0.125).abs() <= 2.0 * block.state_codec().scale(), "y = {y:?}");
        }
    }

    #[test]
    fn dims_are_consistent() {
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig::default()).unwrap();
        let d = block.dims().unwrap();
        let c = block.config();
        assert_eq!(d.z_len, c.bx * c.by / 2);
        assert_eq!(d.sum_len, c.m * d.z_len);
        assert_eq!(d.sum_sub_len, d.sum_len / c.s1);
        assert_eq!(d.w_len, c.by * d.sum_sub_len / 2);
        assert_eq!(d.w_sub_len, d.w_len / c.s2);
        assert_eq!(d.acc_len, c.by + d.zk_len + d.wk_len);
        assert!(d.zk_len >= 2 && d.wk_len >= 2);
    }

    #[test]
    fn mae_rejects_empty_batch() {
        let block = small_block(4);
        assert!(block.mae(&[]).is_err());
    }
    #[test]
    fn level_sim_matches_bit_sim_exactly() {
        // The fast twin must agree bit-for-bit (in decoded values) with the
        // bit-accurate simulator across configurations and inputs.
        let configs = [
            IterSoftmaxConfig::default(),
            IterSoftmaxConfig { m: 8, k: 2, bx: 4, ax: 0.5, by: 16, ay: 0.0625, s1: 4, s2: 8, mode: RescaleMode::Floor },
            IterSoftmaxConfig { m: 16, k: 4, bx: 2, ax: 1.0, by: 8, ay: 0.125, s1: 8, s2: 2, mode: RescaleMode::Ceil },
        ];
        for cfg in configs {
            let block = IterSoftmaxBlock::new(cfg).unwrap();
            for seed in 0..4u64 {
                let x: Vec<f64> = (0..cfg.m)
                    .map(|i| ((i as f64 + seed as f64 * 3.7) * 0.59).sin() * 1.8)
                    .collect();
                let bits = block.run(&x).unwrap();
                let levels = block.run_levels(&x).unwrap();
                for (b, l) in bits.iter().zip(levels.iter()) {
                    assert!((b - l).abs() < 1e-12, "cfg {cfg:?}: {b} vs {l}");
                }
            }
        }
    }
}
