//! Naive selective interconnect (SI) blocks (baselines \[5\], \[15\]).
//!
//! SI processes a *thermometer* input in parallel: each output bit taps one
//! input bit position, so the output ones-count is a non-decreasing function
//! of the input ones-count. That makes SI exact for monotonic transfer
//! functions and structurally unable to express GELU's dip (paper §III-A,
//! Fig. 2c): the best it can do is the *isotonic regression* of the target,
//! which this module computes so the baseline is as strong as possible.

use sc_core::encoding::Thermometer;
use sc_core::{Bitstream, ScError, ThermStream};

/// L2 isotonic regression via the pool-adjacent-violators algorithm.
///
/// Returns the non-decreasing sequence closest (least squares) to `y`.
pub fn isotonic_regression(y: &[f64]) -> Vec<f64> {
    // Blocks of (sum, count) that are merged while out of order.
    let mut sums: Vec<f64> = Vec::with_capacity(y.len());
    let mut counts: Vec<usize> = Vec::with_capacity(y.len());
    for &v in y {
        sums.push(v);
        counts.push(1);
        while sums.len() > 1 {
            let n = sums.len();
            let mean_last = sums[n - 1] / counts[n - 1] as f64;
            let mean_prev = sums[n - 2] / counts[n - 2] as f64;
            if mean_prev <= mean_last {
                break;
            }
            // ascend-lint: allow(no-panic-in-hot-path) -- the `sums.len() > 1` loop guard proves both stacks are non-empty here
            let s = sums.pop().expect("non-empty");
            // ascend-lint: allow(no-panic-in-hot-path) -- counts grows in lockstep with sums, so the same guard applies
            let c = counts.pop().expect("non-empty");
            sums[n - 2] += s;
            counts[n - 2] += c;
        }
    }
    let mut out = Vec::with_capacity(y.len());
    for (s, c) in sums.iter().zip(counts.iter()) {
        let mean = s / *c as f64;
        out.extend(std::iter::repeat_n(mean, *c));
    }
    out
}

/// A naive SI block: per-output-bit input taps, monotone transfer only.
///
/// ```
/// use sc_core::encoding::Thermometer;
/// use sc_nonlinear::si::SiBlock;
///
/// // ReLU on [−4, 4] with an 8-bit input and output: exact (monotone).
/// let enc = Thermometer::new(8, 1.0)?;
/// let block = SiBlock::compile(|x| x.max(0.0), enc, enc)?;
/// let y = block.eval(&enc.encode(2.0));
/// assert!((y.value() - 2.0).abs() < 1e-12);
/// let y = block.eval(&enc.encode(-3.0));
/// assert!((y.value() - 0.0).abs() < 1e-12);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SiBlock {
    /// `taps[j]`: input bit index whose value drives output bit `j`;
    /// `None` with `false`/`true` constants handled via sentinels below.
    taps: Vec<Tap>,
    input: Thermometer,
    output: Thermometer,
    /// Output ones-count per input ones-count (the compiled transfer).
    ones_table: Vec<usize>,
}

/// Where an SI output bit comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tap {
    /// Constant 0 (target never reaches this bit).
    Zero,
    /// Constant 1 (target always includes this bit).
    One,
    /// Wired to input bit `i`: output is 1 iff the input ones-count `> i`.
    Input(usize),
}

impl SiBlock {
    /// Compiles the best monotone (isotonic) approximation of `f` for the
    /// given input/output thermometer codecs.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if the codecs are degenerate
    /// (propagated from quantization).
    pub fn compile<F: Fn(f64) -> f64>(
        f: F,
        input: Thermometer,
        output: Thermometer,
    ) -> Result<Self, ScError> {
        let bx = input.len();
        let by = output.len();
        let half_in = (bx / 2) as i64;
        let half_out = (by / 2) as i64;
        // Desired output level per input ones-count t (t = q + Bx/2).
        let desired: Vec<f64> = (0..=bx)
            .map(|t| {
                let x = input.scale() * (t as i64 - half_in) as f64;
                f(x) / output.scale()
            })
            .collect();
        let iso = isotonic_regression(&desired);
        let ones_table: Vec<usize> = iso
            .iter()
            .map(|&lvl| {
                let q = lvl.round().clamp(-(half_out as f64), half_out as f64) as i64;
                (q + half_out) as usize
            })
            .collect();
        // Rounding a non-decreasing sequence keeps it non-decreasing.
        debug_assert!(ones_table.windows(2).all(|w| w[0] <= w[1]));
        let taps = (0..by)
            .map(|j| {
                // Output bit j is 1 iff ones_out ≥ j+1 iff t > θ_j where
                // θ_j = max{t : ones_table[t] ≤ j} — i.e. tap input bit θ_j.
                if ones_table[0] > j {
                    Tap::One
                } else if ones_table[bx] <= j {
                    Tap::Zero
                } else {
                    // t = 0 always satisfies the predicate on this branch (ones_table[0] ≤ j
                    // was just established), so the fallback is never an approximation.
                    let theta = (0..=bx).rev().find(|&t| ones_table[t] <= j).unwrap_or(0);
                    Tap::Input(theta)
                }
            })
            .collect();
        Ok(SiBlock { taps, input, output, ones_table })
    }

    /// Input codec.
    pub fn input(&self) -> &Thermometer {
        &self.input
    }

    /// Output codec.
    pub fn output(&self) -> &Thermometer {
        &self.output
    }

    /// The compiled transfer: output ones-count per input ones-count.
    pub fn ones_table(&self) -> &[usize] {
        &self.ones_table
    }

    /// Number of output bits wired to real input taps (vs constants) —
    /// proportional to the interconnect cost.
    pub fn wired_taps(&self) -> usize {
        self.taps.iter().filter(|t| matches!(t, Tap::Input(_))).count()
    }

    /// Evaluates the block on a thermometer stream (bit-level).
    ///
    /// The stream is normalized first, as the hardware sits behind a BSN.
    ///
    /// # Panics
    ///
    /// Panics if the stream length differs from the compiled input codec.
    pub fn eval(&self, x: &ThermStream) -> ThermStream {
        assert_eq!(x.len(), self.input.len(), "input BSL mismatch");
        let sorted = x.normalized();
        let bits = Bitstream::from_bits(self.taps.iter().map(|tap| match tap {
            Tap::Zero => false,
            Tap::One => true,
            Tap::Input(i) => sorted.bits().get(*i),
        }));
        // ascend-lint: allow(no-panic-in-hot-path) -- the output codec's even length and positive scale were validated at compile() time; ThermStream::new re-checks the same invariants
        ThermStream::new(bits, self.output.scale()).expect("compiled output codec is valid")
    }

    /// Evaluates on a real value (encode → block → decode).
    pub fn eval_value(&self, x: f64) -> f64 {
        self.eval(&self.input.encode(x)).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    #[test]
    fn isotonic_identity_on_sorted_input() {
        let y = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(isotonic_regression(&y), y);
    }

    #[test]
    fn isotonic_pools_violators() {
        let y = vec![3.0, 1.0];
        assert_eq!(isotonic_regression(&y), vec![2.0, 2.0]);
        let y = vec![1.0, 4.0, 2.0, 3.0];
        let iso = isotonic_regression(&y);
        assert!(iso.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(iso, vec![1.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn isotonic_handles_empty_and_single() {
        assert!(isotonic_regression(&[]).is_empty());
        assert_eq!(isotonic_regression(&[7.0]), vec![7.0]);
    }

    #[test]
    fn monotone_functions_are_exact_on_grid() {
        let enc = Thermometer::new(16, 0.5).unwrap();
        let block = SiBlock::compile(|x| x.max(0.0), enc, enc).unwrap();
        for q in -8..=8i64 {
            let x = q as f64 * 0.5;
            let y = block.eval_value(x);
            assert!((y - x.max(0.0)).abs() < 1e-12, "x={x} y={y}");
        }
    }

    #[test]
    fn sigmoid_si_is_monotone_and_accurate() {
        let input = Thermometer::new(32, 0.25).unwrap();
        let output = Thermometer::with_range(32, 1.0).unwrap();
        let block = SiBlock::compile(ref_fn::sigmoid, input, output).unwrap();
        let mut last = f64::NEG_INFINITY;
        for q in -16..=16i64 {
            let x = q as f64 * 0.25;
            let y = block.eval_value(x);
            assert!(y >= last);
            last = y;
            assert!((y - ref_fn::sigmoid(x)).abs() < 0.06, "x={x} y={y}");
        }
    }

    #[test]
    fn gelu_si_fails_in_negative_range() {
        // Fig. 2(c): naive SI cannot dip; the compiled transfer is the
        // isotonic hull, which is ~0 over the dip.
        let input = Thermometer::new(8, 1.0).unwrap();
        let output = Thermometer::new(8, 1.0).unwrap();
        let block = SiBlock::compile(ref_fn::gelu, input, output).unwrap();
        let y_at_dip = block.eval_value(-1.0);
        assert!(
            (y_at_dip - ref_fn::gelu(-1.0)).abs() > 0.05,
            "naive SI should miss the dip, got {y_at_dip}"
        );
        // …while the positive range is fine (within half an output LSB)
        // even at short BSL (§III-A).
        for x in [1.0, 2.0, 3.0] {
            let y = block.eval_value(x);
            assert!((y - ref_fn::gelu(x)).abs() <= 0.5 + 0.05, "x={x} y={y}");
        }
        // And the transfer is monotone by construction.
        assert!(block.ones_table().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn eval_normalizes_unsorted_inputs() {
        let enc = Thermometer::new(8, 1.0).unwrap();
        let block = SiBlock::compile(|x| x, enc, enc).unwrap();
        let bits = sc_core::Bitstream::from_str_binary("01010101").unwrap();
        let x = ThermStream::new(bits, 1.0).unwrap();
        assert_eq!(block.eval(&x).level(), 0);
    }

    #[test]
    #[should_panic(expected = "BSL mismatch")]
    fn eval_rejects_wrong_length() {
        let enc = Thermometer::new(8, 1.0).unwrap();
        let block = SiBlock::compile(|x| x, enc, enc).unwrap();
        let x = ThermStream::from_level(0, 4, 1.0).unwrap();
        block.eval(&x);
    }

    #[test]
    fn constant_taps_for_saturating_targets() {
        // A function pinned at the max level everywhere → all-One taps.
        let enc = Thermometer::new(4, 1.0).unwrap();
        let block = SiBlock::compile(|_| 100.0, enc, enc).unwrap();
        assert_eq!(block.wired_taps(), 0);
        assert_eq!(block.eval_value(-2.0), 2.0);
    }
}
