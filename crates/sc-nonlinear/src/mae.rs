//! Error-evaluation harness: input distributions and MAE/RMSE metrics.
//!
//! The paper evaluates blocks on "test vectors sampled from the overall
//! distribution" of real ViT layer inputs (§VI-A). This module provides
//! seeded synthetic distributions with matching shapes plus the metric
//! plumbing shared by the table/figure benches; the network-derived
//! distribution itself comes from the `ascend` crate's taps.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded generator of scalar test inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum InputDist {
    /// Gaussian `N(mean, sigma²)`, clipped to `[min, max]`.
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sigma: f64,
        /// Lower clip.
        min: f64,
        /// Upper clip.
        max: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl InputDist {
    /// The GELU-input distribution used by the Table III bench: standard
    /// normal clipped to ±4, matching pre-activation statistics.
    pub fn gelu_default() -> Self {
        InputDist::Gaussian { mean: 0.0, sigma: 1.0, min: -4.0, max: 4.0 }
    }

    /// The softmax-logit distribution used by the Table IV bench:
    /// attention logits after `1/√d` scaling concentrate in roughly ±2.
    pub fn softmax_default() -> Self {
        InputDist::Gaussian { mean: 0.0, sigma: 1.0, min: -2.0, max: 2.0 }
    }

    /// Draws `n` samples with the given seed.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.draw(&mut rng)).collect()
    }

    /// Draws `rows × m` logit rows with the given seed.
    pub fn sample_rows(&self, rows: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows).map(|_| (0..m).map(|_| self.draw(&mut rng)).collect()).collect()
    }

    fn draw(&self, rng: &mut StdRng) -> f64 {
        match *self {
            InputDist::Gaussian { mean, sigma, min, max } => {
                // Box–Muller.
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + sigma * z).clamp(min, max)
            }
            InputDist::Uniform { lo, hi } => rng.random_range(lo..hi),
        }
    }
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(got: &[f64], want: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    assert!(!got.is_empty(), "empty inputs");
    got.iter().zip(want.iter()).map(|(g, w)| (g - w).abs()).sum::<f64>() / got.len() as f64
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(got: &[f64], want: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    assert!(!got.is_empty(), "empty inputs");
    (got.iter().zip(want.iter()).map(|(g, w)| (g - w).powi(2)).sum::<f64>() / got.len() as f64)
        .sqrt()
}

/// MAE of a scalar function against a reference over sampled inputs.
pub fn function_mae<F, G>(f: F, reference: G, dist: &InputDist, n: usize, seed: u64) -> f64
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let xs = dist.sample(n, seed);
    let got: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    let want: Vec<f64> = xs.iter().map(|&x| reference(x)).collect();
    mae(&got, &want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_statistics() {
        let xs = InputDist::gelu_default().sample(20_000, 7);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(xs.iter().all(|x| (-4.0..=4.0).contains(x)));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = InputDist::softmax_default();
        assert_eq!(d.sample(64, 1), d.sample(64, 1));
        assert_ne!(d.sample(64, 1), d.sample(64, 2));
    }

    #[test]
    fn sample_rows_shape() {
        let rows = InputDist::Uniform { lo: -1.0, hi: 1.0 }.sample_rows(5, 7, 3);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.len() == 7));
    }

    #[test]
    fn metrics_basics() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
        assert!((rmse(&[3.0], &[0.0]) - 3.0).abs() < 1e-12);
        assert!(rmse(&[1.0, 1.0], &[0.0, 0.0]) >= mae(&[1.0, 1.0], &[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_checks_lengths() {
        mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn function_mae_of_identity_is_zero() {
        let d = InputDist::Uniform { lo: 0.0, hi: 1.0 };
        let e = function_mae(|x| x, |x| x, &d, 100, 9);
        assert_eq!(e, 0.0);
    }
}
