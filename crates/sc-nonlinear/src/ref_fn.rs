//! Float-exact reference implementations of the nonlinear functions.
//!
//! Every SC block in this crate is scored against these references by the
//! MAE harness ([`crate::mae`]).

/// Error function via Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5·10⁻⁷).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Exact GELU: `x · Φ(x)` with `Φ` the standard normal CDF.
///
/// ```
/// use sc_nonlinear::ref_fn::gelu;
///
/// assert!((gelu(0.0)).abs() < 1e-12);
/// assert!((gelu(3.0) - 3.0).abs() < 1e-2);     // ≈ identity for large x
/// assert!(gelu(-0.5) < 0.0 && gelu(-0.5) > -0.2); // the dip
/// ```
pub fn gelu(x: f64) -> f64 {
    x * 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The tanh-based GELU approximation many accelerators use; provided so the
/// approximation error itself can be measured.
pub fn gelu_tanh(x: f64) -> f64 {
    let c = (2.0 / std::f64::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable softmax.
///
/// Returns an empty vector for empty input.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// ReLU.
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn gelu_matches_published_points() {
        // Values computed from the exact definition x·Φ(x).
        assert!((gelu(1.0) - 0.841_345).abs() < 1e-4);
        assert!((gelu(-1.0) + 0.158_655).abs() < 1e-4);
        assert!((gelu(-2.0) + 0.045_500).abs() < 1e-4);
    }

    #[test]
    fn gelu_dip_minimum_near_expected_location() {
        // The GELU minimum sits near x ≈ −0.751 with value ≈ −0.170.
        let (mut best_x, mut best_y) = (0.0, 0.0);
        let mut x = -2.0;
        while x < 0.0 {
            let y = gelu(x);
            if y < best_y {
                best_y = y;
                best_x = x;
            }
            x += 1e-3;
        }
        assert!((best_x + 0.751).abs() < 0.01, "min at {best_x}");
        assert!((best_y + 0.170).abs() < 0.005, "min value {best_y}");
    }

    #[test]
    fn tanh_gelu_close_to_exact() {
        let mut x = -4.0;
        while x <= 4.0 {
            assert!((gelu(x) - gelu_tanh(x)).abs() < 5e-3, "x={x}");
            x += 0.05;
        }
    }

    #[test]
    fn softmax_is_simplex() {
        let y = softmax(&[1.0, 2.0, 3.0, -1.0]);
        let s: f64 = y.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|v| *v > 0.0));
        // Order preserved.
        assert!(y[2] > y[1] && y[1] > y[0] && y[0] > y[3]);
    }

    #[test]
    fn softmax_handles_extremes() {
        let y = softmax(&[1000.0, 0.0]);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!(softmax(&[]).is_empty());
        let u = softmax(&[5.0; 7]);
        for v in u {
            assert!((v - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_tanh_relation() {
        for x in [-3.0, -0.5, 0.0, 0.7, 2.5] {
            let lhs = sigmoid(x);
            let rhs = 0.5 * (1.0 + (x / 2.0_f64).tanh());
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }
}
