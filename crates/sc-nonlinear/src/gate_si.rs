//! Gate-assisted selective interconnect — ASCEND's GELU block (§IV-A).
//!
//! Naive SI outputs selected input bits directly, which forces the output
//! ones-count to be monotone in the input ones-count. Gate-assisted SI
//! interposes *assist logic* (NOT/AND/OR over the selected threshold
//! signals), so each output bit can be an arbitrary function of the input
//! level — enabling non-monotonic transfers like GELU exactly, with zero
//! random fluctuation, in a single combinational pass (Fig. 4).
//!
//! The compiler here takes any target function, quantizes it onto the
//! input/output thermometer grids, assigns output-bit patterns, and reports
//! the threshold taps and assist-gate counts the hardware model consumes.

use sc_core::encoding::Thermometer;
use sc_core::{Bitstream, ScError, ThermStream};

/// A compiled gate-assisted SI block.
///
/// ```
/// use sc_nonlinear::gate_si::GateAssistedSi;
/// use sc_nonlinear::ref_fn;
/// use sc_core::encoding::Thermometer;
///
/// // The paper's 8b→8b GELU at α = 0.5 (range ±2).
/// let input = Thermometer::new(8, 0.5)?;
/// let output = Thermometer::new(8, 0.5)?;
/// let block = GateAssistedSi::compile(ref_fn::gelu, input, output)?;
/// // Exact on the quantization grid: error ≤ half an output LSB.
/// let y = block.eval_value(-1.0);
/// assert!((y - ref_fn::gelu(-1.0)).abs() <= 0.25 + 1e-12);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateAssistedSi {
    input: Thermometer,
    output: Thermometer,
    /// Output ones-count per input ones-count `t ∈ 0..=Bx` — arbitrary, not
    /// necessarily monotone.
    ones_table: Vec<usize>,
    /// For each output bit `j`, the sorted list of input levels `t` where
    /// bit `j` toggles (the threshold signals feeding its assist logic).
    bit_transitions: Vec<Vec<usize>>,
}

impl GateAssistedSi {
    /// Compiles `f` onto the thermometer grids.
    ///
    /// Output bit `j` is assigned the predicate `ones(t) > j`, the canonical
    /// choice that makes each unit change of the table toggle exactly one
    /// output bit (minimizing assist logic).
    ///
    /// # Errors
    ///
    /// Currently infallible for valid codecs; the `Result` keeps the
    /// signature uniform with the other compilers.
    pub fn compile<F: Fn(f64) -> f64>(
        f: F,
        input: Thermometer,
        output: Thermometer,
    ) -> Result<Self, ScError> {
        let bx = input.len();
        let by = output.len();
        let half_in = (bx / 2) as i64;
        let half_out = (by / 2) as i64;
        let ones_table: Vec<usize> = (0..=bx)
            .map(|t| {
                let x = input.scale() * (t as i64 - half_in) as f64;
                let q = (f(x) / output.scale())
                    .round()
                    .clamp(-(half_out as f64), half_out as f64) as i64;
                (q + half_out) as usize
            })
            .collect();
        Ok(Self::from_ones_table(ones_table, input, output))
    }

    /// Builds a block directly from an output ones-count table
    /// (`table[t]` for `t ∈ 0..=Bx`, each entry `≤ By`).
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `input.len() + 1` or an entry
    /// exceeds `output.len()`.
    pub fn from_ones_table(
        ones_table: Vec<usize>,
        input: Thermometer,
        output: Thermometer,
    ) -> Self {
        assert_eq!(ones_table.len(), input.len() + 1, "table must cover t = 0..=Bx");
        assert!(
            ones_table.iter().all(|&o| o <= output.len()),
            "table entry exceeds output BSL"
        );
        let by = output.len();
        let bit_transitions = (0..by)
            .map(|j| {
                let mut toggles = Vec::new();
                let mut prev = ones_table[0] > j;
                for (t, &o) in ones_table.iter().enumerate().skip(1) {
                    let cur = o > j;
                    if cur != prev {
                        toggles.push(t);
                        prev = cur;
                    }
                }
                toggles
            })
            .collect();
        GateAssistedSi { input, output, ones_table, bit_transitions }
    }

    /// Input codec.
    pub fn input(&self) -> &Thermometer {
        &self.input
    }

    /// Output codec.
    pub fn output(&self) -> &Thermometer {
        &self.output
    }

    /// The compiled transfer table (output ones-count per input level).
    pub fn ones_table(&self) -> &[usize] {
        &self.ones_table
    }

    /// Per-output-bit toggle positions (threshold signals).
    pub fn bit_transitions(&self) -> &[Vec<usize>] {
        &self.bit_transitions
    }

    /// Number of distinct threshold signals (selection taps `s_i` in Fig. 4).
    pub fn threshold_count(&self) -> usize {
        let mut ts: Vec<usize> =
            self.bit_transitions.iter().flatten().copied().collect();
        ts.sort_unstable();
        ts.dedup();
        ts.len()
    }

    /// Number of assist gates: a bit with `T` toggles needs `T − 1` two-input
    /// gates to combine its threshold windows, plus an inverter when it
    /// starts high (the `!s\[2\] & s\[1\]` pattern of Fig. 4).
    pub fn assist_gate_count(&self) -> usize {
        self.bit_transitions
            .iter()
            .enumerate()
            .map(|(j, toggles)| {
                if toggles.is_empty() {
                    0
                } else {
                    let starts_high = self.ones_table[0] > j;
                    (toggles.len() - 1) + usize::from(starts_high)
                }
            })
            .sum()
    }

    /// Evaluates the block on a thermometer stream (bit-level).
    ///
    /// The stream is normalized first (the block follows a BSN).
    ///
    /// # Panics
    ///
    /// Panics if the stream length differs from the compiled input codec.
    pub fn eval(&self, x: &ThermStream) -> ThermStream {
        assert_eq!(x.len(), self.input.len(), "input BSL mismatch");
        let sorted = x.normalized();
        // Threshold signal s_t = input bit (t−1) = [ones ≥ t]; each output
        // bit XORs its toggle signals — evaluate by counting raised toggles.
        let bits = Bitstream::from_bits(self.bit_transitions.iter().enumerate().map(
            |(j, toggles)| {
                let mut level = self.ones_table[0] > j;
                for &t in toggles {
                    // toggle fires when ones ≥ t, i.e. input bit t−1 is set.
                    if sorted.bits().get(t - 1) {
                        level = !level;
                    } else {
                        break;
                    }
                }
                level
            },
        ));
        // ascend-lint: allow(no-panic-in-hot-path) -- the output codec's even length and positive scale were validated at compile() time; ThermStream::new re-checks the same invariants
        ThermStream::new(bits, self.output.scale()).expect("compiled output codec is valid")
    }

    /// Evaluates on a real value (encode → block → decode).
    pub fn eval_value(&self, x: f64) -> f64 {
        self.eval(&self.input.encode(x)).value()
    }

    /// Worst-case on-grid error against `f` (the compile-time bound).
    pub fn max_grid_error<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        let half_in = (self.input.len() / 2) as i64;
        let half_out = (self.output.len() / 2) as i64;
        (0..=self.input.len())
            .map(|t| {
                let x = self.input.scale() * (t as i64 - half_in) as f64;
                let y = self.output.scale() * (self.ones_table[t] as i64 - half_out) as f64;
                (y - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// The paper's Fig. 4 instance: ternary GELU with an 8-bit input
/// (α_x = 1.0, range ±4) and a 2-bit ternary output whose level step is
/// 0.17 (covering GELU's dip at ≈ −0.17).
///
/// # Errors
///
/// Propagates codec construction errors (none for these fixed parameters).
pub fn ternary_gelu() -> Result<GateAssistedSi, ScError> {
    let input = Thermometer::new(8, 1.0)?;
    let output = Thermometer::new(2, 0.17)?;
    GateAssistedSi::compile(crate::ref_fn::gelu, input, output)
}

/// A GELU block with equal input/output BSL over the range ±4, used by the
/// Fig. 2 transfer-curve harness.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `bsl` is odd or zero.
pub fn gelu_block(bsl: usize) -> Result<GateAssistedSi, ScError> {
    let input = Thermometer::with_range(bsl, 4.0)?;
    let output = Thermometer::with_range(bsl, 4.0)?;
    GateAssistedSi::compile(crate::ref_fn::gelu, input, output)
}

/// The Table III GELU block: a wide thermometer input (the accumulated
/// pre-activation stream, `bx` bits over ±4) compressed to a `by`-bit output
/// whose scale is *calibrated* to minimize MAE over a sample of the layer's
/// input distribution — the circuit-aware quantization step of the
/// co-design.
///
/// The output scale is found by golden-section search over candidate scales.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] for invalid BSLs or an empty sample.
pub fn gelu_block_calibrated(
    bx: usize,
    by: usize,
    samples: &[f64],
) -> Result<GateAssistedSi, ScError> {
    if samples.is_empty() {
        return Err(ScError::InvalidParam {
            name: "samples",
            reason: "need at least one calibration sample".into(),
        });
    }
    let input = Thermometer::with_range(bx, 4.0)?;
    let mae_for = |scale: f64| -> Result<f64, ScError> {
        let output = Thermometer::new(by, scale)?;
        let block = GateAssistedSi::compile(crate::ref_fn::gelu, input, output)?;
        Ok(samples
            .iter()
            .map(|&x| (block.eval_value(x) - crate::ref_fn::gelu(x)).abs())
            .sum::<f64>()
            / samples.len() as f64)
    };
    // Golden-section search on log-scale over α ∈ [1e-3, 8/by].
    let (mut lo, mut hi) = ((1e-3f64).ln(), (8.0 / by as f64).ln());
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    for _ in 0..40 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if mae_for(a.exp())? < mae_for(b.exp())? {
            hi = b;
        } else {
            lo = a;
        }
    }
    let best = ((lo + hi) / 2.0).exp();
    let output = Thermometer::new(by, best)?;
    GateAssistedSi::compile(crate::ref_fn::gelu, input, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    #[test]
    fn ternary_gelu_matches_fig4_table() {
        let block = ternary_gelu().unwrap();
        // Levels per input t = 0..=8 (x = t − 4): 0 0 0 −1 0 1 1 1 1 as
        // ones-counts (level + 1): 1 1 1 0 1 2 2 2 2.
        assert_eq!(block.ones_table(), &[1, 1, 1, 0, 1, 2, 2, 2, 2]);
        // Fig. 4 uses exactly three selection signals.
        assert_eq!(block.threshold_count(), 3);
    }

    #[test]
    fn ternary_gelu_end_to_end_values() {
        let block = ternary_gelu().unwrap();
        for (x, want_level) in
            [(-4.0, 0i64), (-3.0, 0), (-1.0, -1), (0.0, 0), (1.0, 1), (4.0, 1)]
        {
            let y = block.eval(&block.input().encode(x));
            assert_eq!(y.level(), want_level, "x={x}");
        }
    }

    #[test]
    fn non_monotone_transfer_is_exact_on_grid() {
        // The whole point vs naive SI: the dip is representable.
        let block = gelu_block(8).unwrap();
        let grid_err = block.max_grid_error(ref_fn::gelu);
        // On-grid error bounded by half an output LSB.
        assert!(
            grid_err <= block.output().scale() / 2.0 + 1e-12,
            "grid error {grid_err}"
        );
    }

    #[test]
    fn precision_improves_with_bsl() {
        // Fig. 2(d): 8b strictly better than 4b, which beats 2b.
        let mae = |bsl: usize| -> f64 {
            let block = gelu_block(bsl).unwrap();
            let mut acc = 0.0;
            let mut n = 0;
            let mut x = -4.0;
            while x <= 4.0 {
                acc += (block.eval_value(x) - ref_fn::gelu(x)).abs();
                n += 1;
                x += 0.01;
            }
            acc / n as f64
        };
        let (m2, m4, m8) = (mae(2), mae(4), mae(8));
        assert!(m8 < m4 && m4 < m2, "m2={m2} m4={m4} m8={m8}");
    }

    #[test]
    fn deterministic_no_fluctuation() {
        // Same input → identical output bits, every time (contrast with the
        // stochastic baselines).
        let block = gelu_block(8).unwrap();
        let x = block.input().encode(-0.9);
        let y1 = block.eval(&x);
        let y2 = block.eval(&x);
        assert_eq!(y1.bits(), y2.bits());
    }

    #[test]
    fn eval_normalizes_unsorted_input() {
        let block = gelu_block(8).unwrap();
        let sorted = block.input().encode(1.5);
        let shuffled = ThermStream::new(
            Bitstream::from_bits(sorted.bits().iter().rev()),
            sorted.scale(),
        )
        .unwrap();
        assert_eq!(block.eval(&sorted).level(), block.eval(&shuffled).level());
    }

    #[test]
    fn from_ones_table_roundtrip() {
        let input = Thermometer::new(4, 1.0).unwrap();
        let output = Thermometer::new(4, 1.0).unwrap();
        let table = vec![2, 0, 4, 1, 3];
        let block = GateAssistedSi::from_ones_table(table.clone(), input, output);
        for (t, &want) in table.iter().enumerate() {
            let x = ThermStream::from_level(t as i64 - 2, 4, 1.0).unwrap();
            let got = (block.eval(&x).level() + 2) as usize;
            assert_eq!(got, want, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "table must cover")]
    fn from_ones_table_checks_length() {
        let enc = Thermometer::new(4, 1.0).unwrap();
        GateAssistedSi::from_ones_table(vec![0, 1], enc, enc);
    }

    #[test]
    fn calibrated_block_beats_naive_scale_and_tracks_by() {
        // Standard-normal GELU inputs.
        let samples: Vec<f64> = (0..400)
            .map(|i| {
                // Deterministic quasi-normal grid via inverse-ish transform:
                // equally spaced quantiles of a clipped normal.
                let u = (i as f64 + 0.5) / 400.0;
                // Rough probit approximation is fine for a test fixture.
                let z = (2.0 * u - 1.0) * 2.2;
                z - 0.14 * z * z * z * (1.0 - u) * u * 4.0
            })
            .collect();
        let mae = |block: &GateAssistedSi| {
            samples
                .iter()
                .map(|&x| (block.eval_value(x) - ref_fn::gelu(x)).abs())
                .sum::<f64>()
                / samples.len() as f64
        };
        let b2 = gelu_block_calibrated(256, 2, &samples).unwrap();
        let b4 = gelu_block_calibrated(256, 4, &samples).unwrap();
        let b8 = gelu_block_calibrated(256, 8, &samples).unwrap();
        assert!(mae(&b8) < mae(&b4) && mae(&b4) < mae(&b2));
        assert!(gelu_block_calibrated(256, 8, &[]).is_err());
    }

    #[test]
    fn assist_gate_count_zero_for_monotone() {
        // A monotone staircase has ≤1 toggle per bit → zero assist gates.
        let enc = Thermometer::new(8, 1.0).unwrap();
        let block = GateAssistedSi::compile(|x| x, enc, enc).unwrap();
        assert_eq!(block.assist_gate_count(), 0);
        // GELU with a dip-resolving output grid needs real assist logic.
        let gelu = ternary_gelu().unwrap();
        assert!(gelu.assist_gate_count() > 0);
    }
}
