//! Bernstein-polynomial SC blocks (baseline \[18\], paper §II-B / §III-A).
//!
//! A degree-`n` Bernstein polynomial with coefficients in `[0, 1]` can be
//! evaluated stochastically: per clock, draw `n` independent bits of the
//! input probability `z`, count the 1s (`i`), and emit one bit of the
//! coefficient stream `c_i`. The output probability is
//! `Σᵢ cᵢ·C(n,i)·zⁱ(1−z)^{n−i}`.
//!
//! The family's weaknesses — the reason ASCEND replaces it — are visible in
//! the implementation: it needs `n + 1` stochastic number generators, one
//! clock per stream bit, and long streams to tame fluctuation, while a
//! low-degree polynomial cannot capture GELU's dip.

use sc_core::sng::{Lfsr, RandomSource};
use sc_core::ScError;

/// Binomial coefficient C(n, k) in f64 (exact for the small n used here).
fn binomial(n: usize, k: usize) -> f64 {
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// Evaluates the Bernstein basis polynomial `B_{i,n}(z)`.
pub fn bernstein_basis(i: usize, n: usize, z: f64) -> f64 {
    binomial(n, i) * z.powi(i as i32) * (1.0 - z).powi((n - i) as i32)
}

/// Least-squares fit of Bernstein coefficients for `f` on `[0, 1]`,
/// projected onto the SC-realizable box `[0, 1]` by cyclic coordinate
/// descent (a few projected Gauss–Seidel sweeps after the closed-form
/// solve).
///
/// `terms` is the number of coefficients (`degree + 1`), matching the
/// paper's "4-term / 5-term / 6-term" naming.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `terms == 0`.
pub fn fit_coefficients<F: Fn(f64) -> f64>(f: F, terms: usize) -> Result<Vec<f64>, ScError> {
    if terms == 0 {
        return Err(ScError::InvalidParam {
            name: "terms",
            reason: "need at least one coefficient".into(),
        });
    }
    let n = terms - 1;
    let samples = 512;
    let zs: Vec<f64> = (0..samples).map(|j| (j as f64 + 0.5) / samples as f64).collect();
    // Normal equations A c = b with A[i][j] = Σ B_i B_j, b[i] = Σ B_i f.
    let basis: Vec<Vec<f64>> = zs
        .iter()
        .map(|&z| (0..terms).map(|i| bernstein_basis(i, n, z)).collect())
        .collect();
    let mut a = vec![vec![0.0; terms]; terms];
    let mut b = vec![0.0; terms];
    for (row, &z) in basis.iter().zip(zs.iter()) {
        let fz = f(z);
        for i in 0..terms {
            b[i] += row[i] * fz;
            for j in 0..terms {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    let mut c = solve_gaussian(a.clone(), b.clone());
    // Projected Gauss–Seidel to respect the [0,1] box.
    for _ in 0..200 {
        for i in 0..terms {
            let mut r = b[i];
            for j in 0..terms {
                if j != i {
                    r -= a[i][j] * c[j];
                }
            }
            c[i] = (r / a[i][i]).clamp(0.0, 1.0);
        }
    }
    Ok(c)
}

fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot =
            (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs())).unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / p;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in row + 1..n {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    x
}

/// Configuration of a Bernstein-polynomial SC block.
#[derive(Debug, Clone, PartialEq)]
pub struct BernsteinConfig {
    /// Number of coefficients (`degree + 1`); the paper evaluates 4/5/6.
    pub terms: usize,
    /// Stream length; the paper evaluates 128/256/1024.
    pub bsl: usize,
    /// Input domain `[lo, hi]` mapped onto the unipolar `[0, 1]`.
    pub domain: (f64, f64),
    /// Output range `[lo, hi]` the unipolar output is mapped back to.
    pub out_range: (f64, f64),
    /// Base LFSR seed; the block derives independent seeds per SNG.
    pub seed: u32,
}

impl Default for BernsteinConfig {
    fn default() -> Self {
        BernsteinConfig {
            terms: 4,
            bsl: 1024,
            domain: (-4.0, 4.0),
            out_range: (-0.5, 4.0),
            seed: 0x5EED,
        }
    }
}

/// A stochastic Bernstein-polynomial evaluator for an arbitrary `f`.
///
/// ```
/// use sc_nonlinear::bernstein::{BernsteinBlock, BernsteinConfig};
/// use sc_nonlinear::ref_fn;
///
/// let cfg = BernsteinConfig { terms: 6, bsl: 4096, ..Default::default() };
/// let block = BernsteinBlock::for_function(ref_fn::gelu, cfg)?;
/// let y = block.eval(2.0);
/// assert!((y - ref_fn::gelu(2.0)).abs() < 0.35);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BernsteinBlock {
    coeffs: Vec<f64>,
    config: BernsteinConfig,
}

impl BernsteinBlock {
    /// Fits coefficients for `f` over the configured domain and builds the
    /// block.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] for zero `terms`/`bsl` or an empty
    /// domain/output range.
    pub fn for_function<F: Fn(f64) -> f64>(f: F, config: BernsteinConfig) -> Result<Self, ScError> {
        Self::validate(&config)?;
        let (lo, hi) = config.domain;
        let (olo, ohi) = config.out_range;
        let normalized = |z: f64| {
            let x = lo + z * (hi - lo);
            ((f(x) - olo) / (ohi - olo)).clamp(0.0, 1.0)
        };
        let coeffs = fit_coefficients(normalized, config.terms)?;
        Ok(BernsteinBlock { coeffs, config })
    }

    /// Builds the block from explicit coefficients in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if the coefficient count mismatches
    /// `terms`, any coefficient leaves `[0, 1]`, or the configuration is
    /// invalid (see [`BernsteinBlock::for_function`]).
    pub fn from_coefficients(coeffs: Vec<f64>, config: BernsteinConfig) -> Result<Self, ScError> {
        Self::validate(&config)?;
        if coeffs.len() != config.terms {
            return Err(ScError::InvalidParam {
                name: "coeffs",
                reason: format!("expected {} coefficients, got {}", config.terms, coeffs.len()),
            });
        }
        if coeffs.iter().any(|c| !(0.0..=1.0).contains(c)) {
            return Err(ScError::InvalidParam {
                name: "coeffs",
                reason: "coefficients must lie in [0, 1] (they are probabilities)".into(),
            });
        }
        Ok(BernsteinBlock { coeffs, config })
    }

    fn validate(config: &BernsteinConfig) -> Result<(), ScError> {
        if config.terms == 0 {
            return Err(ScError::InvalidParam { name: "terms", reason: "must be non-zero".into() });
        }
        if config.bsl == 0 {
            return Err(ScError::InvalidParam { name: "bsl", reason: "must be non-zero".into() });
        }
        if config.domain.1 <= config.domain.0 {
            return Err(ScError::InvalidParam {
                name: "domain",
                reason: "domain must be a non-empty interval".into(),
            });
        }
        if config.out_range.1 <= config.out_range.0 {
            return Err(ScError::InvalidParam {
                name: "out_range",
                reason: "output range must be a non-empty interval".into(),
            });
        }
        Ok(())
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The configuration.
    pub fn config(&self) -> &BernsteinConfig {
        &self.config
    }

    /// The deterministic polynomial value (infinite-stream limit) at `x`.
    pub fn ideal(&self, x: f64) -> f64 {
        let (lo, hi) = self.config.domain;
        let (olo, ohi) = self.config.out_range;
        let z = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        let n = self.config.terms - 1;
        let p: f64 = self
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, c)| c * bernstein_basis(i, n, z))
            .sum();
        olo + p * (ohi - olo)
    }

    /// Bit-accurate stochastic evaluation at `x`.
    ///
    /// Spawns `terms − 1` input SNGs plus `terms` coefficient SNGs (LFSRs
    /// with derived seeds), walks `bsl` clocks and decodes the output
    /// counter.
    pub fn eval(&self, x: f64) -> f64 {
        let c = &self.config;
        let (lo, hi) = c.domain;
        let (olo, ohi) = c.out_range;
        let z = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        let degree = c.terms - 1;

        let mut input_sngs: Vec<Lfsr> = (0..degree)
            .map(|i| {
                let seed = c.seed.wrapping_mul(2654435761).wrapping_add(i as u32 * 7919 + 1);
                // ascend-lint: allow(no-panic-in-hot-path) -- Lfsr::new only rejects unsupported widths and 16 is statically valid; any seed is accepted
                Lfsr::new(16, seed).expect("valid width")
            })
            .collect();
        let mut coeff_sngs: Vec<Lfsr> = (0..c.terms)
            .map(|i| {
                let seed = c.seed.wrapping_add(0x9E3779B9).wrapping_add(i as u32 * 104729 + 1);
                // ascend-lint: allow(no-panic-in-hot-path) -- Lfsr::new only rejects unsupported widths and 16 is statically valid; any seed is accepted
                Lfsr::new(16, seed).expect("valid width")
            })
            .collect();

        let mut ones = 0usize;
        for _ in 0..c.bsl {
            let count =
                input_sngs.iter_mut().map(|s| s.next_fraction() < z).filter(|b| *b).count();
            let coeff_bit = coeff_sngs[count].next_fraction() < self.coeffs[count];
            if coeff_bit {
                ones += 1;
            }
        }
        let p = ones as f64 / c.bsl as f64;
        olo + p * (ohi - olo)
    }

    /// Evaluates over a slice of inputs.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Latency in clock cycles: one bit per cycle (sequential design).
    pub fn cycles(&self) -> usize {
        self.config.bsl
    }

    /// Number of SNGs the hardware needs (`terms` coefficient SNGs plus
    /// `terms − 1` input copies) — the dominant area term (\[18\]).
    pub fn sng_count(&self) -> usize {
        2 * self.config.terms - 1
    }
}

/// Convenience constructor: the GELU block the paper benchmarks, with the
/// default domain and output range.
///
/// # Errors
///
/// Propagates [`BernsteinBlock::for_function`] errors.
pub fn gelu_block(terms: usize, bsl: usize) -> Result<BernsteinBlock, ScError> {
    BernsteinBlock::for_function(
        crate::ref_fn::gelu,
        BernsteinConfig { terms, bsl, ..Default::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    #[test]
    fn basis_partition_of_unity() {
        for z in [0.0, 0.3, 0.77, 1.0] {
            let s: f64 = (0..=5).map(|i| bernstein_basis(i, 5, z)).sum();
            assert!((s - 1.0).abs() < 1e-12, "z={z}");
        }
    }

    #[test]
    fn fit_recovers_exact_bernstein_function() {
        // f already a Bernstein polynomial → fit must recover it closely.
        let target = [0.2, 0.9, 0.1, 0.7];
        let f = |z: f64| -> f64 {
            target.iter().enumerate().map(|(i, c)| c * bernstein_basis(i, 3, z)).sum()
        };
        let c = fit_coefficients(f, 4).unwrap();
        for (got, want) in c.iter().zip(target.iter()) {
            assert!((got - want).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn fit_respects_box_constraints() {
        // A function needing out-of-box coefficients: clamped fit stays in box.
        let f = |z: f64| 2.0 * z - 0.5;
        let c = fit_coefficients(f, 4).unwrap();
        assert!(c.iter().all(|v| (0.0..=1.0).contains(v)), "{c:?}");
    }

    #[test]
    fn more_terms_fit_gelu_better() {
        let ideal_mae = |terms: usize| -> f64 {
            let b = gelu_block(terms, 16).unwrap();
            let mut acc = 0.0;
            let mut n = 0;
            let mut x = -3.0;
            while x <= 0.5 {
                acc += (b.ideal(x) - ref_fn::gelu(x)).abs();
                n += 1;
                x += 0.05;
            }
            acc / n as f64
        };
        let m4 = ideal_mae(4);
        let m6 = ideal_mae(6);
        assert!(m6 < m4, "6-term {m6} should beat 4-term {m4}");
    }

    #[test]
    fn low_degree_misses_the_dip() {
        // Fig. 2(b): a 4-term polynomial cannot track the negative dip.
        let b = gelu_block(4, 16).unwrap();
        let worst = (-30..=5)
            .map(|i| {
                let x = i as f64 / 10.0;
                (b.ideal(x) - ref_fn::gelu(x)).abs()
            })
            .fold(0.0, f64::max);
        assert!(worst > 0.03, "4-term ideal fit is suspiciously good: {worst}");
    }

    #[test]
    fn stochastic_eval_converges_to_ideal() {
        let long = gelu_block(5, 8192).unwrap();
        let x = -0.5;
        let err_long = (long.eval(x) - long.ideal(x)).abs();
        assert!(err_long < 0.12, "long stream should track ideal, err {err_long}");
        // Fluctuation with BSL: spread across seeds must shrink.
        let spread = |bsl: usize| {
            let ys: Vec<f64> = (0..6)
                .map(|s| {
                    let cfg = BernsteinConfig { terms: 5, bsl, seed: 42 + s, ..Default::default() };
                    BernsteinBlock::for_function(ref_fn::gelu, cfg).unwrap().eval(x)
                })
                .collect();
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            (ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / ys.len() as f64).sqrt()
        };
        assert!(spread(4096) < spread(128) + 0.02, "fluctuation should shrink with BSL");
    }

    #[test]
    fn validation_errors() {
        assert!(gelu_block(0, 128).is_err());
        assert!(gelu_block(4, 0).is_err());
        let bad = BernsteinConfig { domain: (1.0, 1.0), ..Default::default() };
        assert!(BernsteinBlock::for_function(ref_fn::gelu, bad).is_err());
        assert!(BernsteinBlock::from_coefficients(
            vec![0.5, 1.5, 0.0, 0.0],
            BernsteinConfig::default()
        )
        .is_err());
        assert!(BernsteinBlock::from_coefficients(
            vec![0.5, 0.5],
            BernsteinConfig::default()
        )
        .is_err());
    }

    #[test]
    fn resource_counts() {
        let b = gelu_block(4, 1024).unwrap();
        assert_eq!(b.cycles(), 1024);
        assert_eq!(b.sng_count(), 7);
    }
}
