//! FSM/binary-hybrid softmax baseline (paper Table IV, design of \[17\]).
//!
//! Prior SC softmax designs (\[16\], \[17\]) bolt binary compute units onto
//! stochastic inputs: each input stream is counted down to a binary value
//! (one clock per stream bit), the exponential is a small fixed-point LUT,
//! and — to avoid a hardware divider entirely — the normalization is a
//! *fixed* power-of-two scaling chosen for the expected denominator rather
//! than the actual row sum. That is cheap and order-preserving, but the
//! values carry a large data-dependent error that longer streams cannot
//! fix. The paper's critique (§II-B): "only the relative order of outputs
//! is preserved while the computed values still exhibit a large error".
//! This module reproduces that design point bit-accurately.

use sc_core::sng::{ComparatorSng, Lfsr};
use sc_core::ScError;

/// Configuration of the FSM/binary softmax baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsmSoftmaxConfig {
    /// Row-vector length `m` (64 in Table IV).
    pub m: usize,
    /// Stream length for the SC→binary conversion (128/256/1024 in Table IV).
    pub bsl: usize,
    /// Input clipping range: logits are encoded bipolar as `x / range`.
    pub range: f64,
    /// Fixed-point fractional bits of the exp LUT and the output.
    pub frac_bits: u32,
    /// Number of exp LUT entries (input quantization of the exponent).
    pub lut_entries: usize,
    /// Base LFSR seed.
    pub seed: u32,
}

impl Default for FsmSoftmaxConfig {
    fn default() -> Self {
        FsmSoftmaxConfig {
            m: 64,
            bsl: 128,
            range: 8.0,
            frac_bits: 8,
            lut_entries: 32,
            seed: 0xFACE,
        }
    }
}

/// The FSM/binary softmax baseline block.
///
/// ```
/// use sc_nonlinear::softmax_fsm::{FsmSoftmax, FsmSoftmaxConfig};
///
/// let block = FsmSoftmax::new(FsmSoftmaxConfig {
///     m: 8, bsl: 1024, ..Default::default()
/// })?;
/// let y = block.run(&[2.0, 0.0, -1.0, 0.5, 0.1, -0.3, 1.0, 0.0])?;
/// // Order is preserved: the largest logit wins.
/// assert!(y[0] > y[2]);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FsmSoftmax {
    config: FsmSoftmaxConfig,
}

impl FsmSoftmax {
    /// Builds the block.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] for zero `m`/`bsl`/`lut_entries`,
    /// a non-positive range, or `frac_bits` outside 1..=24.
    pub fn new(config: FsmSoftmaxConfig) -> Result<Self, ScError> {
        if config.m == 0 {
            return Err(ScError::InvalidParam { name: "m", reason: "must be non-zero".into() });
        }
        if config.bsl == 0 {
            return Err(ScError::InvalidParam { name: "bsl", reason: "must be non-zero".into() });
        }
        if config.lut_entries < 2 {
            return Err(ScError::InvalidParam {
                name: "lut_entries",
                reason: "need at least 2 LUT entries".into(),
            });
        }
        if !(config.range.is_finite() && config.range > 0.0) {
            return Err(ScError::InvalidParam {
                name: "range",
                reason: format!("range must be positive, got {}", config.range),
            });
        }
        if !(1..=24).contains(&config.frac_bits) {
            return Err(ScError::InvalidParam {
                name: "frac_bits",
                reason: format!("frac_bits must be in 1..=24, got {}", config.frac_bits),
            });
        }
        Ok(FsmSoftmax { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FsmSoftmaxConfig {
        &self.config
    }

    /// Latency in clock cycles: the SC→binary counters dominate (`bsl`
    /// cycles), plus a binary epilogue of ~`2·m` cycles for max/sum and the
    /// shift-normalize.
    pub fn cycles(&self) -> usize {
        self.config.bsl + 2 * self.config.m
    }

    /// Runs the baseline on a logit row.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if `x.len() != m`.
    pub fn run(&self, x: &[f64]) -> Result<Vec<f64>, ScError> {
        let c = &self.config;
        if x.len() != c.m {
            return Err(ScError::LengthMismatch { left: x.len(), right: c.m });
        }
        // Stage 1 — SC→binary: count each bipolar stream (bsl cycles).
        // The draw noise (~1/√bsl) is the family's stream-length error.
        let binary: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| {
                let seed = c.seed.wrapping_add(i as u32 * 48271 + 1);
                // ascend-lint: allow(no-panic-in-hot-path) -- Lfsr::new only rejects unsupported widths and 16 is statically valid; any seed is accepted
                let mut sng = ComparatorSng::new(Lfsr::new(16, seed).expect("valid width"));
                let v = (xi / c.range).clamp(-1.0, 1.0);
                // ascend-lint: allow(no-panic-in-hot-path) -- v was clamped to [-1, 1] on the previous line, the only range bipolar rejects
                let s = sng.bipolar(v, c.bsl).expect("clamped value in range");
                (2.0 * s.frac_ones() - 1.0) * c.range
            })
            .collect();

        // Stage 2 — binary max-subtract and LUT exp in fixed point.
        let max = binary.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lut_step = 2.0 * c.range / (c.lut_entries - 1) as f64;
        let fp = f64::from(1u32 << c.frac_bits);
        let exps: Vec<u64> = binary
            .iter()
            .map(|&b| {
                // Quantize the (non-positive) exponent onto the LUT grid.
                let d = (b - max).max(-2.0 * c.range);
                let idx = ((-d) / lut_step).round() as usize;
                let idx = idx.min(c.lut_entries - 1);
                let val = (-(idx as f64) * lut_step).exp();
                (val * fp).round() as u64
            })
            .collect();

        // Stage 3 — division-free normalization: y_i = e_i / 2^shift with a
        // *fixed* shift sized for the nominal denominator (m·fp/2, the sum
        // of exponentials under near-uniform logits). Real rows have
        // data-dependent sums, so the outputs mis-normalize — the large,
        // BSL-independent value error the paper attributes to this family.
        // The output keeps `frac_bits` fractional bits.
        let nominal: u64 = (c.m as u64) * (1u64 << c.frac_bits) / 2;
        let shift = 64 - nominal.leading_zeros();
        Ok(exps
            .iter()
            .map(|&e| {
                let y_fp = if shift >= c.frac_bits {
                    e >> (shift - c.frac_bits)
                } else {
                    e << (c.frac_bits - shift)
                };
                y_fp as f64 / fp
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fn;

    fn logits(m: usize) -> Vec<f64> {
        (0..m).map(|i| ((i as f64) * 0.61).sin() * 2.0).collect()
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = |f: fn(&mut FsmSoftmaxConfig)| {
            let mut c = FsmSoftmaxConfig::default();
            f(&mut c);
            FsmSoftmax::new(c).is_err()
        };
        assert!(bad(|c| c.m = 0));
        assert!(bad(|c| c.bsl = 0));
        assert!(bad(|c| c.lut_entries = 1));
        assert!(bad(|c| c.range = 0.0));
        assert!(bad(|c| c.frac_bits = 0));
        assert!(bad(|c| c.frac_bits = 30));
    }

    #[test]
    fn rejects_wrong_row_length() {
        let block = FsmSoftmax::new(FsmSoftmaxConfig { m: 4, ..Default::default() }).unwrap();
        assert!(block.run(&[0.0; 5]).is_err());
    }

    #[test]
    fn preserves_order_of_well_separated_logits() {
        let block =
            FsmSoftmax::new(FsmSoftmaxConfig { m: 6, bsl: 1024, ..Default::default() }).unwrap();
        let x = [3.0, 1.5, 0.0, -1.5, -3.0, -4.5];
        let y = block.run(&x).unwrap();
        for w in y.windows(2) {
            assert!(w[0] >= w[1], "order violated: {y:?}");
        }
    }

    #[test]
    fn values_have_large_systematic_error() {
        // The paper's critique: order ok, values off. The shift-divide
        // produces outputs whose sum deviates substantially from 1.
        let block =
            FsmSoftmax::new(FsmSoftmaxConfig { m: 16, bsl: 1024, ..Default::default() }).unwrap();
        let x = logits(16);
        let y = block.run(&x).unwrap();
        let sum: f64 = y.iter().sum();
        assert!((sum - 1.0).abs() > 0.02, "shift-divide should misnormalize, sum = {sum}");
    }

    #[test]
    fn longer_streams_help_but_do_not_fix_systematic_error() {
        let mae = |bsl: usize| -> f64 {
            let block = FsmSoftmax::new(FsmSoftmaxConfig { m: 16, bsl, ..Default::default() })
                .unwrap();
            let x = logits(16);
            let y = block.run(&x).unwrap();
            let want = ref_fn::softmax(&x);
            y.iter().zip(want.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>() / 16.0
        };
        // Matches the paper's Table IV trend: going 128 → 1024 buys little.
        let short = mae(128);
        let long = mae(1024);
        assert!(long < short * 1.5 + 0.05, "short {short} long {long}");
        assert!(long > 1e-4, "FSM baseline cannot be near-exact");
    }

    #[test]
    fn cycles_dominated_by_bsl() {
        let block = FsmSoftmax::new(FsmSoftmaxConfig::default()).unwrap();
        assert_eq!(block.cycles(), 128 + 128);
    }
}
