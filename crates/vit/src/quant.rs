//! LSQ quantization and the `W·-A·-R·` precision plans.
//!
//! ASCEND quantizes weights and activations to a 2-bit BSL and the residual
//! stream to a 16-bit BSL ("W2-A2-R16", following \[15\], §V). An `L`-bit
//! thermometer BSL represents `L + 1` integer levels in `[−L/2, L/2]`
//! (paper §II-A), so the LSQ clip bounds are `qn = −L/2`, `qp = L/2`:
//! 2-bit ⇒ ternary weights/activations, 16-bit ⇒ 17 levels.

use ascend_tensor::{Tensor, Var};

/// One tensor-site precision: the thermometer BSL, or `None` for FP.
pub type SitePrecision = Option<usize>;

/// A `W·-A·-R·` precision plan.
///
/// ```
/// use ascend_vit::quant::PrecisionPlan;
///
/// let p = PrecisionPlan::w2_a2_r16();
/// assert_eq!(p.weights, Some(2));
/// assert_eq!(p.acts, Some(2));
/// assert_eq!(p.residual, Some(16));
/// assert!(PrecisionPlan::fp().is_fp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionPlan {
    /// Linear-layer weight BSL.
    pub weights: SitePrecision,
    /// Activation BSL (inputs to linears / attention operands).
    pub acts: SitePrecision,
    /// Residual-stream BSL.
    pub residual: SitePrecision,
}

impl PrecisionPlan {
    /// Full precision (no quantization).
    pub fn fp() -> Self {
        PrecisionPlan { weights: None, acts: None, residual: None }
    }

    /// W16-A16-R16 — the first progressive-quantization step.
    pub fn w16_a16_r16() -> Self {
        PrecisionPlan { weights: Some(16), acts: Some(16), residual: Some(16) }
    }

    /// W16-A2-R16 — the second step.
    pub fn w16_a2_r16() -> Self {
        PrecisionPlan { weights: Some(16), acts: Some(2), residual: Some(16) }
    }

    /// W2-A2-R16 — the final SC precision.
    pub fn w2_a2_r16() -> Self {
        PrecisionPlan { weights: Some(2), acts: Some(2), residual: Some(16) }
    }

    /// W4-A4-R16 — an intermediate SC precision (extension beyond the
    /// paper's sweep; 5-level weights/activations for accuracy-vs-area
    /// studies with the same thermometer machinery).
    pub fn w4_a4_r16() -> Self {
        PrecisionPlan { weights: Some(4), acts: Some(4), residual: Some(16) }
    }

    /// True if nothing is quantized.
    pub fn is_fp(&self) -> bool {
        self.weights.is_none() && self.acts.is_none() && self.residual.is_none()
    }

    /// Human-readable name (`"W2-A2-R16"` style).
    pub fn name(&self) -> String {
        fn part(p: SitePrecision) -> String {
            p.map_or("FP".to_string(), |l| l.to_string())
        }
        if self.is_fp() {
            "FP".to_string()
        } else {
            format!("W{}-A{}-R{}", part(self.weights), part(self.acts), part(self.residual))
        }
    }
}

/// LSQ clip bounds for a thermometer BSL: `(−L/2, L/2)`.
pub fn clip_bounds(bsl: usize) -> (f32, f32) {
    let half = (bsl / 2) as f32;
    (-half, half)
}

/// A learned-step quantizer site: one scalar step parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct LsqSite {
    /// The learned step (a 1-element tensor so the optimizer can own it).
    pub step: Tensor,
    /// Mean |x| observed at the most recent forward through this site —
    /// written on every [`LsqSite::apply`], read by step calibration.
    observed: std::cell::Cell<f32>,
}

impl LsqSite {
    /// Creates a site with the given initial step.
    pub fn new(step: f32) -> Self {
        LsqSite { step: Tensor::scalar(step.max(1e-6)), observed: std::cell::Cell::new(0.0) }
    }

    /// LSQ's recommended initialization from sample statistics:
    /// `2·E[|x|]/√qp`.
    pub fn init_from(values: &Tensor, bsl: usize) -> Self {
        let mean_abs =
            values.data().iter().map(|v| v.abs()).sum::<f32>() / values.numel().max(1) as f32;
        let (_, qp) = clip_bounds(bsl);
        Self::new(2.0 * mean_abs / qp.max(1.0).sqrt())
    }

    /// Applies fake quantization in-graph (STE + LSQ step gradient); passes
    /// through untouched when `bsl` is `None`.
    ///
    /// The step parameter is *always* bound (even in FP mode) so the bind
    /// order stays aligned with the model's parameter order across plans.
    pub fn apply<'g>(
        &self,
        binder: &mut crate::binder::Binder<'g>,
        x: Var<'g>,
        bsl: SitePrecision,
    ) -> Var<'g> {
        {
            let v = x.value();
            let mean_abs =
                v.data().iter().map(|a| a.abs()).sum::<f32>() / v.numel().max(1) as f32;
            self.observed.set(mean_abs);
        }
        let step = binder.bind(&self.step);
        match bsl {
            None => x,
            Some(l) => {
                let (qn, qp) = clip_bounds(l);
                let numel = x.value().numel() as f32;
                let grad_scale = 1.0 / (numel * qp.max(1.0)).sqrt();
                x.lsq_quantize(step, qn, qp, grad_scale)
            }
        }
    }

    /// The quantization step value as an f32 (for the SC engine's scale
    /// factors).
    pub fn step_value(&self) -> f32 {
        self.step.item().abs().max(1e-8)
    }

    /// Re-initializes the step from the most recently observed statistics
    /// using the LSQ rule `2·E[|x|]/√qp` for the given BSL.
    pub fn recalibrate(&mut self, bsl: usize) {
        let (_, qp) = clip_bounds(bsl);
        let obs = self.observed.get().max(1e-3);
        self.step = Tensor::scalar((2.0 * obs / qp.max(1.0).sqrt()).max(1e-6));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_names() {
        assert_eq!(PrecisionPlan::fp().name(), "FP");
        assert_eq!(PrecisionPlan::w16_a16_r16().name(), "W16-A16-R16");
        assert_eq!(PrecisionPlan::w16_a2_r16().name(), "W16-A2-R16");
        assert_eq!(PrecisionPlan::w2_a2_r16().name(), "W2-A2-R16");
        assert_eq!(PrecisionPlan::w4_a4_r16().name(), "W4-A4-R16");
    }

    #[test]
    fn w4_plan_produces_five_levels() {
        let g = ascend_tensor::Graph::new();
        let mut b = crate::binder::Binder::new(&g);
        let x = g.leaf(Tensor::from_vec(
            vec![-3.0, -1.2, -0.4, 0.0, 0.4, 1.2, 3.0],
            &[7],
        ));
        let site = LsqSite::new(1.0);
        let q = site.apply(&mut b, x, Some(4));
        for v in q.value().data() {
            assert!(
                [-2.0, -1.0, 0.0, 1.0, 2.0].contains(v),
                "not a 5-level value: {v}"
            );
        }
    }

    #[test]
    fn clip_bounds_follow_bsl_levels() {
        assert_eq!(clip_bounds(2), (-1.0, 1.0)); // ternary
        assert_eq!(clip_bounds(16), (-8.0, 8.0)); // 17 levels
    }

    #[test]
    fn ternary_quantization_produces_three_levels() {
        let g = ascend_tensor::Graph::new();
        let mut b = crate::binder::Binder::new(&g);
        let x = g.leaf(Tensor::from_vec(vec![-2.0, -0.2, 0.1, 0.6, 3.0], &[5]));
        let site = LsqSite::new(1.0);
        let q = site.apply(&mut b, x, Some(2));
        let vals = q.value();
        for v in vals.data() {
            assert!([-1.0, 0.0, 1.0].contains(v), "non-ternary value {v}");
        }
        // Untouched in FP mode (but the step is still bound for ordering).
        let q_fp = site.apply(&mut b, x, None);
        assert_eq!(q_fp.value(), x.value());
        assert_eq!(b.len(), 2, "step bound in both modes");
    }

    #[test]
    fn step_init_scales_with_data_magnitude() {
        let small = LsqSite::init_from(&Tensor::full(&[10], 0.1), 2);
        let large = LsqSite::init_from(&Tensor::full(&[10], 1.0), 2);
        assert!(large.step.item() > small.step.item());
        assert!(small.step.item() > 0.0);
    }

    #[test]
    fn step_gradient_flows() {
        let g = ascend_tensor::Graph::new();
        let mut b = crate::binder::Binder::new(&g);
        let x = g.leaf(Tensor::from_vec(vec![0.3, -0.4, 0.8], &[3]));
        let site = LsqSite::new(0.5);
        let q = site.apply(&mut b, x, Some(16));
        let loss = q.square().sum_all();
        g.backward(loss);
        assert!(g.grad(x).is_some(), "STE gradient must reach x");
        let gs = b.grads();
        assert_eq!(gs.len(), 1);
        assert!(gs[0].item().abs() >= 0.0, "step grad collected");
    }
}
