//! SynthCIFAR: seeded procedural image-classification datasets.
//!
//! Stand-in for CIFAR-10/100 (DESIGN.md substitution S2): class-conditioned
//! procedural patterns (gratings, blobs, checkers, color splits, rings) with
//! per-sample jitter and noise. The 10-class variant is comfortably
//! learnable by the ViT-lite; the 100-class variant packs many more classes
//! into the same pattern space, reproducing CIFAR-100's relative difficulty.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ascend_tensor::Tensor;

/// An in-memory labelled image dataset (normalized to roughly `[-1, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    image: usize,
    channels: usize,
    classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.image
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Labels of the given sample indices.
    pub fn labels_for(&self, indices: &[usize]) -> Vec<usize> {
        indices.iter().map(|&i| self.labels[i]).collect()
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Extracts non-overlapping `patch × patch` patches for the given
    /// samples, flattened to `[batch·num_patches, channels·patch²]` in the
    /// layout the ViT's patch embedding expects.
    ///
    /// # Panics
    ///
    /// Panics if `patch` does not divide the image side or an index is out
    /// of range.
    pub fn patches(&self, indices: &[usize], patch: usize) -> Tensor {
        assert_eq!(self.image % patch, 0, "patch must divide image side");
        let grid = self.image / patch;
        let np = grid * grid;
        let pd = self.channels * patch * patch;
        let hw = self.image * self.image;
        let mut out = vec![0.0f32; indices.len() * np * pd];
        for (bi, &idx) in indices.iter().enumerate() {
            assert!(idx < self.len(), "sample index {idx} out of range");
            let img = &self.images.data()[idx * self.channels * hw..(idx + 1) * self.channels * hw];
            for gy in 0..grid {
                for gx in 0..grid {
                    let pidx = gy * grid + gx;
                    let base = (bi * np + pidx) * pd;
                    let mut o = base;
                    for c in 0..self.channels {
                        for py in 0..patch {
                            for px in 0..patch {
                                let y = gy * patch + py;
                                let x = gx * patch + px;
                                out[o] = img[c * hw + y * self.image + x];
                                o += 1;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[indices.len() * np, pd])
    }
}

/// Generates the train/test pair of SynthCIFAR datasets.
///
/// ```
/// use ascend_vit::data::synth_cifar;
///
/// let (train, test) = synth_cifar(10, 200, 50, 16, 7);
/// assert_eq!(train.len(), 200);
/// assert_eq!(test.len(), 50);
/// assert_eq!(train.classes(), 10);
/// ```
pub fn synth_cifar(
    classes: usize,
    n_train: usize,
    n_test: usize,
    image: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let train = generate(classes, n_train, image, seed);
    let test = generate(classes, n_test, image, seed.wrapping_add(0x5EED_CAFE));
    (train, test)
}

fn generate(classes: usize, n: usize, image: usize, seed: u64) -> Dataset {
    assert!(classes > 0, "need at least one class");
    let channels = 3;
    let hw = image * image;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; n * channels * hw];
    let mut labels = Vec::with_capacity(n);
    for s in 0..n {
        let label = s % classes;
        labels.push(label);
        let img = &mut data[s * channels * hw..(s + 1) * channels * hw];
        render_class(img, label, image, &mut rng);
    }
    Dataset {
        images: Tensor::from_vec(data, &[n, channels * hw]),
        labels,
        image,
        channels,
        classes,
    }
}

/// Class-conditioned parameters derived from the label via the golden ratio
/// so that arbitrarily many classes spread over the pattern space.
fn class_params(label: usize) -> (usize, f32, f32, [f32; 3], [f32; 3]) {
    const PHI: f32 = 0.618_034;
    let family = label % 5;
    let t = (label as f32 * PHI).fract();
    let angle = t * std::f32::consts::PI;
    let freq = 1.0 + ((label / 5) as f32 * PHI).fract() * 3.0;
    let fg = hsv_ish(t);
    let bg = hsv_ish((t + 0.5).fract());
    (family, angle, freq, fg, bg)
}

fn hsv_ish(t: f32) -> [f32; 3] {
    let a = (t * std::f32::consts::TAU).sin() * 0.5 + 0.5;
    let b = ((t + 1.0 / 3.0) * std::f32::consts::TAU).sin() * 0.5 + 0.5;
    let c = ((t + 2.0 / 3.0) * std::f32::consts::TAU).sin() * 0.5 + 0.5;
    [a, b, c]
}

fn render_class(img: &mut [f32], label: usize, image: usize, rng: &mut StdRng) {
    let (family, angle, freq, fg, bg) = class_params(label);
    let hw = image * image;
    // Per-sample jitter.
    let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
    let jx: f32 = rng.random_range(-1.5..1.5);
    let jy: f32 = rng.random_range(-1.5..1.5);
    let amp: f32 = rng.random_range(0.75..1.15);
    let noise_sigma: f32 = rng.random_range(0.08..0.18);
    let (sin_a, cos_a) = angle.sin_cos();
    let half = image as f32 / 2.0;

    for y in 0..image {
        for x in 0..image {
            let xf = x as f32 - half + jx;
            let yf = y as f32 - half + jy;
            // Pattern intensity in [0, 1].
            let p = match family {
                0 => {
                    // Oriented grating.
                    let u = (xf * cos_a + yf * sin_a) * freq / image as f32;
                    (u * std::f32::consts::TAU + phase).sin() * 0.5 + 0.5
                }
                1 => {
                    // Gaussian blob at a class-dependent position.
                    let cx = cos_a * half * 0.5;
                    let cy = sin_a * half * 0.5;
                    let d2 = (xf - cx).powi(2) + (yf - cy).powi(2);
                    (-d2 / (2.0 * (1.5 + freq).powi(2))).exp()
                }
                2 => {
                    // Checkerboard with class period.
                    let period = (2.0 + freq) as i32;
                    let cx = (x as i32 / period) % 2;
                    let cy = (y as i32 / period) % 2;
                    if cx == cy {
                        0.85
                    } else {
                        0.15
                    }
                }
                3 => {
                    // Half-plane split at the class angle.
                    if xf * cos_a + yf * sin_a > 0.0 {
                        0.9
                    } else {
                        0.1
                    }
                }
                _ => {
                    // Radial rings.
                    let r = (xf * xf + yf * yf).sqrt();
                    (r * freq * std::f32::consts::TAU / image as f32 + phase).sin() * 0.5 + 0.5
                }
            };
            for c in 0..3 {
                let u1: f32 = rng.random::<f32>().max(1e-7);
                let u2: f32 = rng.random();
                let noise = (-2.0 * u1.ln()).sqrt()
                    * (std::f32::consts::TAU * u2).cos()
                    * noise_sigma;
                let v = bg[c] + (fg[c] - bg[c]) * p * amp + noise;
                // Normalize to roughly [-1, 1].
                img[c * hw + y * image + x] = (v * 2.0 - 1.0).clamp(-1.5, 1.5);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let (a, _) = synth_cifar(10, 100, 10, 16, 3);
        let (b, _) = synth_cifar(10, 100, 10, 16, 3);
        assert_eq!(a, b);
        // Balanced labels (round-robin).
        for c in 0..10 {
            assert_eq!(a.labels().iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn train_and_test_differ() {
        let (train, test) = synth_cifar(10, 50, 50, 16, 3);
        assert_ne!(train, test);
    }

    #[test]
    fn images_are_normalized() {
        let (train, _) = synth_cifar(10, 64, 8, 16, 9);
        let data = train.patches(&(0..64).collect::<Vec<_>>(), 4);
        let mean = data.mean_all();
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!(data.data().iter().all(|v| v.abs() <= 1.5));
    }

    #[test]
    fn patches_shape_and_content() {
        let (train, _) = synth_cifar(4, 8, 4, 16, 5);
        let p = train.patches(&[0, 3], 4);
        assert_eq!(p.shape(), &[2 * 16, 48]);
        // Patches of the same image differ (non-constant images).
        let a = &p.data()[0..48];
        let b = &p.data()[48..96];
        assert_ne!(a, b);
    }

    #[test]
    fn classes_have_distinct_signatures() {
        // Mean image per class should differ across classes — the dataset
        // is learnable.
        let (train, _) = synth_cifar(10, 200, 10, 16, 11);
        let all: Vec<usize> = (0..200).collect();
        let p = train.patches(&all, 16); // whole image as one patch
        let labels = train.labels();
        let dim = 3 * 16 * 16;
        let mut means = vec![vec![0.0f32; dim]; 10];
        let mut counts = [0usize; 10];
        for (i, &l) in labels.iter().enumerate() {
            for j in 0..dim {
                means[l][j] += p.data()[i * dim + j];
            }
            counts[l] += 1;
        }
        for (m, c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= *c as f32;
            }
        }
        let mut min_dist = f32::INFINITY;
        for a in 0..10 {
            for b in (a + 1)..10 {
                let d: f32 = means[a]
                    .iter()
                    .zip(means[b].iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt();
                min_dist = min_dist.min(d);
            }
        }
        assert!(min_dist > 0.5, "classes too similar: min centroid distance {min_dist}");
    }

    #[test]
    #[should_panic(expected = "patch must divide")]
    fn patches_validates_divisibility() {
        let (train, _) = synth_cifar(2, 4, 2, 16, 1);
        train.patches(&[0], 5);
    }
}
