//! The ViT-lite model: patch embedding, MSA blocks, MLP blocks, head.
//!
//! The model owns plain tensors; each forward pass binds them into a fresh
//! graph via [`Binder`] in a fixed traversal order that
//! [`VitModel::params_mut`] mirrors exactly (asserted in tests). Per-block
//! output taps are returned for the distillation losses of the training
//! pipeline (§V), and the attention softmax is switchable between exact and
//! the in-graph iterative approximation (Algorithm 1) for the
//! approximate-softmax-aware fine-tune.

use ascend_tensor::init::Initializer;
use ascend_tensor::{Graph, Tensor, Var};

use crate::binder::Binder;
use crate::config::{SoftmaxKind, VitConfig};
use crate::norm::{Mode, Norm};
use crate::quant::{LsqSite, PrecisionPlan};

/// A dense layer `y = xW + b` with a learned-step weight quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weights `[in, out]`.
    pub w: Tensor,
    /// Bias `[out]`.
    pub b: Tensor,
    /// LSQ site for the weights.
    pub w_site: LsqSite,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(init: &mut Initializer, d_in: usize, d_out: usize) -> Self {
        let w = init.xavier_uniform(&[d_in, d_out]);
        let w_site = LsqSite::init_from(&w, 2);
        Linear { w, b: Tensor::zeros(&[d_out]), w_site }
    }

    /// Trainable tensors per linear (w, w_step, b).
    pub const PARAM_COUNT: usize = 3;

    /// Appends parameters in bind order.
    pub fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Tensor>) {
        out.push(&mut self.w);
        out.push(&mut self.w_site.step);
        out.push(&mut self.b);
    }

    /// Immutable twin of [`Linear::collect_params`] (same order).
    pub fn collect_params_ref<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        out.push(&self.w);
        out.push(&self.w_site.step);
        out.push(&self.b);
    }

    /// Forward over `[n, in]` with the plan's weight precision.
    pub fn forward<'g>(
        &self,
        bind: &mut Binder<'g>,
        x: Var<'g>,
        plan: &PrecisionPlan,
    ) -> Var<'g> {
        let w = bind.bind(&self.w);
        let wq = self.w_site.apply(bind, w, plan.weights);
        let b = bind.bind(&self.b);
        x.matmul(wq).broadcast_row_add(b)
    }
}

/// Multi-head self-attention with activation quantizers.
#[derive(Debug, Clone, PartialEq)]
pub struct Attention {
    q: Linear,
    k: Linear,
    v: Linear,
    proj: Linear,
    in_site: LsqSite,
    out_site: LsqSite,
}

impl Attention {
    fn new(init: &mut Initializer, dim: usize) -> Self {
        Attention {
            q: Linear::new(init, dim, dim),
            k: Linear::new(init, dim, dim),
            v: Linear::new(init, dim, dim),
            proj: Linear::new(init, dim, dim),
            in_site: LsqSite::new(0.5),
            out_site: LsqSite::new(0.5),
        }
    }

    const PARAM_COUNT: usize = 4 * Linear::PARAM_COUNT + 2;

    fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Tensor>) {
        out.push(&mut self.in_site.step);
        self.q.collect_params(out);
        self.k.collect_params(out);
        self.v.collect_params(out);
        out.push(&mut self.out_site.step);
        self.proj.collect_params(out);
    }

    fn collect_params_ref<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        out.push(&self.in_site.step);
        self.q.collect_params_ref(out);
        self.k.collect_params_ref(out);
        self.v.collect_params_ref(out);
        out.push(&self.out_site.step);
        self.proj.collect_params_ref(out);
    }

    /// Query projection.
    pub fn q(&self) -> &Linear {
        &self.q
    }

    /// Key projection.
    pub fn k(&self) -> &Linear {
        &self.k
    }

    /// Value projection.
    pub fn v(&self) -> &Linear {
        &self.v
    }

    /// Output projection.
    pub fn proj(&self) -> &Linear {
        &self.proj
    }

    /// Activation quantizer sites: (input, pre-projection output).
    pub fn sites(&self) -> (&LsqSite, &LsqSite) {
        (&self.in_site, &self.out_site)
    }

    /// Forward over `[b·s, d]` given the batch/sequence geometry.
    #[allow(clippy::too_many_arguments)]
    fn forward<'g>(
        &self,
        bind: &mut Binder<'g>,
        x: Var<'g>,
        batch: usize,
        seq: usize,
        cfg: &VitConfig,
        plan: &PrecisionPlan,
    ) -> Var<'g> {
        let (h, dh, d) = (cfg.heads, cfg.head_dim(), cfg.dim);
        let xq = self.in_site.apply(bind, x, plan.acts);
        let split = |t: Var<'g>| -> Var<'g> {
            // [b·s, d] → [b, s, h, dh] → [b, h, s, dh] → [b·h, s, dh]
            t.reshape(&[batch, seq, h, dh]).permute(&[0, 2, 1, 3]).reshape(&[batch * h, seq, dh])
        };
        let q = split(self.q.forward(bind, xq, plan));
        let k = split(self.k.forward(bind, xq, plan));
        let v = split(self.v.forward(bind, xq, plan));

        let scores = q
            .batched_matmul(k.permute(&[0, 2, 1]))
            .scale(1.0 / (dh as f32).sqrt());
        let probs = attention_softmax(scores, cfg.softmax, seq);
        let ctx = probs.batched_matmul(v);
        // [b·h, s, dh] → [b, h, s, dh] → [b, s, h, dh] → [b·s, d]
        let merged = ctx
            .reshape(&[batch, h, seq, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[batch * seq, d]);
        let merged = self.out_site.apply(bind, merged, plan.acts);
        self.proj.forward(bind, merged, plan)
    }
}

/// The attention softmax: exact, or the differentiable in-graph iterative
/// approximation (Algorithm 1) used by the fine-tuning stage.
pub fn attention_softmax<'g>(scores: Var<'g>, kind: SoftmaxKind, m: usize) -> Var<'g> {
    match kind {
        SoftmaxKind::Exact => scores.softmax_last(),
        SoftmaxKind::IterApprox { k } => {
            let g = scores.graph();
            let shape = scores.shape();
            let mut y = g.constant(Tensor::full(&shape, 1.0 / m as f32));
            for _ in 0..k {
                let z = scores.mul(y);
                let sum_z = z.row_sum_bcast();
                y = y.add(z.sub(y.mul(sum_z)).scale(1.0 / k as f32));
            }
            y
        }
    }
}

/// The GELU MLP with activation quantizers.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    in_site: LsqSite,
    mid_site: LsqSite,
}

impl Mlp {
    fn new(init: &mut Initializer, dim: usize, hidden: usize) -> Self {
        Mlp {
            fc1: Linear::new(init, dim, hidden),
            fc2: Linear::new(init, hidden, dim),
            in_site: LsqSite::new(0.5),
            mid_site: LsqSite::new(0.5),
        }
    }

    const PARAM_COUNT: usize = 2 * Linear::PARAM_COUNT + 2;

    fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Tensor>) {
        out.push(&mut self.in_site.step);
        self.fc1.collect_params(out);
        out.push(&mut self.mid_site.step);
        self.fc2.collect_params(out);
    }

    fn collect_params_ref<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        out.push(&self.in_site.step);
        self.fc1.collect_params_ref(out);
        out.push(&self.mid_site.step);
        self.fc2.collect_params_ref(out);
    }

    fn forward<'g>(&self, bind: &mut Binder<'g>, x: Var<'g>, plan: &PrecisionPlan) -> Var<'g> {
        let xq = self.in_site.apply(bind, x, plan.acts);
        let h = self.fc1.forward(bind, xq, plan).gelu();
        let hq = self.mid_site.apply(bind, h, plan.acts);
        self.fc2.forward(bind, hq, plan)
    }

    /// First dense layer.
    pub fn fc1(&self) -> &Linear {
        &self.fc1
    }

    /// Second dense layer.
    pub fn fc2(&self) -> &Linear {
        &self.fc2
    }

    /// Activation quantizer sites: (input, post-GELU).
    pub fn sites(&self) -> (&LsqSite, &LsqSite) {
        (&self.in_site, &self.mid_site)
    }
}

/// One pre-norm encoder block with residual-stream quantizers.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    norm1: Norm,
    attn: Attention,
    res_site1: LsqSite,
    norm2: Norm,
    mlp: Mlp,
    res_site2: LsqSite,
}

impl Block {
    fn new(init: &mut Initializer, cfg: &VitConfig) -> Self {
        Block {
            norm1: Norm::new(cfg.norm, cfg.dim),
            attn: Attention::new(init, cfg.dim),
            res_site1: LsqSite::new(0.5),
            norm2: Norm::new(cfg.norm, cfg.dim),
            mlp: Mlp::new(init, cfg.dim, cfg.dim * cfg.mlp_ratio),
            res_site2: LsqSite::new(0.5),
        }
    }

    const PARAM_COUNT: usize =
        2 * Norm::PARAM_COUNT + Attention::PARAM_COUNT + Mlp::PARAM_COUNT + 2;

    fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Tensor>) {
        self.norm1.collect_params(out);
        self.attn.collect_params(out);
        out.push(&mut self.res_site1.step);
        self.norm2.collect_params(out);
        self.mlp.collect_params(out);
        out.push(&mut self.res_site2.step);
    }

    fn collect_params_ref<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        self.norm1.collect_params_ref(out);
        self.attn.collect_params_ref(out);
        out.push(&self.res_site1.step);
        self.norm2.collect_params_ref(out);
        self.mlp.collect_params_ref(out);
        out.push(&self.res_site2.step);
    }

    #[allow(clippy::too_many_arguments)]
    fn forward<'g>(
        &self,
        bind: &mut Binder<'g>,
        x: Var<'g>,
        batch: usize,
        seq: usize,
        cfg: &VitConfig,
        plan: &PrecisionPlan,
        mode: Mode,
    ) -> Var<'g> {
        let n1 = self.norm1.forward(bind, x, mode);
        let a = self.attn.forward(bind, n1, batch, seq, cfg, plan);
        let x = self.res_site1.apply(bind, x.add(a), plan.residual);
        let n2 = self.norm2.forward(bind, x, mode);
        let m = self.mlp.forward(bind, n2, plan);
        self.res_site2.apply(bind, x.add(m), plan.residual)
    }

    /// The block's norms (used by the SC engine to fold BN affines).
    pub fn norms(&self) -> (&Norm, &Norm) {
        (&self.norm1, &self.norm2)
    }

    /// The attention module.
    pub fn attn(&self) -> &Attention {
        &self.attn
    }

    /// The MLP module.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Residual quantizer sites: (post-MSA, post-MLP).
    pub fn res_sites(&self) -> (&LsqSite, &LsqSite) {
        (&self.res_site1, &self.res_site2)
    }
}

/// The forward pass outputs: logits, per-block taps (for KD), and the
/// parameter binder (for gradient collection).
pub struct ForwardOutput<'g> {
    /// Classifier logits `[batch, classes]`.
    pub logits: Var<'g>,
    /// Residual-stream output of every block, `[batch·seq, dim]` each.
    pub taps: Vec<Var<'g>>,
    /// The binder holding parameter leaves, aligned with `params_mut()`.
    pub binder: Binder<'g>,
}

/// The full ViT-lite model.
#[derive(Debug, Clone, PartialEq)]
pub struct VitModel {
    /// Hyperparameters.
    pub config: VitConfig,
    plan: PrecisionPlan,
    patch_embed: Linear,
    cls: Tensor,
    pos: Tensor,
    blocks: Vec<Block>,
    head_norm: Norm,
    head: Linear,
}

impl VitModel {
    /// Builds a freshly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`VitConfig::validate`]).
    pub fn new(cfg: VitConfig) -> Self {
        cfg.validate();
        let mut init = Initializer::new(cfg.seed);
        let patch_embed = Linear::new(&mut init, cfg.patch_dim(), cfg.dim);
        let cls = init.trunc_normal(&[cfg.dim], 0.2);
        let pos = init.trunc_normal(&[cfg.seq_len() * cfg.dim], 0.2);
        let blocks = (0..cfg.layers).map(|_| Block::new(&mut init, &cfg)).collect();
        let head_norm = Norm::new(cfg.norm, cfg.dim);
        let head = Linear::new(&mut init, cfg.dim, cfg.classes);
        VitModel {
            config: cfg,
            plan: PrecisionPlan::fp(),
            patch_embed,
            cls,
            pos,
            blocks,
            head_norm,
            head,
        }
    }

    /// The active precision plan.
    pub fn plan(&self) -> PrecisionPlan {
        self.plan
    }

    /// Switches the precision plan (progressive-quantization stage change).
    pub fn set_plan(&mut self, plan: PrecisionPlan) {
        self.plan = plan;
    }

    /// Switches the attention softmax flavour.
    pub fn set_softmax(&mut self, kind: SoftmaxKind) {
        self.config.softmax = kind;
    }

    /// The encoder blocks (read access for the SC engine).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The patch-embedding layer.
    pub fn patch_embed(&self) -> &Linear {
        &self.patch_embed
    }

    /// The class token `[dim]`.
    pub fn cls_token(&self) -> &Tensor {
        &self.cls
    }

    /// The positional embedding `[seq·dim]`.
    pub fn pos_embedding(&self) -> &Tensor {
        &self.pos
    }

    /// The classifier head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// The pre-head norm.
    pub fn head_norm(&self) -> &Norm {
        &self.head_norm
    }

    /// Total trainable tensor count.
    pub fn param_count(&self) -> usize {
        Linear::PARAM_COUNT                    // patch embed
            + 2                                // cls + pos
            + self.blocks.len() * Block::PARAM_COUNT
            + Norm::PARAM_COUNT                // head norm
            + Linear::PARAM_COUNT // head
    }

    /// Total scalar parameter count (for reporting).
    pub fn scalar_param_count(&mut self) -> usize {
        self.params_mut().iter().map(|t| t.numel()).sum()
    }

    /// All trainable tensors, in the exact order the forward pass binds
    /// them.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::with_capacity(self.param_count());
        self.patch_embed.collect_params(&mut out);
        out.push(&mut self.cls);
        out.push(&mut self.pos);
        for b in &mut self.blocks {
            b.collect_params(&mut out);
        }
        self.head_norm.collect_params(&mut out);
        self.head.collect_params(&mut out);
        out
    }

    /// All trainable tensors in bind order, immutably — the checkpoint
    /// *export* path (mirrors [`VitModel::params_mut`] exactly; asserted in
    /// tests).
    pub fn params(&self) -> Vec<&Tensor> {
        let mut out = Vec::with_capacity(self.param_count());
        self.patch_embed.collect_params_ref(&mut out);
        out.push(&self.cls);
        out.push(&self.pos);
        for b in &self.blocks {
            b.collect_params_ref(&mut out);
        }
        self.head_norm.collect_params_ref(&mut out);
        self.head.collect_params_ref(&mut out);
        out
    }

    /// Overwrites every trainable tensor from `values` (bind order) — the
    /// checkpoint *import* path. This restores weights, biases, norm
    /// affines, embeddings, and every LSQ quantizer step in one sweep.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch (count or per-tensor
    /// shape) and leaves the model unchanged in that case.
    pub fn load_params(&mut self, values: &[Tensor]) -> Result<(), String> {
        let shapes: Vec<Vec<usize>> = self.params().iter().map(|t| t.shape().to_vec()).collect();
        if values.len() != shapes.len() {
            return Err(format!(
                "checkpoint holds {} tensors, model expects {}",
                values.len(),
                shapes.len()
            ));
        }
        for (i, (v, want)) in values.iter().zip(shapes.iter()).enumerate() {
            if v.shape() != want.as_slice() {
                return Err(format!(
                    "tensor {i} has shape {:?}, model expects {:?}",
                    v.shape(),
                    want
                ));
            }
        }
        for (dst, src) in self.params_mut().into_iter().zip(values.iter()) {
            *dst = src.clone();
        }
        Ok(())
    }

    /// Running statistics `(mean, var)` of every norm, in traversal order:
    /// per block `(norm1, norm2)`, then the head norm. Meaningful for
    /// BatchNorm; LayerNorm entries are the unused defaults.
    pub fn norm_states(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        let mut out = Vec::with_capacity(2 * self.blocks.len() + 1);
        for b in &self.blocks {
            out.push((b.norm1.running_mean(), b.norm1.running_var()));
            out.push((b.norm2.running_mean(), b.norm2.running_var()));
        }
        out.push((self.head_norm.running_mean(), self.head_norm.running_var()));
        out
    }

    /// Restores the running statistics captured by
    /// [`VitModel::norm_states`] (same traversal order).
    ///
    /// # Errors
    ///
    /// Returns a description of the first count or length mismatch.
    pub fn load_norm_states(&mut self, states: &[(Vec<f32>, Vec<f32>)]) -> Result<(), String> {
        let want = 2 * self.blocks.len() + 1;
        if states.len() != want {
            return Err(format!("checkpoint holds {} norm states, model expects {want}", states.len()));
        }
        let d = self.config.dim;
        for (i, (m, v)) in states.iter().enumerate() {
            if m.len() != d || v.len() != d {
                return Err(format!(
                    "norm state {i} has lengths {}/{}, model width is {d}",
                    m.len(),
                    v.len()
                ));
            }
        }
        let mut it = states.iter().cloned();
        for b in &mut self.blocks {
            let (m, v) = it.next().expect("count checked");
            b.norm1.set_running_stats(m, v)?;
            let (m, v) = it.next().expect("count checked");
            b.norm2.set_running_stats(m, v)?;
        }
        let (m, v) = it.next().expect("count checked");
        self.head_norm.set_running_stats(m, v)?;
        Ok(())
    }

    /// Runs the model on pre-extracted patches
    /// (`[batch·num_patches, patch_dim]`, see [`crate::data::Dataset::patches`]).
    ///
    /// # Panics
    ///
    /// Panics if the patch tensor does not match `batch` and the config
    /// geometry.
    pub fn forward<'g>(
        &self,
        g: &'g Graph,
        patches: &Tensor,
        batch: usize,
        mode: Mode,
    ) -> ForwardOutput<'g> {
        let cfg = &self.config;
        let p = cfg.num_patches();
        let s = cfg.seq_len();
        let d = cfg.dim;
        assert_eq!(
            patches.shape(),
            &[batch * p, cfg.patch_dim()],
            "patch tensor shape mismatch"
        );
        let mut bind = Binder::new(g);
        let plan = &self.plan;

        // Patch embedding.
        let x = g.constant(patches.clone());
        let tokens = self.patch_embed.forward(&mut bind, x, plan); // [b·p, d]

        // Class token + positional embedding.
        let cls = bind.bind(&self.cls);
        let pos = bind.bind(&self.pos);
        let cls3 = cls.repeat_as_rows(batch).reshape(&[batch, 1, d]);
        let tokens3 = tokens.reshape(&[batch, p, d]);
        let seq3 = cls3.concat_axis1(tokens3); // [b, s, d]
        let seq2 = seq3.reshape(&[batch, s * d]).broadcast_row_add(pos);
        let mut h = seq2.reshape(&[batch * s, d]);

        // Encoder stack with KD taps.
        let mut taps = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            h = block.forward(&mut bind, h, batch, s, cfg, plan, mode);
            taps.push(h);
        }

        // Head: norm → cls token → classifier.
        let hn = self.head_norm.forward(&mut bind, h, mode);
        let cls_tok = hn.reshape(&[batch, s, d]).select_axis1(0); // [b, d]
        let logits = self.head.forward(&mut bind, cls_tok, plan);

        debug_assert_eq!(bind.len(), self.param_count(), "bind order drifted");
        ForwardOutput { logits, taps, binder: bind }
    }

    /// Convenience: eval-mode logits as a plain tensor.
    pub fn predict(&self, patches: &Tensor, batch: usize) -> Tensor {
        let g = Graph::new();
        self.forward(&g, patches, batch, Mode::Eval).logits.value()
    }

    /// Calibrates every activation/residual LSQ step from one forward pass
    /// at the *current* plan's tensor statistics (run right after a plan
    /// switch, before training). Equivalent to
    /// `calibrate_sites(…, true, true, true)`.
    pub fn calibrate_steps(&mut self, patches: &Tensor, batch: usize) {
        self.calibrate_sites(patches, batch, true, true, true);
    }

    /// Selectively re-initializes LSQ steps from per-site observed
    /// statistics (the LSQ `2·E[|x|]/√qp` rule).
    ///
    /// A progressive-quantization stage switch should only recalibrate the
    /// sites whose BSL actually changed (`weights` / `acts` / `residual`),
    /// preserving the steps the previous stage learned everywhere else —
    /// the warm-start that makes progressive quantization work (paper §V).
    pub fn calibrate_sites(
        &mut self,
        patches: &Tensor,
        batch: usize,
        weights: bool,
        acts: bool,
        residual: bool,
    ) {
        // One FP forward so every site records its input statistics.
        let saved_plan = self.plan;
        self.plan = PrecisionPlan::fp();
        let g = Graph::new();
        let _ = self.forward(&g, patches, batch, Mode::Eval);
        self.plan = saved_plan;

        if acts {
            let act_bsl = self.plan.acts.unwrap_or(16);
            for b in &mut self.blocks {
                b.attn.in_site.recalibrate(act_bsl);
                b.attn.out_site.recalibrate(act_bsl);
                b.mlp.in_site.recalibrate(act_bsl);
                b.mlp.mid_site.recalibrate(act_bsl);
            }
        }
        if residual {
            let res_bsl = self.plan.residual.unwrap_or(16);
            for b in &mut self.blocks {
                b.res_site1.recalibrate(res_bsl);
                b.res_site2.recalibrate(res_bsl);
            }
        }
        if weights {
            if let Some(wb) = self.plan.weights {
                let relink = |lin: &mut Linear| {
                    lin.w_site = LsqSite::init_from(&lin.w, wb);
                };
                relink(&mut self.patch_embed);
                for b in &mut self.blocks {
                    relink(&mut b.attn.q);
                    relink(&mut b.attn.k);
                    relink(&mut b.attn.v);
                    relink(&mut b.attn.proj);
                    relink(&mut b.mlp.fc1);
                    relink(&mut b.mlp.fc2);
                }
                relink(&mut self.head);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NormKind;

    fn tiny_config() -> VitConfig {
        VitConfig {
            image: 8,
            patch: 4,
            dim: 8,
            layers: 2,
            heads: 2,
            mlp_ratio: 2,
            classes: 3,
            ..Default::default()
        }
    }

    fn fake_patches(cfg: &VitConfig, batch: usize) -> Tensor {
        let n = batch * cfg.num_patches() * cfg.patch_dim();
        Tensor::from_vec((0..n).map(|i| ((i * 37 % 100) as f32 - 50.0) / 50.0).collect(), &[
            batch * cfg.num_patches(),
            cfg.patch_dim(),
        ])
    }

    #[test]
    fn forward_shapes_and_bind_order() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        let patches = fake_patches(&cfg, 2);
        let g = Graph::new();
        let out = model.forward(&g, &patches, 2, Mode::Train);
        assert_eq!(out.logits.value().shape(), &[2, 3]);
        assert_eq!(out.taps.len(), 2);
        assert_eq!(out.binder.len(), model.param_count());
        assert_eq!(model.params_mut().len(), model.param_count());
    }

    #[test]
    fn params_and_binder_shapes_agree() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        let patches = fake_patches(&cfg, 1);
        let g = Graph::new();
        let out = model.forward(&g, &patches, 1, Mode::Train);
        let shapes_bound: Vec<Vec<usize>> =
            out.binder.vars().iter().map(|v| v.value().shape().to_vec()).collect();
        let shapes_owned: Vec<Vec<usize>> =
            model.params_mut().iter().map(|t| t.shape().to_vec()).collect();
        assert_eq!(shapes_bound, shapes_owned, "bind order must mirror params_mut order");
    }

    #[test]
    fn gradients_flow_to_every_parameter_under_quantization() {
        let mut cfg = tiny_config();
        cfg.norm = NormKind::Batch;
        let mut model = VitModel::new(cfg);
        model.set_plan(PrecisionPlan::w2_a2_r16());
        let patches = fake_patches(&cfg, 2);
        let g = Graph::new();
        let out = model.forward(&g, &patches, 2, Mode::Train);
        let loss = out.logits.cross_entropy(&[0, 1]);
        g.backward(loss);
        let grads = out.binder.grads();
        // Weight tensors (largest params) must all receive nonzero grads
        // somewhere; LSQ steps may legitimately be zero.
        let nonzero = grads.iter().filter(|t| t.data().iter().any(|v| *v != 0.0)).count();
        assert!(
            nonzero > grads.len() / 2,
            "most parameters should receive gradient, got {nonzero}/{}",
            grads.len()
        );
    }

    #[test]
    fn iterative_softmax_changes_logits_but_preserves_shape() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        let patches = fake_patches(&cfg, 2);
        let exact = model.predict(&patches, 2);
        model.set_softmax(SoftmaxKind::IterApprox { k: 3 });
        let approx = model.predict(&patches, 2);
        assert_eq!(exact.shape(), approx.shape());
        assert_ne!(exact, approx, "approximate softmax must alter outputs");
    }

    #[test]
    fn quantized_model_output_is_on_grid_effects() {
        // W2-A2 ternarizes weights: the model still produces finite logits.
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        model.set_plan(PrecisionPlan::w2_a2_r16());
        let patches = fake_patches(&cfg, 1);
        let y = model.predict(&patches, 1);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn calibrate_steps_sets_positive_steps() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        model.set_plan(PrecisionPlan::w2_a2_r16());
        let patches = fake_patches(&cfg, 2);
        model.calibrate_steps(&patches, 2);
        for b in model.blocks() {
            let (n1, _) = b.norms();
            let _ = n1; // norms untouched by calibration
        }
        // Predict still works after calibration.
        let y = model.predict(&patches, 2);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn params_ref_mirrors_params_mut_order() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        let ref_shapes: Vec<Vec<usize>> =
            model.params().iter().map(|t| t.shape().to_vec()).collect();
        let mut_shapes: Vec<Vec<usize>> =
            model.params_mut().iter().map(|t| t.shape().to_vec()).collect();
        assert_eq!(ref_shapes, mut_shapes);
        assert_eq!(ref_shapes.len(), model.param_count());
    }

    #[test]
    fn load_params_roundtrips_predictions_exactly() {
        let mut cfg = tiny_config();
        cfg.norm = NormKind::Batch;
        let model = VitModel::new(cfg);
        let patches = fake_patches(&cfg, 2);
        // Perturb state away from init: one train-mode pass moves BN stats.
        let g = Graph::new();
        let _ = model.forward(&g, &patches, 2, Mode::Train);
        let want = model.predict(&patches, 2);

        let params: Vec<Tensor> = model.params().into_iter().cloned().collect();
        let norms = model.norm_states();
        let mut twin = VitModel::new(cfg);
        twin.set_plan(model.plan());
        twin.load_params(&params).unwrap();
        twin.load_norm_states(&norms).unwrap();
        let got = twin.predict(&patches, 2);
        assert_eq!(want.shape(), got.shape());
        for (a, b) in want.data().iter().zip(got.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "restored model must be bit-identical");
        }
    }

    #[test]
    fn load_params_rejects_wrong_count_and_shape() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        assert!(model.load_params(&[]).is_err());
        let mut params: Vec<Tensor> = model.params().into_iter().cloned().collect();
        params[0] = Tensor::zeros(&[1, 1]);
        assert!(model.load_params(&params).is_err());
    }

    #[test]
    fn load_norm_states_rejects_bad_lengths() {
        let cfg = tiny_config();
        let mut model = VitModel::new(cfg);
        assert!(model.load_norm_states(&[]).is_err());
        let mut states = model.norm_states();
        states[1].0.pop();
        assert!(model.load_norm_states(&states).is_err());
    }

    #[test]
    #[should_panic(expected = "patch tensor shape mismatch")]
    fn forward_checks_patch_shape() {
        let cfg = tiny_config();
        let model = VitModel::new(cfg);
        let g = Graph::new();
        let bad = Tensor::zeros(&[3, cfg.patch_dim()]);
        model.forward(&g, &bad, 2, Mode::Eval);
    }
}
