//! Model configuration.

/// Which normalization the encoder blocks use.
///
/// The paper replaces LayerNorm with BatchNorm (+ knowledge distillation)
/// because BN folds into a static per-channel affine at inference, which is
/// SC-friendly (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Standard ViT LayerNorm.
    Layer,
    /// BatchNorm1d over tokens (the SC-friendly variant).
    Batch,
}

/// Which softmax the attention uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SoftmaxKind {
    /// Exact (stable) softmax.
    Exact,
    /// Iterative approximate softmax (Algorithm 1) with `k` Euler steps,
    /// built from differentiable graph ops so fine-tuning can adapt to it.
    IterApprox {
        /// Euler step count.
        k: usize,
    },
}

/// ViT-lite hyperparameters.
///
/// The default mirrors the paper's lightweight ViT (7 layers, 4 heads,
/// following \[24\]) at the reduced width documented in DESIGN.md (S3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VitConfig {
    /// Square image side.
    pub image: usize,
    /// Input channels.
    pub channels: usize,
    /// Square patch side (must divide `image`).
    pub patch: usize,
    /// Embedding dimension (must be divisible by `heads`).
    pub dim: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden dim = `mlp_ratio · dim`.
    pub mlp_ratio: usize,
    /// Output classes.
    pub classes: usize,
    /// Normalization flavour.
    pub norm: NormKind,
    /// Softmax flavour.
    pub softmax: SoftmaxKind,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for VitConfig {
    fn default() -> Self {
        VitConfig {
            image: 16,
            channels: 3,
            patch: 4,
            dim: 32,
            layers: 7,
            heads: 4,
            mlp_ratio: 2,
            classes: 10,
            norm: NormKind::Batch,
            softmax: SoftmaxKind::Exact,
            seed: 42,
        }
    }
}

impl VitConfig {
    /// Number of image patches.
    pub fn num_patches(&self) -> usize {
        (self.image / self.patch) * (self.image / self.patch)
    }

    /// Sequence length including the class token.
    pub fn seq_len(&self) -> usize {
        self.num_patches() + 1
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Flattened patch input dimension.
    pub fn patch_dim(&self) -> usize {
        self.channels * self.patch * self.patch
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `patch ∤ image` or `heads ∤ dim` or anything is zero.
    pub fn validate(&self) {
        assert!(self.image > 0 && self.patch > 0 && self.dim > 0, "zero-sized config");
        assert!(self.layers > 0 && self.heads > 0 && self.classes > 0, "zero-sized config");
        assert_eq!(self.image % self.patch, 0, "patch must divide image");
        assert_eq!(self.dim % self.heads, 0, "heads must divide dim");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_shaped() {
        let c = VitConfig::default();
        c.validate();
        assert_eq!(c.layers, 7);
        assert_eq!(c.heads, 4);
        assert_eq!(c.num_patches(), 16);
        assert_eq!(c.seq_len(), 17);
        assert_eq!(c.head_dim(), 8);
        assert_eq!(c.patch_dim(), 48);
    }

    #[test]
    #[should_panic(expected = "patch must divide image")]
    fn validate_rejects_bad_patch() {
        VitConfig { image: 10, patch: 4, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "heads must divide dim")]
    fn validate_rejects_bad_heads() {
        VitConfig { dim: 30, heads: 4, ..Default::default() }.validate();
    }
}
