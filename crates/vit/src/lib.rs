//! # ascend-vit — the ViT-lite network substrate
//!
//! The network side of the ASCEND co-design: a compact Vision Transformer
//! (7 layers / 4 heads following \[24\], paper §VI-A) built on
//! [`ascend_tensor`], with everything the two-stage training pipeline needs:
//!
//! * [`norm`] — LayerNorm *and* the BatchNorm the paper swaps in for SC
//!   friendliness (§V);
//! * [`quant`] — LSQ fake quantization \[25\] and the `W·-A·-R·` precision
//!   plans (`W2-A2-R16` et al., following \[15\]);
//! * [`model`] — the ViT with per-block output taps for distillation and a
//!   switchable softmax (exact ↔ iterative approximate, in-graph and
//!   differentiable, enabling the approximate-softmax-aware fine-tune);
//! * [`data`] — SynthCIFAR, the seeded procedural stand-in for CIFAR-10/100
//!   (DESIGN.md, substitution S2);
//! * [`train`] — minibatch training with AdamW, cosine LR and the KD
//!   objective `ℓ_KL + β·(1/M)Σ ℓ_MSE` (§V).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binder;
pub mod config;
pub mod data;
pub mod model;
pub mod norm;
pub mod quant;
pub mod train;

pub use config::{NormKind, SoftmaxKind, VitConfig};
pub use model::VitModel;
pub use quant::PrecisionPlan;
