//! Normalization layers: LayerNorm and the SC-friendly BatchNorm swap.
//!
//! The paper replaces LayerNorm with BatchNorm before quantization (§V):
//! BN's statistics freeze into a static per-channel affine at inference,
//! which maps onto SC scale factors, whereas LN needs per-token statistics
//! at run time. The swap costs <0.1% accuracy under KD in the paper.

use std::cell::RefCell;

use ascend_tensor::{Tensor, Var};

use crate::binder::Binder;
use crate::config::NormKind;

const EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.1;

/// Whether a forward pass updates statistics (training) or consumes the
/// frozen running statistics (evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch statistics, running-stat updates.
    Train,
    /// Inference: frozen running statistics.
    Eval,
}

/// A normalization layer over the feature axis of `[n, d]` inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Norm {
    kind: NormKind,
    /// Scale γ, `[d]`.
    pub gamma: Tensor,
    /// Shift β, `[d]`.
    pub beta: Tensor,
    running_mean: RefCell<Vec<f32>>,
    running_var: RefCell<Vec<f32>>,
}

impl Norm {
    /// Creates a unit-γ zero-β layer of width `d`.
    pub fn new(kind: NormKind, d: usize) -> Self {
        Norm {
            kind,
            gamma: Tensor::ones(&[d]),
            beta: Tensor::zeros(&[d]),
            running_mean: RefCell::new(vec![0.0; d]),
            running_var: RefCell::new(vec![1.0; d]),
        }
    }

    /// The flavour.
    pub fn kind(&self) -> NormKind {
        self.kind
    }

    /// Frozen running mean (BatchNorm only; zeros for LayerNorm).
    pub fn running_mean(&self) -> Vec<f32> {
        self.running_mean.borrow().clone()
    }

    /// Frozen running variance (BatchNorm only; ones for LayerNorm).
    pub fn running_var(&self) -> Vec<f32> {
        self.running_var.borrow().clone()
    }

    /// Overwrites the running statistics — the checkpoint-restore path.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if either vector's length
    /// differs from the layer width.
    pub fn set_running_stats(&mut self, mean: Vec<f32>, var: Vec<f32>) -> Result<(), String> {
        let d = self.gamma.numel();
        if mean.len() != d || var.len() != d {
            return Err(format!(
                "running stats of lengths {}/{} do not fit a width-{d} norm",
                mean.len(),
                var.len()
            ));
        }
        *self.running_mean.borrow_mut() = mean;
        *self.running_var.borrow_mut() = var;
        Ok(())
    }

    /// Number of trainable tensors (γ and β).
    pub const PARAM_COUNT: usize = 2;

    /// Appends γ, β to the parameter list (bind-order contract).
    pub fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Tensor>) {
        out.push(&mut self.gamma);
        out.push(&mut self.beta);
    }

    /// Immutable twin of [`Norm::collect_params`] (same order).
    pub fn collect_params_ref<'a>(&'a self, out: &mut Vec<&'a Tensor>) {
        out.push(&self.gamma);
        out.push(&self.beta);
    }

    /// Forward over `[n, d]`.
    pub fn forward<'g>(&self, b: &mut Binder<'g>, x: Var<'g>, mode: Mode) -> Var<'g> {
        let gamma = b.bind(&self.gamma);
        let beta = b.bind(&self.beta);
        let normalized = match (self.kind, mode) {
            (NormKind::Layer, _) => {
                // Per-row statistics.
                let mu = x.mean_axis1();
                let centered = x.broadcast_col_add(mu.neg());
                let var = centered.square().mean_axis1();
                let inv = var.rsqrt_eps(EPS);
                centered.broadcast_col_mul(inv)
            }
            (NormKind::Batch, Mode::Train) => {
                // Per-column batch statistics + running-stat update.
                let mu = x.mean_axis0();
                let centered = x.broadcast_row_add(mu.neg());
                let var = centered.square().mean_axis0();
                {
                    let mu_v = mu.value();
                    let var_v = var.value();
                    let mut rm = self.running_mean.borrow_mut();
                    let mut rv = self.running_var.borrow_mut();
                    for j in 0..rm.len() {
                        rm[j] = (1.0 - BN_MOMENTUM) * rm[j] + BN_MOMENTUM * mu_v.data()[j];
                        rv[j] = (1.0 - BN_MOMENTUM) * rv[j] + BN_MOMENTUM * var_v.data()[j];
                    }
                }
                let inv = var.rsqrt_eps(EPS);
                centered.broadcast_row_mul(inv)
            }
            (NormKind::Batch, Mode::Eval) => {
                let g = b.graph();
                let rm = self.running_mean.borrow();
                let rv = self.running_var.borrow();
                let d = rm.len();
                let neg_mu = g.constant(Tensor::from_vec(rm.iter().map(|v| -v).collect(), &[d]));
                let inv = g.constant(Tensor::from_vec(
                    rv.iter().map(|v| 1.0 / (v + EPS).sqrt()).collect(),
                    &[d],
                ));
                x.broadcast_row_add(neg_mu).broadcast_row_mul(inv)
            }
        };
        normalized.broadcast_row_mul(gamma).broadcast_row_add(beta)
    }

    /// The folded inference-time affine `(scale, shift)` per channel — what
    /// the SC engine bakes into its thermometer scale factors. Only
    /// meaningful for BatchNorm (LayerNorm cannot fold).
    pub fn folded_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let rm = self.running_mean.borrow();
        let rv = self.running_var.borrow();
        let scale: Vec<f32> = self
            .gamma
            .data()
            .iter()
            .zip(rv.iter())
            .map(|(g, v)| g / (v + EPS).sqrt())
            .collect();
        let shift: Vec<f32> = self
            .beta
            .data()
            .iter()
            .zip(scale.iter().zip(rm.iter()))
            .map(|(b, (s, m))| b - s * m)
            .collect();
        (scale, shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_tensor::Graph;

    fn sample() -> Tensor {
        Tensor::from_vec(vec![1.0, -2.0, 3.0, 5.0, 0.0, -1.0], &[3, 2])
    }

    #[test]
    fn layernorm_rows_have_zero_mean_unit_var() {
        let g = Graph::new();
        let mut b = Binder::new(&g);
        let norm = Norm::new(NormKind::Layer, 2);
        let x = g.leaf(sample());
        let y = norm.forward(&mut b, x, Mode::Train).value();
        for i in 0..3 {
            let row = &y.data()[i * 2..(i + 1) * 2];
            let mean: f32 = row.iter().sum::<f32>() / 2.0;
            assert!(mean.abs() < 1e-5, "row {i} mean {mean}");
        }
    }

    #[test]
    fn batchnorm_train_columns_are_standardized() {
        let g = Graph::new();
        let mut b = Binder::new(&g);
        let norm = Norm::new(NormKind::Batch, 2);
        let x = g.leaf(sample());
        let y = norm.forward(&mut b, x, Mode::Train).value();
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|i| y.data()[i * 2 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "col {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {j} var {var}");
        }
    }

    #[test]
    fn batchnorm_updates_running_stats_only_in_train() {
        let g = Graph::new();
        let norm = Norm::new(NormKind::Batch, 2);
        let before = norm.running_mean();
        {
            let mut b = Binder::new(&g);
            let x = g.leaf(sample());
            let _ = norm.forward(&mut b, x, Mode::Eval);
        }
        assert_eq!(norm.running_mean(), before, "eval must not touch stats");
        {
            let mut b = Binder::new(&g);
            let x = g.leaf(sample());
            let _ = norm.forward(&mut b, x, Mode::Train);
        }
        assert_ne!(norm.running_mean(), before, "train must update stats");
    }

    #[test]
    fn eval_uses_running_stats() {
        let g = Graph::new();
        let norm = Norm::new(NormKind::Batch, 2);
        // Train a few times so running stats move toward batch stats.
        for _ in 0..200 {
            let mut b = Binder::new(&g);
            let x = g.leaf(sample());
            let _ = norm.forward(&mut b, x, Mode::Train);
        }
        let mut b = Binder::new(&g);
        let x = g.leaf(sample());
        let y = norm.forward(&mut b, x, Mode::Eval).value();
        // Columns should now be approximately standardized in eval too.
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|i| y.data()[i * 2 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 0.1, "col {j} mean {mean}");
        }
    }

    #[test]
    fn folded_affine_matches_eval_forward() {
        let g = Graph::new();
        let norm = Norm::new(NormKind::Batch, 2);
        for _ in 0..50 {
            let mut b = Binder::new(&g);
            let x = g.leaf(sample());
            let _ = norm.forward(&mut b, x, Mode::Train);
        }
        let (scale, shift) = norm.folded_affine();
        let mut b = Binder::new(&g);
        let x = g.leaf(sample());
        let y = norm.forward(&mut b, x, Mode::Eval).value();
        for i in 0..3 {
            for j in 0..2 {
                let manual = sample().data()[i * 2 + j] * scale[j] + shift[j];
                assert!((y.data()[i * 2 + j] - manual).abs() < 1e-4);
            }
        }
    }
}
