//! Training and evaluation loops, including the distillation objective.
//!
//! The knowledge-distillation loss follows the paper exactly (§V):
//! `Loss = ℓ_KL(Z_s, Z_t) + β · (1/M) Σᵢ ℓ_MSE(S_i, T_i)` with β = 2, where
//! `Z` are logits and `S_i`/`T_i` the per-block outputs of student and
//! teacher. Without a teacher the loss is plain cross-entropy.

use ascend_tensor::optim::{cosine_lr, AdamW};
use ascend_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::model::VitModel;
use crate::norm::Mode;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// KD balance β (paper: 2.0). Ignored without a teacher.
    pub beta_kd: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch: 32,
            lr: 1e-3,
            weight_decay: 0.01,
            beta_kd: 2.0,
            seed: 0,
            verbose: false,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Test accuracy after the epoch, in `[0, 1]`.
    pub test_accuracy: f32,
}

/// Trains `model` on `train`, evaluating on `test` each epoch.
///
/// With `teacher` present the KD objective replaces cross-entropy; the
/// teacher runs in eval mode and its logits/taps enter the graph as
/// constants.
pub fn train_model(
    model: &mut VitModel,
    teacher: Option<&VitModel>,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> Vec<EpochStats> {
    let patch = model.config.patch;
    let mut opt = AdamW::new(cfg.lr, 0.9, 0.999, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = Vec::with_capacity(cfg.epochs);
    let steps_per_epoch = train.len().div_ceil(cfg.batch);
    let total_steps = steps_per_epoch * cfg.epochs;
    let mut step = 0usize;

    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut loss_count = 0usize;

        for chunk in order.chunks(cfg.batch) {
            let patches = train.patches(chunk, patch);
            let labels = train.labels_for(chunk);
            let b = chunk.len();

            // Teacher pass (constants).
            let teacher_out = teacher.map(|t| {
                let tg = Graph::new();
                let out = t.forward(&tg, &patches, b, Mode::Eval);
                let logits = out.logits.value();
                let taps: Vec<Tensor> = out.taps.iter().map(|v| v.value()).collect();
                (logits, taps)
            });

            let g = Graph::new();
            let out = model.forward(&g, &patches, b, Mode::Train);
            let loss = match &teacher_out {
                None => out.logits.cross_entropy(&labels),
                Some((t_logits, t_taps)) => {
                    let kl = out.logits.kl_from_teacher(t_logits);
                    let m = out.taps.len().max(1) as f32;
                    let mut total = kl;
                    for (s_tap, t_tap) in out.taps.iter().zip(t_taps.iter()) {
                        let t_const = g.constant(t_tap.clone());
                        let mse = s_tap.mse(t_const).scale(cfg.beta_kd / m);
                        total = total.add(mse);
                    }
                    total
                }
            };
            g.backward(loss);
            loss_sum += loss.value().item();
            loss_count += 1;

            let grads = out.binder.grads();
            opt.set_lr(cosine_lr(step, total_steps / 20, total_steps, cfg.lr));
            step += 1;
            let mut params = model.params_mut();
            let grad_refs: Vec<&Tensor> = grads.iter().collect();
            opt.step(&mut params, &grad_refs);
        }

        let acc = evaluate(model, test, cfg.batch);
        if cfg.verbose {
            println!(
                "epoch {:>3}: loss {:.4}  test acc {:.2}%",
                epoch,
                loss_sum / loss_count.max(1) as f32,
                acc * 100.0
            );
        }
        stats.push(EpochStats {
            epoch,
            train_loss: loss_sum / loss_count.max(1) as f32,
            test_accuracy: acc,
        });
    }
    stats
}

/// Top-1 accuracy of `model` on `data` (eval mode), in `[0, 1]`.
pub fn evaluate(model: &VitModel, data: &Dataset, batch: usize) -> f32 {
    let patch = model.config.patch;
    let mut correct = 0usize;
    let all: Vec<usize> = (0..data.len()).collect();
    for chunk in all.chunks(batch.max(1)) {
        let patches = data.patches(chunk, patch);
        let labels = data.labels_for(chunk);
        let logits = model.predict(&patches, chunk.len());
        for (pred, want) in logits.argmax_rows().iter().zip(labels.iter()) {
            if pred == want {
                correct += 1;
            }
        }
    }
    correct as f32 / data.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitConfig;
    use crate::data::synth_cifar;

    fn tiny() -> (VitModel, Dataset, Dataset) {
        let cfg = VitConfig {
            image: 8,
            patch: 4,
            dim: 16,
            layers: 2,
            heads: 2,
            mlp_ratio: 2,
            classes: 4,
            ..Default::default()
        };
        let model = VitModel::new(cfg);
        let (train, test) = synth_cifar(4, 64, 32, 8, 7);
        (model, train, test)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (mut model, train, test) = tiny();
        let cfg = TrainConfig { epochs: 6, batch: 16, lr: 2e-3, ..Default::default() };
        let stats = train_model(&mut model, None, &train, &test, &cfg);
        assert!(stats.last().unwrap().train_loss < stats.first().unwrap().train_loss);
        let acc = stats.last().unwrap().test_accuracy;
        assert!(acc > 0.30, "should beat 25% chance, got {acc}");
    }

    #[test]
    fn distillation_pulls_student_toward_teacher() {
        let (mut teacher, train, test) = tiny();
        let cfg = TrainConfig { epochs: 4, batch: 16, lr: 2e-3, ..Default::default() };
        train_model(&mut teacher, None, &train, &test, &cfg);

        // A fresh student distilled from the teacher.
        let mut student = VitModel::new(VitConfig { seed: 99, ..teacher.config });
        let kd_cfg = TrainConfig { epochs: 4, batch: 16, lr: 2e-3, ..Default::default() };
        let stats = train_model(&mut student, Some(&teacher), &train, &test, &kd_cfg);
        assert!(
            stats.last().unwrap().train_loss < stats.first().unwrap().train_loss,
            "KD loss must decrease"
        );
    }

    #[test]
    fn evaluate_bounds() {
        let (model, _, test) = tiny();
        let acc = evaluate(&model, &test, 16);
        assert!((0.0..=1.0).contains(&acc));
    }
}
