//! Parameter binding: pairing model-owned tensors with graph leaves.
//!
//! Each training step builds a fresh [`ascend_tensor::Graph`]; the model's
//! parameters (plain [`Tensor`]s it owns) are *bound* into the graph as
//! leaves in a deterministic traversal order. After `backward`, the trainer
//! zips [`Binder::vars`] with the model's `params_mut()` — which must list
//! tensors in the same order — to hand gradients to the optimizer.

use ascend_tensor::{Graph, Tensor, Var};

/// Records the leaf variables created for model parameters, in bind order.
pub struct Binder<'g> {
    g: &'g Graph,
    vars: Vec<Var<'g>>,
}

impl<'g> Binder<'g> {
    /// Starts binding onto a graph.
    pub fn new(g: &'g Graph) -> Self {
        Binder { g, vars: Vec::new() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Binds one parameter tensor, returning its leaf.
    pub fn bind(&mut self, t: &Tensor) -> Var<'g> {
        let v = self.g.leaf(t.clone());
        self.vars.push(v);
        v
    }

    /// The bound leaves, in bind order.
    pub fn vars(&self) -> &[Var<'g>] {
        &self.vars
    }

    /// Number of parameters bound.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if nothing was bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Collects gradients for every bound parameter after a backward pass,
    /// substituting zeros for parameters the loss did not reach.
    pub fn grads(&self) -> Vec<Tensor> {
        self.vars
            .iter()
            .map(|v| {
                self.g
                    .grad(*v)
                    .unwrap_or_else(|| Tensor::zeros(v.value().shape()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_in_order_and_collects_grads() {
        let g = Graph::new();
        let mut b = Binder::new(&g);
        let p1 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let p2 = Tensor::from_vec(vec![3.0], &[1]);
        let v1 = b.bind(&p1);
        let _v2 = b.bind(&p2); // unused by the loss
        assert_eq!(b.len(), 2);
        let loss = v1.square().sum_all();
        g.backward(loss);
        let grads = b.grads();
        assert_eq!(grads[0].data(), &[2.0, 4.0]);
        assert_eq!(grads[1].data(), &[0.0], "unused param gets zero grad");
    }
}
