//! `ascend-http` — the network front door of the serving stack: a
//! hand-rolled, offline, std-only HTTP/1.1 server over an
//! [`ascend::Session`] and its persistent `ServePool`.
//!
//! The runtime below this crate already proves "parallel batched
//! inference"; this crate turns it into "serves traffic": a listener
//! accepting connections onto a small connection-thread pool, keep-alive
//! with per-connection request limits and read/write deadlines, a
//! `POST /v1/infer` route running length-prefixed patch payloads through
//! the pool, a `GET /metrics` endpoint exporting `ServeReport`-style
//! latency percentiles plus the live queue depth, and graceful drain on
//! shutdown.
//!
//! The load-bearing design rule is **non-blocking admission**: socket
//! threads submit work with `ServePool::try_submit`, so a full bounded
//! queue is answered with `503 Retry-After` (load shedding) instead of
//! wedging the connection thread in a blocking `submit` — under overload
//! the server stays responsive and every request gets *an* answer.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ascend_http::{HttpConfig, HttpServer};
//! # fn demo(session: ascend::Session) -> Result<(), sc_core::ScError> {
//! let server = HttpServer::bind(Arc::new(session), HttpConfig::new("127.0.0.1:0"))?;
//! println!("listening on {}", server.local_addr());
//! let handle = server.shutdown_handle();
//! // ... later, from any thread:
//! handle.shutdown();
//! server.join(); // graceful: stop accepting, finish in-flight, join workers
//! # Ok(()) }
//! ```
//!
//! ## Wire format of `POST /v1/infer`
//!
//! The request body is a length-prefixed little-endian binary payload:
//! `u32 images`, `u32 values`, then exactly `values` IEEE-754 `f32`
//! patch scalars (`values` must equal `images × num_patches × patch_dim`
//! for the served model). A `200` response mirrors the shape: `u32
//! images`, `u32 classes`, then `images × classes` logit `f32`s — byte
//! layout chosen so "bit-identical to the in-process serial path" is
//! checkable by comparing raw bodies.

#![forbid(unsafe_code)]

pub mod client;
pub mod http1;
pub mod metrics;
pub mod server;

use std::time::Duration;

use ascend_tensor::Tensor;
use ascend_vit::VitConfig;
use sc_core::ScError;

pub use server::{HttpServer, ShutdownHandle};

/// Runtime knobs of the [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"` (`:0` picks a free port;
    /// [`HttpServer::local_addr`] reports the real one).
    pub addr: String,
    /// Connection-handler threads. Each owns one connection at a time, so
    /// this is also the cap on concurrently served connections; accepted
    /// connections beyond the small hand-off backlog are shed with `503`.
    pub conn_workers: usize,
    /// Maximum requests served over one keep-alive connection before the
    /// server closes it (`Connection: close` on the last response).
    pub keep_alive_requests: usize,
    /// Per-connection read deadline (`set_read_timeout`): an idle
    /// keep-alive connection is closed quietly; a connection that stalls
    /// mid-request gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Per-connection write deadline (`set_write_timeout`).
    pub write_timeout: Duration,
    /// Maximum request-body size in bytes; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// Maximum total header-block size in bytes; larger gets `431`.
    pub max_header_bytes: usize,
    /// Maximum header count; more get `431`.
    pub max_headers: usize,
}

impl HttpConfig {
    /// Production-lean defaults on the given listen address.
    pub fn new(addr: impl Into<String>) -> Self {
        HttpConfig {
            addr: addr.into(),
            conn_workers: 4,
            keep_alive_requests: 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 22,
            max_header_bytes: 8 << 10,
            max_headers: 64,
        }
    }
}

/// Reads a little-endian `u32` at `offset`, as a `usize` via `try_from`
/// (codec paths never truncate silently).
fn read_u32(body: &[u8], offset: usize) -> Result<usize, ScError> {
    let bytes = body.get(offset..offset + 4).ok_or_else(|| ScError::InvalidParam {
        name: "body",
        reason: format!("payload truncated: no u32 at byte {offset}"),
    })?;
    let mut w = [0u8; 4];
    w.copy_from_slice(bytes);
    usize::try_from(u32::from_le_bytes(w)).map_err(|_| ScError::InvalidParam {
        name: "body",
        reason: "u32 does not fit this platform's usize".into(),
    })
}

/// Encodes an inference request body: `u32 images`, `u32 values`, then
/// the patch scalars (little-endian `f32`s). The inverse of
/// [`decode_infer_request`]; the loadgen binary and the tests build their
/// payloads with this.
pub fn encode_infer_request(patches: &[f32], images: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + patches.len() * 4);
    out.extend_from_slice(&(images as u32).to_le_bytes());
    out.extend_from_slice(&(patches.len() as u32).to_le_bytes());
    for v in patches {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes and validates a `POST /v1/infer` body against the served
/// model's shape, returning the patch tensor and image count.
///
/// # Errors
///
/// [`ScError::InvalidParam`] for truncated payloads, value counts that
/// disagree with the length prefix, or shapes the model cannot serve.
pub fn decode_infer_request(body: &[u8], cfg: &VitConfig) -> Result<(Tensor, usize), ScError> {
    let images = read_u32(body, 0)?;
    let values = read_u32(body, 4)?;
    if images == 0 {
        return Err(ScError::InvalidParam {
            name: "body",
            reason: "request holds zero images".into(),
        });
    }
    let (p, pd) = (cfg.num_patches(), cfg.patch_dim());
    let want = images.checked_mul(p * pd).ok_or_else(|| ScError::InvalidParam {
        name: "body",
        reason: "image count overflows the payload size".into(),
    })?;
    if values != want {
        return Err(ScError::InvalidParam {
            name: "body",
            reason: format!(
                "length prefix says {values} values, but {images} images of [{p}, {pd}] \
                 patches need {want}"
            ),
        });
    }
    let data = body.get(8..).unwrap_or(&[]);
    if data.len() != values * 4 {
        return Err(ScError::InvalidParam {
            name: "body",
            reason: format!(
                "payload carries {} data bytes, expected {} for {values} f32 values",
                data.len(),
                values * 4
            ),
        });
    }
    let mut vals = Vec::with_capacity(values);
    for chunk in data.chunks_exact(4) {
        let mut w = [0u8; 4];
        w.copy_from_slice(chunk);
        vals.push(f32::from_le_bytes(w));
    }
    Ok((Tensor::from_vec(vals, &[images * p, pd]), images))
}

/// Encodes a `200` logits body: `u32 images`, `u32 classes`, then the
/// logit scalars row-major (little-endian `f32`s).
pub fn encode_logits(logits: &Tensor, images: usize, classes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + logits.data().len() * 4);
    out.extend_from_slice(&(images as u32).to_le_bytes());
    out.extend_from_slice(&(classes as u32).to_le_bytes());
    for v in logits.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a logits body back into `(images, classes, values)`.
///
/// # Errors
///
/// [`ScError::InvalidParam`] for truncated or inconsistent payloads.
pub fn decode_logits(body: &[u8]) -> Result<(usize, usize, Vec<f32>), ScError> {
    let images = read_u32(body, 0)?;
    let classes = read_u32(body, 4)?;
    let data = body.get(8..).unwrap_or(&[]);
    let want = images.checked_mul(classes).ok_or_else(|| ScError::InvalidParam {
        name: "body",
        reason: "logits shape overflows".into(),
    })?;
    if data.len() != want * 4 {
        return Err(ScError::InvalidParam {
            name: "body",
            reason: format!(
                "logits body carries {} data bytes, expected {} for [{images}, {classes}]",
                data.len(),
                want * 4
            ),
        });
    }
    let mut vals = Vec::with_capacity(want);
    for chunk in data.chunks_exact(4) {
        let mut w = [0u8; 4];
        w.copy_from_slice(chunk);
        vals.push(f32::from_le_bytes(w));
    }
    Ok((images, classes, vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VitConfig {
        VitConfig { image: 8, patch: 4, dim: 16, layers: 1, heads: 2, classes: 2, ..Default::default() }
    }

    #[test]
    fn infer_request_round_trips() {
        let c = cfg();
        let n = c.num_patches() * c.patch_dim() * 3;
        let patches: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let body = encode_infer_request(&patches, 3);
        let (tensor, images) = decode_infer_request(&body, &c).expect("decodes");
        assert_eq!(images, 3);
        assert_eq!(tensor.data(), &patches[..]);
    }

    #[test]
    fn infer_request_rejects_malformed_payloads() {
        let c = cfg();
        // Truncated header.
        assert!(decode_infer_request(&[1, 0, 0], &c).is_err());
        // Zero images.
        let body = encode_infer_request(&[], 0);
        assert!(decode_infer_request(&body, &c).is_err());
        // Length prefix disagrees with the model shape.
        let body = encode_infer_request(&[0.0; 7], 1);
        assert!(decode_infer_request(&body, &c).is_err());
        // Prefix right, data bytes short.
        let good = encode_infer_request(&vec![0.0; c.num_patches() * c.patch_dim()], 1);
        assert!(decode_infer_request(&good[..good.len() - 1], &c).is_err());
    }

    #[test]
    fn logits_round_trip_is_bit_exact() {
        let vals = vec![1.5f32, -0.0, f32::MIN_POSITIVE, 3.25e-20, 7.0, -2.5];
        let t = Tensor::from_vec(vals.clone(), &[3, 2]);
        let body = encode_logits(&t, 3, 2);
        let (images, classes, got) = decode_logits(&body).expect("decodes");
        assert_eq!((images, classes), (3, 2));
        for (a, b) in got.iter().zip(vals.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_logits(&body[..body.len() - 2]).is_err());
    }
}
