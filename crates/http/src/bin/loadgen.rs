//! `loadgen` — the self-hosted stress smoke for `ascend-http`.
//!
//! Boots an [`HttpServer`] in-process over a saved artifact, then hammers
//! it with keep-alive connections and verifies the serving contract under
//! overload:
//!
//! * every request is answered `200` or shed with `503 Retry-After` —
//!   nothing is dropped without a response and nothing hangs;
//! * every `200` body is byte-identical to the in-process serial forward
//!   of the same payload (the pool's bit-identity contract survives the
//!   wire);
//! * `/metrics` is live at the end of the run;
//! * graceful drain completes (shutdown + join returns).
//!
//! Exit status is non-zero when any of those fail, so CI can run this
//! directly as a gate:
//!
//! ```text
//! loadgen --engine target/smoke/engine.sceng \
//!         --requests 200 --connections 8 --workers 2 --queue-depth 2
//! ```

#![forbid(unsafe_code)]

use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ascend::serve::ServeReport;
use ascend::{BackendKind, Session};
use ascend_http::{client, HttpConfig, HttpServer};

struct Args {
    engine: String,
    /// Registry mode: `--artifact name=path` pairs (replaces `--engine`).
    artifacts: Vec<(String, String)>,
    /// Round-robin request targets in registry mode (default: every
    /// registered model, in registration order).
    models: Vec<String>,
    /// Registry memory budget: byte count, or `single` for
    /// "largest model only" (forces LRU eviction under round-robin).
    budget: Option<String>,
    backend: BackendKind,
    connections: usize,
    requests: usize,
    images: usize,
    workers: usize,
    queue_depth: usize,
    conn_workers: usize,
    trace: bool,
    bench_json: Option<String>,
}

const USAGE: &str = "\
loadgen — stress smoke for the ascend-http serving front-end

usage:
    loadgen --engine PATH [options]
    loadgen --artifact NAME=PATH [--artifact NAME=PATH ...] [options]

options:
    --engine PATH       engine or checkpoint artifact to serve (required
                        unless --artifact is given)
    --artifact N=P      registry mode: host model N from artifact P behind
                        POST /v1/models/N/infer (repeatable)
    --model NAME        registry mode: round-robin requests across these
                        models (repeatable; default: all registered models)
    --budget B          registry mode: memory budget in bytes, or `single`
                        to admit only the largest model at a time (forces
                        LRU eviction; the run fails if none happens)
    --backend sc|ref    inference backend (sc; ref needs a checkpoint)
    --requests N        total requests across all connections (200)
    --connections N     concurrent keep-alive client connections (8)
    --images N          images per request (1)
    --workers N         serving-pool worker threads (2)
    --queue-depth N     bounded admission queue depth (2; small forces shedding)
    --conn-workers N    server connection-handler threads (4)
    --trace             fetch /debug/trace after the storm and verify the
                        chrome://tracing export covers exactly the 200s
    --bench-json PATH   merge a \"loadgen\" record (images/s, latency and
                        queue-wait percentiles, shed counts) into the JSON
                        object at PATH (e.g. BENCH_serve.json)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        engine: String::new(),
        artifacts: Vec::new(),
        models: Vec::new(),
        budget: None,
        backend: BackendKind::Sc,
        connections: 8,
        requests: 200,
        images: 1,
        workers: 2,
        queue_depth: 2,
        conn_workers: 4,
        trace: false,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.into());
        }
        if flag == "--trace" {
            args.trace = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parse = |v: &str| v.parse::<usize>().map_err(|_| format!("bad number for {flag}: {v}"));
        match flag.as_str() {
            "--engine" => args.engine = value,
            "--artifact" => {
                let Some((name, path)) = value.split_once('=') else {
                    return Err(format!("--artifact expects NAME=PATH, got `{value}`"));
                };
                if name.is_empty() || path.is_empty() {
                    return Err(format!("--artifact expects NAME=PATH, got `{value}`"));
                }
                args.artifacts.push((name.to_string(), path.to_string()));
            }
            "--model" => args.models.push(value),
            "--budget" => args.budget = Some(value),
            "--backend" => {
                args.backend = match value.as_str() {
                    "sc" => BackendKind::Sc,
                    "ref" => BackendKind::Ref,
                    other => return Err(format!("unknown backend {other} (want sc|ref)")),
                }
            }
            "--requests" => args.requests = parse(&value)?,
            "--connections" => args.connections = parse(&value)?,
            "--images" => args.images = parse(&value)?,
            "--workers" => args.workers = parse(&value)?,
            "--queue-depth" => args.queue_depth = parse(&value)?,
            "--conn-workers" => args.conn_workers = parse(&value)?,
            "--bench-json" => args.bench_json = Some(value),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if args.artifacts.is_empty() {
        if args.engine.is_empty() {
            return Err(format!("--engine is required\n\n{USAGE}"));
        }
        if !args.models.is_empty() || args.budget.is_some() {
            return Err("--model and --budget only apply with --artifact".into());
        }
    } else if !args.engine.is_empty() {
        return Err("--engine and --artifact are mutually exclusive".into());
    }
    for model in &args.models {
        if !args.artifacts.iter().any(|(n, _)| n == model) {
            return Err(format!("--model {model} names no registered --artifact"));
        }
    }
    if args.requests == 0 || args.connections == 0 || args.images == 0 {
        return Err("--requests, --connections, and --images must be nonzero".into());
    }
    Ok(args)
}

/// One round-robin request target: the URL path plus the payload it
/// carries and the serial-forward bytes every 200 must equal.
struct Target {
    path: String,
    payload: Vec<u8>,
    expected: Vec<u8>,
}

/// Everything one client thread tallies.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    shed_without_retry_after: AtomicU64,
    unexpected_status: AtomicU64,
    body_mismatch: AtomicU64,
    io_failures: AtomicU64,
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if !args.artifacts.is_empty() {
        return run_registry(args);
    }

    // The served session: bounded queue so overload actually sheds.
    let session = Session::builder()
        .artifact(&args.engine)
        .backend(args.backend)
        .workers(args.workers)
        .queue_depth(args.queue_depth)
        .build()
        .map_err(|e| format!("session build failed: {e}"))?;
    let session = Arc::new(session);

    // The canonical payload every request carries, and — computed through
    // the plain serial forward, no pool — the bytes every 200 must equal.
    let vit = session.backend().vit_config();
    let values = args.images * vit.num_patches() * vit.patch_dim();
    let patches: Vec<f32> =
        (0..values).map(|i| (i % 17) as f32 * 0.0625 - 0.5).collect();
    let payload = ascend_http::encode_infer_request(&patches, args.images);
    let (tensor, images) = ascend_http::decode_infer_request(&payload, vit)
        .map_err(|e| format!("self-check: payload does not decode: {e}"))?;
    let serial = session
        .backend()
        .forward(&tensor, images)
        .map_err(|e| format!("serial reference forward failed: {e}"))?;
    let expected = ascend_http::encode_logits(&serial, images, vit.classes);
    let targets =
        Arc::new(vec![Target { path: "/v1/infer".into(), payload, expected }]);

    let mut cfg = HttpConfig::new("127.0.0.1:0");
    cfg.conn_workers = args.conn_workers;
    let server = HttpServer::bind(Arc::clone(&session), cfg)
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    eprintln!(
        "loadgen: serving {} on {addr} ({} pool workers, queue depth {})",
        session.backend().name(),
        args.workers,
        args.queue_depth,
    );

    let tally = Arc::new(Tally::default());
    let next = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::with_capacity(args.requests)));
    let started = Instant::now();

    let mut clients = Vec::with_capacity(args.connections);
    for _ in 0..args.connections {
        let tally = Arc::clone(&tally);
        let next = Arc::clone(&next);
        let targets = Arc::clone(&targets);
        let latencies = Arc::clone(&latencies);
        clients.push(std::thread::spawn(move || {
            client_loop(addr, args.requests, &next, &targets, &tally, &latencies);
        }));
    }
    for c in clients {
        let _ = c.join();
    }
    let wall = started.elapsed();

    // /metrics must be live after the storm.
    let metrics_text = fetch_text(addr, "/metrics")?;
    let trace_json = if args.trace { Some(fetch_text(addr, "/debug/trace")?) } else { None };

    // Graceful drain: this returning IS the assertion.
    server.shutdown_handle().shutdown();
    server.join();

    let ok = tally.ok.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let lat = {
        let mut guard = latencies.lock().map_err(|_| "latency lock poisoned".to_string())?;
        std::mem::take(&mut *guard)
    };
    let report = ServeReport::from_parts(lat, wall, ok as usize * args.images, args.workers);
    eprintln!(
        "loadgen: {} requests in {:.2}s — {ok} ok, {shed} shed (503), \
         p50 {:?}, p95 {:?}, {:.1} images/s",
        args.requests,
        wall.as_secs_f64(),
        report.latency_percentile(50.0),
        report.latency_percentile(95.0),
        report.throughput(),
    );
    eprintln!("loadgen: final /metrics:\n{metrics_text}");

    let mut failures = Vec::new();
    if ok + shed != args.requests as u64 {
        failures.push(format!(
            "{} of {} requests got neither 200 nor 503",
            args.requests as u64 - (ok + shed),
            args.requests
        ));
    }
    if ok == 0 {
        failures.push("no request succeeded at all".into());
    }
    for (count, what) in [
        (tally.unexpected_status.load(Ordering::Relaxed), "unexpected status"),
        (tally.body_mismatch.load(Ordering::Relaxed), "200 body != serial forward bytes"),
        (tally.shed_without_retry_after.load(Ordering::Relaxed), "503 without Retry-After"),
        (tally.io_failures.load(Ordering::Relaxed), "request dropped on i/o error"),
    ] {
        if count > 0 {
            failures.push(format!("{count} × {what}"));
        }
    }
    if !metrics_text.contains("ascend_http_responses_ok_total") {
        failures.push("/metrics response lacks counters".into());
    }
    if !metrics_text.contains("# TYPE ascend_request_queue_wait_seconds histogram") {
        failures.push("/metrics response lacks the queue-wait histogram".into());
    }
    if let Some(json) = &trace_json {
        check_trace(json, ok, &mut failures);
    }
    if let Some(path) = &args.bench_json {
        let obs = session
            .runner()
            .map_err(|e| format!("pool unavailable for bench record: {e}"))?
            .obs();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let record = ascend_obs::BenchRecord::new("loadgen")
            .num("images_per_s", report.throughput())
            .num("p50_ms", ms(report.latency_percentile(50.0)))
            .num("p95_ms", ms(report.latency_percentile(95.0)))
            .num("p99_ms", ms(report.latency_percentile(99.0)))
            .num("queue_wait_p50_ms", ms(obs.queue_wait().snapshot().percentile(50.0)))
            .num("queue_wait_p95_ms", ms(obs.queue_wait().snapshot().percentile(95.0)))
            .num("service_p50_ms", ms(obs.service().snapshot().percentile(50.0)))
            .num("service_p95_ms", ms(obs.service().snapshot().percentile(95.0)))
            .num("wall_s", wall.as_secs_f64())
            .int("ok", ok)
            .int("shed", shed)
            .int("requests", args.requests as u64)
            .int("connections", args.connections as u64)
            .int("workers", args.workers as u64)
            .int("images_per_request", args.images as u64)
            .text("backend", session.backend().name());
        record
            .write_merged(std::path::Path::new(path))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("loadgen: merged \"loadgen\" record into {path}");
    }
    if failures.is_empty() {
        eprintln!("loadgen: PASS");
        Ok(())
    } else {
        Err(format!("loadgen: FAIL\n  {}", failures.join("\n  ")))
    }
}

/// Registry mode: host every `--artifact` behind one listener, round-robin
/// the storm across `--model` targets, and — on top of the single-model
/// contract — verify the multi-model one:
///
/// * every model's 200 bodies are byte-identical to a serial forward of
///   that model, even while LRU eviction thrashes residency;
/// * with a `--budget` and ≥2 trafficked models, at least one eviction
///   actually happened (the budget was not silently ignored);
/// * `/metrics` carries the per-model registry gauges at the end.
fn run_registry(args: Args) -> Result<(), String> {
    use ascend_registry::{ModelRegistry, ModelSpec, RegistryConfig};

    let serve_cfg = ascend::serve::ServeConfig {
        workers: args.workers,
        micro_batch: 4,
        queue_depth: args.queue_depth,
    };

    // Per-model payloads and expected bodies from throwaway serial
    // sessions, computed before the server exists so the reference is
    // independent of everything under test. Also each model's resident
    // size, which `--budget single` needs.
    let mut per_model: Vec<(String, Vec<u8>, Vec<u8>)> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for (name, path) in &args.artifacts {
        let session = Session::builder()
            .artifact(path)
            .backend(args.backend)
            .build()
            .map_err(|e| format!("model `{name}`: serial session build failed: {e}"))?;
        let vit = session.backend().vit_config();
        let values = args.images * vit.num_patches() * vit.patch_dim();
        let patches: Vec<f32> =
            (0..values).map(|i| (i % 17) as f32 * 0.0625 - 0.5).collect();
        let payload = ascend_http::encode_infer_request(&patches, args.images);
        let (tensor, images) = ascend_http::decode_infer_request(&payload, vit)
            .map_err(|e| format!("model `{name}`: payload does not decode: {e}"))?;
        let serial = session
            .backend()
            .forward(&tensor, images)
            .map_err(|e| format!("model `{name}`: serial forward failed: {e}"))?;
        let expected = ascend_http::encode_logits(&serial, images, vit.classes);
        sizes.push(session.backend().resident_bytes());
        per_model.push((name.clone(), payload, expected));
    }

    let budget_bytes = match args.budget.as_deref() {
        None => 0,
        // `artifacts` is non-empty here (parse_args requires it), so the
        // max exists; an empty list would mean "unlimited", which is safe.
        Some("single") => sizes.iter().copied().max().unwrap_or(0),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--budget wants a byte count or `single`, got `{v}`"))?,
    };

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: budget_bytes,
        ..Default::default()
    }));
    for (name, path) in &args.artifacts {
        registry
            .register(ModelSpec::artifact(name.as_str(), path.as_str()).backend(args.backend).serve(serve_cfg))
            .map_err(|e| format!("registering `{name}`: {e}"))?;
    }

    let model_names: Vec<String> = if args.models.is_empty() {
        args.artifacts.iter().map(|(n, _)| n.clone()).collect()
    } else {
        args.models.clone()
    };
    let mut targets = Vec::with_capacity(model_names.len());
    for name in &model_names {
        let (_, payload, expected) = per_model
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| format!("--model {name} names no registered --artifact"))?;
        targets.push(Target {
            path: format!("/v1/models/{name}/infer"),
            payload: payload.clone(),
            expected: expected.clone(),
        });
    }
    let targets = Arc::new(targets);

    let mut cfg = HttpConfig::new("127.0.0.1:0");
    cfg.conn_workers = args.conn_workers;
    let server = HttpServer::bind_registry(Arc::clone(&registry), cfg)
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    eprintln!(
        "loadgen: registry of {} models on {addr} (round-robin over {:?}, budget {})",
        args.artifacts.len(),
        model_names,
        if budget_bytes == 0 { "unlimited".to_string() } else { format!("{budget_bytes} B") },
    );

    let tally = Arc::new(Tally::default());
    let next = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::with_capacity(args.requests)));
    let started = Instant::now();
    let mut clients = Vec::with_capacity(args.connections);
    for _ in 0..args.connections {
        let tally = Arc::clone(&tally);
        let next = Arc::clone(&next);
        let targets = Arc::clone(&targets);
        let latencies = Arc::clone(&latencies);
        clients.push(std::thread::spawn(move || {
            client_loop(addr, args.requests, &next, &targets, &tally, &latencies);
        }));
    }
    for c in clients {
        let _ = c.join();
    }
    let wall = started.elapsed();

    let metrics_text = fetch_text(addr, "/metrics")?;

    // Graceful drain: this returning IS the assertion.
    server.shutdown_handle().shutdown();
    server.join();

    let ok = tally.ok.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let evictions: u64 = args
        .artifacts
        .iter()
        .map(|(n, _)| registry.evictions_total(n).unwrap_or(0))
        .sum();
    let loads: u64 =
        args.artifacts.iter().map(|(n, _)| registry.loads_total(n).unwrap_or(0)).sum();
    let lat = {
        let mut guard = latencies.lock().map_err(|_| "latency lock poisoned".to_string())?;
        std::mem::take(&mut *guard)
    };
    let report = ServeReport::from_parts(lat, wall, ok as usize * args.images, args.workers);
    eprintln!(
        "loadgen: {} requests in {:.2}s — {ok} ok, {shed} shed (503), \
         {loads} model loads, {evictions} evictions, {:.1} images/s",
        args.requests,
        wall.as_secs_f64(),
        report.throughput(),
    );

    let mut failures = Vec::new();
    if ok + shed != args.requests as u64 {
        failures.push(format!(
            "{} of {} requests got neither 200 nor 503",
            args.requests as u64 - (ok + shed),
            args.requests
        ));
    }
    if ok == 0 {
        failures.push("no request succeeded at all".into());
    }
    for (count, what) in [
        (tally.unexpected_status.load(Ordering::Relaxed), "unexpected status"),
        (tally.body_mismatch.load(Ordering::Relaxed), "200 body != serial forward bytes"),
        (tally.shed_without_retry_after.load(Ordering::Relaxed), "503 without Retry-After"),
        (tally.io_failures.load(Ordering::Relaxed), "request dropped on i/o error"),
    ] {
        if count > 0 {
            failures.push(format!("{count} × {what}"));
        }
    }
    for (name, _) in &args.artifacts {
        if !metrics_text.contains(&format!("ascend_model_state{{model=\"{name}\"}}")) {
            failures.push(format!("/metrics lacks the state gauge for model `{name}`"));
        }
    }
    if !metrics_text.contains("ascend_registry_resident_bytes") {
        failures.push("/metrics lacks the registry residency gauge".into());
    }
    if budget_bytes > 0 && model_names.len() >= 2 && evictions == 0 {
        failures.push(format!(
            "budget {budget_bytes} B with {} round-robin models forced no eviction",
            model_names.len()
        ));
    }

    if let Some(path) = &args.bench_json {
        // Cold-load vs lazy shared-load on a throwaway registry: two
        // names over one artifact, so the second acquire hits the
        // weak-cache and shares the first's weights instead of reading
        // the file again.
        let artifact = &args.artifacts[0].1;
        let probe = ModelRegistry::new(RegistryConfig::default());
        for name in ["cold-probe", "shared-probe"] {
            probe
                .register(
                    ModelSpec::artifact(name, artifact.as_str())
                        .backend(args.backend)
                        .serve(serve_cfg),
                )
                .map_err(|e| format!("bench probe register failed: {e}"))?;
        }
        let t0 = Instant::now();
        probe.acquire("cold-probe").map_err(|e| format!("bench cold load failed: {e}"))?;
        let cold = t0.elapsed();
        let t1 = Instant::now();
        probe.acquire("shared-probe").map_err(|e| format!("bench shared load failed: {e}"))?;
        let shared = t1.elapsed();

        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let record = ascend_obs::BenchRecord::new("registry")
            .num("cold_load_ms", ms(cold))
            .num("shared_load_ms", ms(shared))
            .num("images_per_s", report.throughput())
            .num("p50_ms", ms(report.latency_percentile(50.0)))
            .num("p95_ms", ms(report.latency_percentile(95.0)))
            .num("wall_s", wall.as_secs_f64())
            .int("ok", ok)
            .int("shed", shed)
            .int("model_loads", loads)
            .int("evictions", evictions)
            .int("models", args.artifacts.len() as u64)
            .int("requests", args.requests as u64)
            .int("budget_bytes", budget_bytes as u64);
        record
            .write_merged(std::path::Path::new(path))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("loadgen: merged \"registry\" record into {path}");
    }

    if failures.is_empty() {
        eprintln!("loadgen: PASS");
        Ok(())
    } else {
        Err(format!("loadgen: FAIL\n  {}", failures.join("\n  ")))
    }
}

/// One client thread: keep a connection alive, claim request slots off
/// the shared counter (round-robin over `targets` by slot number), and
/// tally every outcome. Reconnects when the server closes the connection
/// (keep-alive cap, shed, or drain).
fn client_loop(
    addr: std::net::SocketAddr,
    total: usize,
    next: &AtomicUsize,
    targets: &[Target],
    tally: &Tally,
    latencies: &std::sync::Mutex<Vec<Duration>>,
) {
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    loop {
        let slot = next.fetch_add(1, Ordering::Relaxed);
        if slot >= total {
            break;
        }
        let target = &targets[slot % targets.len()];
        // Each claimed slot gets a few attempts so a connection the
        // server closed under us (keep-alive cap) is retried, but a
        // genuinely dead server cannot loop forever.
        let mut answered = false;
        for _attempt in 0..3 {
            if conn.is_none() {
                conn = connect(addr);
            }
            let Some((reader, writer)) = conn.as_mut() else {
                continue;
            };
            let sent = Instant::now();
            if client::write_request(writer, "POST", &target.path, &target.payload, false)
                .is_err()
            {
                conn = None;
                continue;
            }
            let response = match client::read_response(reader) {
                Ok(r) => r,
                Err(_) => {
                    conn = None;
                    continue;
                }
            };
            match response.status {
                200 => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    if response.body != target.expected {
                        tally.body_mismatch.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Ok(mut guard) = latencies.lock() {
                        guard.push(sent.elapsed());
                    }
                }
                503 => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    if response.header("retry-after").is_none() {
                        tally.shed_without_retry_after.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    tally.unexpected_status.fetch_add(1, Ordering::Relaxed);
                }
            }
            if response.wants_close() {
                conn = None;
            }
            answered = true;
            break;
        }
        if !answered {
            tally.io_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> Option<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok()?;
    let reader = BufReader::new(stream.try_clone().ok()?);
    Some((reader, stream))
}

fn fetch_text(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let (mut reader, mut writer) =
        connect(addr).ok_or_else(|| format!("could not connect for {path}"))?;
    client::write_request(&mut writer, "GET", path, &[], true)
        .map_err(|e| format!("{path} write failed: {e}"))?;
    let response =
        client::read_response(&mut reader).map_err(|e| format!("{path} read failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("{path} answered {}", response.status));
    }
    String::from_utf8(response.body).map_err(|_| format!("{path} body is not utf-8"))
}

/// Validates the `/debug/trace` chrome://tracing export against the run's
/// outcome: well-formed envelope, paired queue-wait/service spans, and —
/// because shed requests are never claimed by a worker — span counts that
/// match the number of 200s exactly (modulo the bounded ring).
fn check_trace(json: &str, ok: u64, failures: &mut Vec<String>) {
    if !json.starts_with("{\"traceEvents\":[") || !json.trim_end().ends_with('}') {
        failures.push("/debug/trace is not a chrome traceEvents object".into());
        return;
    }
    if !json.contains("\"displayTimeUnit\"") {
        failures.push("/debug/trace lacks displayTimeUnit".into());
    }
    let count = |needle: &str| json.matches(needle).count() as u64;
    let queue_spans = count("\"name\":\"queue_wait\"");
    let service_spans = count("\"name\":\"service\"");
    if queue_spans != service_spans {
        failures.push(format!(
            "trace has {queue_spans} queue_wait spans but {service_spans} service spans"
        ));
    }
    // The ring is bounded, so only expect exact coverage while it cannot
    // have wrapped; past that, it must still be non-empty.
    let ring = ascend::serve::TRACE_SPAN_CAPACITY as u64;
    if 2 * ok <= ring {
        if queue_spans != ok {
            failures.push(format!(
                "trace covers {queue_spans} requests but {ok} got a 200 \
                 (shed requests must leave no spans)"
            ));
        }
    } else if queue_spans == 0 && ok > 0 {
        failures.push("trace is empty despite served requests".into());
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
