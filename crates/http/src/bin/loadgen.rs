//! `loadgen` — the self-hosted stress smoke for `ascend-http`.
//!
//! Boots an [`HttpServer`] in-process over a saved artifact, then hammers
//! it with keep-alive connections and verifies the serving contract under
//! overload:
//!
//! * every request is answered `200` or shed with `503 Retry-After` —
//!   nothing is dropped without a response and nothing hangs;
//! * every `200` body is byte-identical to the in-process serial forward
//!   of the same payload (the pool's bit-identity contract survives the
//!   wire);
//! * `/metrics` is live at the end of the run;
//! * graceful drain completes (shutdown + join returns).
//!
//! Exit status is non-zero when any of those fail, so CI can run this
//! directly as a gate:
//!
//! ```text
//! loadgen --engine target/smoke/engine.sceng \
//!         --requests 200 --connections 8 --workers 2 --queue-depth 2
//! ```

#![forbid(unsafe_code)]

use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ascend::serve::ServeReport;
use ascend::{BackendKind, Session};
use ascend_http::{client, HttpConfig, HttpServer};

struct Args {
    engine: String,
    backend: BackendKind,
    connections: usize,
    requests: usize,
    images: usize,
    workers: usize,
    queue_depth: usize,
    conn_workers: usize,
    trace: bool,
    bench_json: Option<String>,
}

const USAGE: &str = "\
loadgen — stress smoke for the ascend-http serving front-end

usage:
    loadgen --engine PATH [options]

options:
    --engine PATH       engine or checkpoint artifact to serve (required)
    --backend sc|ref    inference backend (sc; ref needs a checkpoint)
    --requests N        total requests across all connections (200)
    --connections N     concurrent keep-alive client connections (8)
    --images N          images per request (1)
    --workers N         serving-pool worker threads (2)
    --queue-depth N     bounded admission queue depth (2; small forces shedding)
    --conn-workers N    server connection-handler threads (4)
    --trace             fetch /debug/trace after the storm and verify the
                        chrome://tracing export covers exactly the 200s
    --bench-json PATH   merge a \"loadgen\" record (images/s, latency and
                        queue-wait percentiles, shed counts) into the JSON
                        object at PATH (e.g. BENCH_serve.json)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        engine: String::new(),
        backend: BackendKind::Sc,
        connections: 8,
        requests: 200,
        images: 1,
        workers: 2,
        queue_depth: 2,
        conn_workers: 4,
        trace: false,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.into());
        }
        if flag == "--trace" {
            args.trace = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parse = |v: &str| v.parse::<usize>().map_err(|_| format!("bad number for {flag}: {v}"));
        match flag.as_str() {
            "--engine" => args.engine = value,
            "--backend" => {
                args.backend = match value.as_str() {
                    "sc" => BackendKind::Sc,
                    "ref" => BackendKind::Ref,
                    other => return Err(format!("unknown backend {other} (want sc|ref)")),
                }
            }
            "--requests" => args.requests = parse(&value)?,
            "--connections" => args.connections = parse(&value)?,
            "--images" => args.images = parse(&value)?,
            "--workers" => args.workers = parse(&value)?,
            "--queue-depth" => args.queue_depth = parse(&value)?,
            "--conn-workers" => args.conn_workers = parse(&value)?,
            "--bench-json" => args.bench_json = Some(value),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if args.engine.is_empty() {
        return Err(format!("--engine is required\n\n{USAGE}"));
    }
    if args.requests == 0 || args.connections == 0 || args.images == 0 {
        return Err("--requests, --connections, and --images must be nonzero".into());
    }
    Ok(args)
}

/// Everything one client thread tallies.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    shed_without_retry_after: AtomicU64,
    unexpected_status: AtomicU64,
    body_mismatch: AtomicU64,
    io_failures: AtomicU64,
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // The served session: bounded queue so overload actually sheds.
    let session = Session::builder()
        .artifact(&args.engine)
        .backend(args.backend)
        .workers(args.workers)
        .queue_depth(args.queue_depth)
        .build()
        .map_err(|e| format!("session build failed: {e}"))?;
    let session = Arc::new(session);

    // The canonical payload every request carries, and — computed through
    // the plain serial forward, no pool — the bytes every 200 must equal.
    let vit = session.backend().vit_config();
    let values = args.images * vit.num_patches() * vit.patch_dim();
    let patches: Vec<f32> =
        (0..values).map(|i| (i % 17) as f32 * 0.0625 - 0.5).collect();
    let payload = Arc::new(ascend_http::encode_infer_request(&patches, args.images));
    let (tensor, images) = ascend_http::decode_infer_request(&payload, vit)
        .map_err(|e| format!("self-check: payload does not decode: {e}"))?;
    let serial = session
        .backend()
        .forward(&tensor, images)
        .map_err(|e| format!("serial reference forward failed: {e}"))?;
    let expected = Arc::new(ascend_http::encode_logits(&serial, images, vit.classes));

    let mut cfg = HttpConfig::new("127.0.0.1:0");
    cfg.conn_workers = args.conn_workers;
    let server = HttpServer::bind(Arc::clone(&session), cfg)
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    eprintln!(
        "loadgen: serving {} on {addr} ({} pool workers, queue depth {})",
        session.backend().name(),
        args.workers,
        args.queue_depth,
    );

    let tally = Arc::new(Tally::default());
    let next = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::with_capacity(args.requests)));
    let started = Instant::now();

    let mut clients = Vec::with_capacity(args.connections);
    for _ in 0..args.connections {
        let tally = Arc::clone(&tally);
        let next = Arc::clone(&next);
        let payload = Arc::clone(&payload);
        let expected = Arc::clone(&expected);
        let latencies = Arc::clone(&latencies);
        clients.push(std::thread::spawn(move || {
            client_loop(addr, args.requests, &next, &payload, &expected, &tally, &latencies);
        }));
    }
    for c in clients {
        let _ = c.join();
    }
    let wall = started.elapsed();

    // /metrics must be live after the storm.
    let metrics_text = fetch_text(addr, "/metrics")?;
    let trace_json = if args.trace { Some(fetch_text(addr, "/debug/trace")?) } else { None };

    // Graceful drain: this returning IS the assertion.
    server.shutdown_handle().shutdown();
    server.join();

    let ok = tally.ok.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let lat = {
        let mut guard = latencies.lock().map_err(|_| "latency lock poisoned".to_string())?;
        std::mem::take(&mut *guard)
    };
    let report = ServeReport::from_parts(lat, wall, ok as usize * args.images, args.workers);
    eprintln!(
        "loadgen: {} requests in {:.2}s — {ok} ok, {shed} shed (503), \
         p50 {:?}, p95 {:?}, {:.1} images/s",
        args.requests,
        wall.as_secs_f64(),
        report.latency_percentile(50.0),
        report.latency_percentile(95.0),
        report.throughput(),
    );
    eprintln!("loadgen: final /metrics:\n{metrics_text}");

    let mut failures = Vec::new();
    if ok + shed != args.requests as u64 {
        failures.push(format!(
            "{} of {} requests got neither 200 nor 503",
            args.requests as u64 - (ok + shed),
            args.requests
        ));
    }
    if ok == 0 {
        failures.push("no request succeeded at all".into());
    }
    for (count, what) in [
        (tally.unexpected_status.load(Ordering::Relaxed), "unexpected status"),
        (tally.body_mismatch.load(Ordering::Relaxed), "200 body != serial forward bytes"),
        (tally.shed_without_retry_after.load(Ordering::Relaxed), "503 without Retry-After"),
        (tally.io_failures.load(Ordering::Relaxed), "request dropped on i/o error"),
    ] {
        if count > 0 {
            failures.push(format!("{count} × {what}"));
        }
    }
    if !metrics_text.contains("ascend_http_responses_ok_total") {
        failures.push("/metrics response lacks counters".into());
    }
    if !metrics_text.contains("# TYPE ascend_request_queue_wait_seconds histogram") {
        failures.push("/metrics response lacks the queue-wait histogram".into());
    }
    if let Some(json) = &trace_json {
        check_trace(json, ok, &mut failures);
    }
    if let Some(path) = &args.bench_json {
        let obs = session
            .runner()
            .map_err(|e| format!("pool unavailable for bench record: {e}"))?
            .obs();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let record = ascend_obs::BenchRecord::new("loadgen")
            .num("images_per_s", report.throughput())
            .num("p50_ms", ms(report.latency_percentile(50.0)))
            .num("p95_ms", ms(report.latency_percentile(95.0)))
            .num("p99_ms", ms(report.latency_percentile(99.0)))
            .num("queue_wait_p50_ms", ms(obs.queue_wait().snapshot().percentile(50.0)))
            .num("queue_wait_p95_ms", ms(obs.queue_wait().snapshot().percentile(95.0)))
            .num("service_p50_ms", ms(obs.service().snapshot().percentile(50.0)))
            .num("service_p95_ms", ms(obs.service().snapshot().percentile(95.0)))
            .num("wall_s", wall.as_secs_f64())
            .int("ok", ok)
            .int("shed", shed)
            .int("requests", args.requests as u64)
            .int("connections", args.connections as u64)
            .int("workers", args.workers as u64)
            .int("images_per_request", args.images as u64)
            .text("backend", session.backend().name());
        record
            .write_merged(std::path::Path::new(path))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("loadgen: merged \"loadgen\" record into {path}");
    }
    if failures.is_empty() {
        eprintln!("loadgen: PASS");
        Ok(())
    } else {
        Err(format!("loadgen: FAIL\n  {}", failures.join("\n  ")))
    }
}

/// One client thread: keep a connection alive, claim request slots off
/// the shared counter, and tally every outcome. Reconnects when the
/// server closes the connection (keep-alive cap, shed, or drain).
fn client_loop(
    addr: std::net::SocketAddr,
    total: usize,
    next: &AtomicUsize,
    payload: &[u8],
    expected: &[u8],
    tally: &Tally,
    latencies: &std::sync::Mutex<Vec<Duration>>,
) {
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    while next.fetch_add(1, Ordering::Relaxed) < total {
        // Each claimed slot gets a few attempts so a connection the
        // server closed under us (keep-alive cap) is retried, but a
        // genuinely dead server cannot loop forever.
        let mut answered = false;
        for _attempt in 0..3 {
            if conn.is_none() {
                conn = connect(addr);
            }
            let Some((reader, writer)) = conn.as_mut() else {
                continue;
            };
            let sent = Instant::now();
            if client::write_request(writer, "POST", "/v1/infer", payload, false).is_err() {
                conn = None;
                continue;
            }
            let response = match client::read_response(reader) {
                Ok(r) => r,
                Err(_) => {
                    conn = None;
                    continue;
                }
            };
            match response.status {
                200 => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    if response.body != expected {
                        tally.body_mismatch.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Ok(mut guard) = latencies.lock() {
                        guard.push(sent.elapsed());
                    }
                }
                503 => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    if response.header("retry-after").is_none() {
                        tally.shed_without_retry_after.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    tally.unexpected_status.fetch_add(1, Ordering::Relaxed);
                }
            }
            if response.wants_close() {
                conn = None;
            }
            answered = true;
            break;
        }
        if !answered {
            tally.io_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> Option<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok()?;
    let reader = BufReader::new(stream.try_clone().ok()?);
    Some((reader, stream))
}

fn fetch_text(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let (mut reader, mut writer) =
        connect(addr).ok_or_else(|| format!("could not connect for {path}"))?;
    client::write_request(&mut writer, "GET", path, &[], true)
        .map_err(|e| format!("{path} write failed: {e}"))?;
    let response =
        client::read_response(&mut reader).map_err(|e| format!("{path} read failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("{path} answered {}", response.status));
    }
    String::from_utf8(response.body).map_err(|_| format!("{path} body is not utf-8"))
}

/// Validates the `/debug/trace` chrome://tracing export against the run's
/// outcome: well-formed envelope, paired queue-wait/service spans, and —
/// because shed requests are never claimed by a worker — span counts that
/// match the number of 200s exactly (modulo the bounded ring).
fn check_trace(json: &str, ok: u64, failures: &mut Vec<String>) {
    if !json.starts_with("{\"traceEvents\":[") || !json.trim_end().ends_with('}') {
        failures.push("/debug/trace is not a chrome traceEvents object".into());
        return;
    }
    if !json.contains("\"displayTimeUnit\"") {
        failures.push("/debug/trace lacks displayTimeUnit".into());
    }
    let count = |needle: &str| json.matches(needle).count() as u64;
    let queue_spans = count("\"name\":\"queue_wait\"");
    let service_spans = count("\"name\":\"service\"");
    if queue_spans != service_spans {
        failures.push(format!(
            "trace has {queue_spans} queue_wait spans but {service_spans} service spans"
        ));
    }
    // The ring is bounded, so only expect exact coverage while it cannot
    // have wrapped; past that, it must still be non-empty.
    let ring = ascend::serve::TRACE_SPAN_CAPACITY as u64;
    if 2 * ok <= ring {
        if queue_spans != ok {
            failures.push(format!(
                "trace covers {queue_spans} requests but {ok} got a 200 \
                 (shed requests must leave no spans)"
            ));
        }
    } else if queue_spans == 0 && ok > 0 {
        failures.push("trace is empty despite served requests".into());
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
