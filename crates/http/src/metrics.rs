//! Server-side counters and the `/metrics` exporter.
//!
//! Counters are relaxed atomics (they are gauges for operators, not
//! synchronization); latencies keep a bounded sliding window so the
//! percentile cost and memory stay flat no matter how long the server
//! runs. Rendering reuses [`ServeReport`]'s nearest-rank percentile and
//! throughput machinery so the HTTP numbers mean exactly what the
//! in-process serving report means.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ascend::serve::ServeReport;

/// How many recent request latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Live counters of one [`crate::HttpServer`].
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests that produced a `200`.
    pub ok: AtomicU64,
    /// Requests shed with `503` (queue full or pool gone).
    pub shed: AtomicU64,
    /// Requests answered with a `4xx`.
    pub client_error: AtomicU64,
    /// Requests answered with a `5xx` other than shedding.
    pub server_error: AtomicU64,
    /// Connections accepted onto a handler thread.
    pub connections: AtomicU64,
    /// Connections refused with `503` because the hand-off backlog was
    /// full (every handler busy).
    pub conn_shed: AtomicU64,
    /// Images served across all `200` responses.
    pub images: AtomicU64,
    latencies: Mutex<VecDeque<Duration>>,
    started: Instant,
}

impl ServerMetrics {
    /// Fresh, zeroed metrics; the clock for throughput starts now.
    pub fn new() -> Self {
        ServerMetrics {
            ok: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            client_error: AtomicU64::new(0),
            server_error: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            conn_shed: AtomicU64::new(0),
            images: AtomicU64::new(0),
            latencies: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
            started: Instant::now(),
        }
    }

    /// Records one served request: its service latency and image count.
    pub fn record_served(&self, latency: Duration, images: usize) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        self.images.fetch_add(images as u64, Ordering::Relaxed);
        let mut window = match self.latencies.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency);
    }

    /// Tallies a non-`200` response under the right counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            503 => &self.shed,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A [`ServeReport`] over the latency window — the same percentile
    /// semantics the in-process serving path reports.
    pub fn report(&self, workers: usize) -> ServeReport {
        let window = match self.latencies.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let latencies: Vec<Duration> = window.iter().copied().collect();
        drop(window);
        let images = usize::try_from(self.images.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
        ServeReport::from_parts(latencies, self.started.elapsed(), images, workers)
    }

    /// Renders the Prometheus-style text exposition for `GET /metrics`.
    ///
    /// `queued`/`queue_capacity`/`in_flight` come from the pool's live
    /// gauges; `workers` is the pool size.
    pub fn render(
        &self,
        queued: usize,
        queue_capacity: usize,
        in_flight: usize,
        workers: usize,
    ) -> String {
        let report = self.report(workers);
        let q = |p: f64| report.latency_percentile(p).as_secs_f64();
        let throughput = report.throughput();
        format!(
            "ascend_http_responses_ok_total {}\n\
             ascend_http_shed_total {}\n\
             ascend_http_client_error_total {}\n\
             ascend_http_server_error_total {}\n\
             ascend_http_connections_total {}\n\
             ascend_http_connections_shed_total {}\n\
             ascend_images_total {}\n\
             ascend_queue_depth {queued}\n\
             ascend_queue_capacity {queue_capacity}\n\
             ascend_in_flight {in_flight}\n\
             ascend_workers {workers}\n\
             ascend_latency_seconds{{quantile=\"0.5\"}} {:.6}\n\
             ascend_latency_seconds{{quantile=\"0.95\"}} {:.6}\n\
             ascend_latency_seconds{{quantile=\"1.0\"}} {:.6}\n\
             ascend_throughput_images_per_second {:.3}\n",
            self.ok.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.client_error.load(Ordering::Relaxed),
            self.server_error.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.conn_shed.load(Ordering::Relaxed),
            self.images.load(Ordering::Relaxed),
            q(50.0),
            q(95.0),
            q(100.0),
            if throughput.is_finite() { throughput } else { 0.0 },
        )
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counters_gauges_and_percentiles() {
        let m = ServerMetrics::new();
        m.record_served(Duration::from_millis(10), 2);
        m.record_served(Duration::from_millis(30), 1);
        m.record_status(503);
        m.record_status(400);
        m.record_status(500);
        let text = m.render(3, 8, 1, 4);
        assert!(text.contains("ascend_http_responses_ok_total 2\n"), "{text}");
        assert!(text.contains("ascend_http_shed_total 1\n"), "{text}");
        assert!(text.contains("ascend_http_client_error_total 1\n"), "{text}");
        assert!(text.contains("ascend_http_server_error_total 1\n"), "{text}");
        assert!(text.contains("ascend_images_total 3\n"), "{text}");
        assert!(text.contains("ascend_queue_depth 3\n"), "{text}");
        assert!(text.contains("ascend_queue_capacity 8\n"), "{text}");
        assert!(text.contains("ascend_in_flight 1\n"), "{text}");
        assert!(text.contains("ascend_workers 4\n"), "{text}");
        assert!(text.contains("quantile=\"0.95\"} 0.030000\n"), "{text}");
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServerMetrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_served(Duration::from_micros(i as u64), 1);
        }
        let report = m.report(1);
        assert_eq!(report.latencies().len(), LATENCY_WINDOW);
        // The window slid: the smallest retained latency is the 100th.
        assert_eq!(report.latency_percentile(0.0), Duration::from_micros(100));
    }

    #[test]
    fn empty_metrics_render_without_panicking() {
        let text = ServerMetrics::new().render(0, 0, 0, 1);
        assert!(text.contains("ascend_http_responses_ok_total 0\n"));
        assert!(text.contains("ascend_throughput_images_per_second 0.000\n"));
    }
}
