//! Server-side counters and the `/metrics` exporter, backed by the
//! [`ascend_obs`] registry.
//!
//! Every update path is a single relaxed atomic operation on an
//! [`ascend_obs`] primitive — no locks, no allocation — so connection
//! threads can record at any rate. The old bounded `Mutex<VecDeque>`
//! latency window is gone: request latency lives in a fixed-bucket log2
//! [`Histogram`], which renders in Prometheus exposition format and keeps
//! percentile cost and memory flat no matter how long the server runs.
//! The serving pool's own histograms (queue wait vs service time) are
//! appended by the route handler from [`ascend::serve::PoolObs`], so one
//! scrape sees the whole request path.

use std::sync::Arc;
use std::time::Instant;

use ascend::serve::JobTiming;
use ascend_obs::{Counter, Gauge, HistSnapshot, Histogram, Registry};

/// Live counters of one [`crate::HttpServer`].
pub struct ServerMetrics {
    registry: Registry,
    /// Requests that produced a `200`.
    pub ok: Arc<Counter>,
    /// Requests shed with `503` (queue full or pool gone).
    pub shed: Arc<Counter>,
    /// Requests answered with a `4xx`.
    pub client_error: Arc<Counter>,
    /// Requests answered with a `5xx` other than shedding.
    pub server_error: Arc<Counter>,
    /// Connections accepted onto a handler thread.
    pub connections: Arc<Counter>,
    /// Connections refused with `503` because the hand-off backlog was
    /// full (every handler busy).
    pub conn_shed: Arc<Counter>,
    /// Images served across all `200` responses.
    pub images: Arc<Counter>,
    /// End-to-end request latency (queue wait + service) per `200`.
    request_seconds: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    queue_capacity: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    workers: Arc<Gauge>,
    started: Instant,
}

impl ServerMetrics {
    /// Fresh, zeroed metrics; the clock for throughput starts now.
    pub fn new() -> Self {
        let registry = Registry::new();
        let ok = registry.counter("ascend_http_responses_ok_total", "Requests answered 200.");
        let shed = registry
            .counter("ascend_http_shed_total", "Requests shed with 503 (queue full or pool gone).");
        let client_error =
            registry.counter("ascend_http_client_error_total", "Requests answered 4xx.");
        let server_error = registry
            .counter("ascend_http_server_error_total", "Requests answered 5xx other than shed.");
        let connections =
            registry.counter("ascend_http_connections_total", "Connections accepted.");
        let conn_shed = registry.counter(
            "ascend_http_connections_shed_total",
            "Connections refused 503: hand-off backlog full.",
        );
        let images =
            registry.counter("ascend_images_total", "Images served across all 200 responses.");
        let request_seconds = registry.histogram(
            "ascend_http_request_seconds",
            "End-to-end request latency (queue wait + service) per 200.",
        );
        let queue_depth =
            registry.gauge("ascend_queue_depth", "Admission queue depth at scrape time.");
        let queue_capacity =
            registry.gauge("ascend_queue_capacity", "Admission queue capacity (0 = unbounded).");
        let in_flight = registry.gauge("ascend_in_flight", "Jobs being computed at scrape time.");
        let workers = registry.gauge("ascend_workers", "Serving pool worker threads.");
        ServerMetrics {
            registry,
            ok,
            shed,
            client_error,
            server_error,
            connections,
            conn_shed,
            images,
            request_seconds,
            queue_depth,
            queue_capacity,
            in_flight,
            workers,
            // ascend-lint: allow(no-wallclock-in-forward) -- serve-layer uptime anchor for the throughput gauge; never reaches the logits
            started: Instant::now(),
        }
    }

    /// Records one served request: its queue-wait/service split and image
    /// count. The exported latency histogram observes the end-to-end total;
    /// the split itself is exported by the pool's own histograms.
    pub fn record_served(&self, timing: JobTiming, images: usize) {
        self.ok.inc();
        self.images.add(images as u64);
        self.request_seconds.observe(timing.total());
    }

    /// Tallies a non-`200` response under the right counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            503 => &self.shed,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        counter.inc();
    }

    /// Snapshot of the end-to-end request-latency histogram.
    pub fn latency_snapshot(&self) -> HistSnapshot {
        self.request_seconds.snapshot()
    }

    /// Images served per second of server uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.images.get() as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders the Prometheus-style text exposition for `GET /metrics`.
    ///
    /// `queued`/`queue_capacity`/`in_flight` come from the pool's live
    /// gauges; `workers` is the pool size. The caller appends the pool's
    /// own registry (queue-wait/service histograms) for the full picture.
    pub fn render(
        &self,
        queued: usize,
        queue_capacity: usize,
        in_flight: usize,
        workers: usize,
    ) -> String {
        self.queue_depth.set(queued as u64);
        self.queue_capacity.set(queue_capacity as u64);
        self.in_flight.set(in_flight as u64);
        self.workers.set(workers as u64);
        let mut out = self.registry.render();
        out.push_str(&format!(
            "# HELP ascend_throughput_images_per_second Images per second of uptime.\n\
             # TYPE ascend_throughput_images_per_second gauge\n\
             ascend_throughput_images_per_second {:.3}\n",
            self.throughput()
        ));
        out
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn timing(ms: u64) -> JobTiming {
        JobTiming { queue_wait: Duration::ZERO, service: Duration::from_millis(ms) }
    }

    #[test]
    fn render_reports_counters_gauges_and_the_latency_histogram() {
        let m = ServerMetrics::new();
        m.record_served(timing(10), 2);
        m.record_served(timing(30), 1);
        m.record_status(503);
        m.record_status(400);
        m.record_status(500);
        let text = m.render(3, 8, 1, 4);
        assert!(text.contains("ascend_http_responses_ok_total 2\n"), "{text}");
        assert!(text.contains("ascend_http_shed_total 1\n"), "{text}");
        assert!(text.contains("ascend_http_client_error_total 1\n"), "{text}");
        assert!(text.contains("ascend_http_server_error_total 1\n"), "{text}");
        assert!(text.contains("ascend_images_total 3\n"), "{text}");
        assert!(text.contains("ascend_queue_depth 3\n"), "{text}");
        assert!(text.contains("ascend_queue_capacity 8\n"), "{text}");
        assert!(text.contains("ascend_in_flight 1\n"), "{text}");
        assert!(text.contains("ascend_workers 4\n"), "{text}");
        assert!(text.contains("# TYPE ascend_http_request_seconds histogram"), "{text}");
        assert!(text.contains("ascend_http_request_seconds_count 2\n"), "{text}");
        assert!(text.contains("ascend_throughput_images_per_second"), "{text}");
    }

    #[test]
    fn latency_histogram_observes_the_end_to_end_total() {
        let m = ServerMetrics::new();
        m.record_served(
            JobTiming {
                queue_wait: Duration::from_millis(6),
                service: Duration::from_millis(10),
            },
            1,
        );
        let snap = m.latency_snapshot();
        assert_eq!(snap.count(), 1);
        // 16 ms total lands in the 2^24 ns bucket, not the 2^23 service one.
        assert_eq!(snap.sum_ns, 16_000_000);
        let (lo, hi) = snap.percentile_bounds_ns(50.0);
        assert!(lo <= 16_000_000 && 16_000_000 <= hi, "[{lo}, {hi}]");
    }

    #[test]
    fn memory_stays_flat_no_matter_how_many_requests() {
        // The histogram replaces the old sliding window: recording far more
        // requests than the old window held still renders fine and counts
        // every one of them.
        let m = ServerMetrics::new();
        for i in 0..10_000u64 {
            m.record_served(
                JobTiming {
                    queue_wait: Duration::ZERO,
                    service: Duration::from_micros(i),
                },
                1,
            );
        }
        assert_eq!(m.latency_snapshot().count(), 10_000);
        assert!(m.render(0, 0, 0, 1).contains("ascend_http_responses_ok_total 10000\n"));
    }

    #[test]
    fn empty_metrics_render_without_panicking() {
        let text = ServerMetrics::new().render(0, 0, 0, 1);
        assert!(text.contains("ascend_http_responses_ok_total 0\n"));
        assert!(text.contains("ascend_throughput_images_per_second 0.000\n"));
    }
}
