//! A minimal blocking HTTP/1.1 client — just enough for the `loadgen`
//! stress binary and the integration tests to talk to [`crate::HttpServer`]
//! without duplicating request/response plumbing. Not a general client:
//! it only understands `Content-Length` bodies, which is all the server
//! emits.

use std::io::{self, BufRead, Write};

/// One parsed response from the server.
#[derive(Debug)]
pub struct ClientResponse {
    /// The numeric status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with this (case-insensitive) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the server announced it will close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Writes one HTTP/1.1 request with a `Content-Length` body (empty body
/// is fine) and flushes.
///
/// # Errors
///
/// Propagates the underlying socket write error.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write!(
        w,
        "{method} {target} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    if close {
        w.write_all(b"connection: close\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

fn protocol_error(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads and parses one response off the wire.
///
/// # Errors
///
/// Socket errors pass through; malformed response framing becomes
/// [`io::ErrorKind::InvalidData`].
pub fn read_response(r: &mut impl BufRead) -> io::Result<ClientResponse> {
    let status_line = read_line(r)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" {
        return Err(protocol_error(format!("bad status line `{status_line}`")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| protocol_error(format!("bad status in `{status_line}`")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| protocol_error(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| protocol_error("response lacks a valid content-length"))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(ClientResponse { status, headers, body })
}
