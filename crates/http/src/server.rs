//! The listener, connection-thread pool, router, and graceful drain.
//!
//! Threading model: one accept thread polls a non-blocking listener and
//! hands accepted sockets to a small bounded channel; `conn_workers`
//! handler threads each own one connection at a time and run its
//! keep-alive loop. Inference admission inside a handler is strictly
//! non-blocking ([`ServePool::try_submit`]): a full work queue answers
//! `503 Retry-After` immediately, so a traffic burst can never wedge the
//! socket threads behind a blocking submit — the bugfix this crate is
//! built around. When every handler is busy and the hand-off backlog is
//! full, whole connections are shed with `503` the same way.
//!
//! Shutdown is graceful: [`ShutdownHandle::shutdown`] stops the accept
//! loop, handler threads finish the request they are serving (responses
//! for admitted work are always written), remaining backlogged
//! connections get one final exchange with `Connection: close`, and
//! [`HttpServer::join`] joins every thread.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ascend::serve::{JobTiming, ServeRequest};
use ascend::Session;
use ascend_obs::TraceId;
use ascend_registry::{ModelRegistry, ModelState};
use sc_core::ScError;

use crate::http1::{self, Limits, ParseError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::HttpConfig;

/// How often the accept loop re-checks the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A clonable remote control for stopping the server from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: the listener stops accepting, in-flight
    /// requests finish, and [`HttpServer::join`] returns once every
    /// thread has exited. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// What the server fronts: one session (`POST /v1/infer`) or a
/// multi-model registry (`POST /v1/models/{name}/infer`).
enum ServeTarget {
    Single(Arc<Session>),
    Registry(Arc<ModelRegistry>),
}

/// The running HTTP front-end; see the [module docs](self).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    target: Arc<ServeTarget>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds the listener, spawns the serving pool (eagerly, so a broken
    /// session fails here and not on the first request), the accept
    /// thread, and `cfg.conn_workers` connection-handler threads.
    ///
    /// # Errors
    ///
    /// [`ScError::Io`] if the address cannot be bound or a thread cannot
    /// be spawned; [`ScError::InvalidParam`] for a zero
    /// `conn_workers`/`keep_alive_requests` or a malformed session
    /// serving configuration.
    pub fn bind(session: Arc<Session>, cfg: HttpConfig) -> Result<HttpServer, ScError> {
        // Spawn the pool now: the first request must never pay (or trip
        // over) lazy pool construction.
        session.runner()?;
        Self::bind_target(Arc::new(ServeTarget::Single(session)), cfg)
    }

    /// Binds a **multi-model** front-end over a registry. Nothing is
    /// loaded at bind time: each model warms lazily on its first
    /// `POST /v1/models/{name}/infer` (and `GET /healthz` answers `503`
    /// until at least one model is warm).
    ///
    /// # Errors
    ///
    /// Same conditions as [`HttpServer::bind`], minus the pool spawn
    /// (pools belong to the registry's warm models).
    pub fn bind_registry(
        registry: Arc<ModelRegistry>,
        cfg: HttpConfig,
    ) -> Result<HttpServer, ScError> {
        Self::bind_target(Arc::new(ServeTarget::Registry(registry)), cfg)
    }

    fn bind_target(target: Arc<ServeTarget>, cfg: HttpConfig) -> Result<HttpServer, ScError> {
        if cfg.conn_workers == 0 {
            return Err(ScError::InvalidParam {
                name: "conn_workers",
                reason: "the server needs at least one connection-handler thread".into(),
            });
        }
        if cfg.keep_alive_requests == 0 {
            return Err(ScError::InvalidParam {
                name: "keep_alive_requests",
                reason: "a connection must be allowed at least one request".into(),
            });
        }
        let sock_err = |addr: &str, e: std::io::Error| ScError::Io {
            path: addr.to_string(),
            reason: e.to_string(),
            not_found: false,
        };
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| sock_err(&cfg.addr, e))?;
        let addr = listener.local_addr().map_err(|e| sock_err(&cfg.addr, e))?;
        listener.set_nonblocking(true).map_err(|e| sock_err(&cfg.addr, e))?;

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let cfg = Arc::new(cfg);
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.conn_workers);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let spawn_err = |name: &str, e: std::io::Error| ScError::Io {
            path: format!("thread {name}"),
            reason: e.to_string(),
            not_found: false,
        };
        let mut workers = Vec::with_capacity(cfg.conn_workers);
        for i in 0..cfg.conn_workers {
            let rx = Arc::clone(&conn_rx);
            let target = Arc::clone(&target);
            let metrics = Arc::clone(&metrics);
            let cfg = Arc::clone(&cfg);
            let stop = Arc::clone(&stop);
            let name = format!("ascend-http-{i}");
            workers.push(
                std::thread::Builder::new()
                    .name(name.clone())
                    .spawn(move || conn_worker(&rx, &target, &metrics, &cfg, &stop))
                    .map_err(|e| spawn_err(&name, e))?,
            );
        }
        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let write_timeout = cfg.write_timeout;
            std::thread::Builder::new()
                .name("ascend-http-accept".into())
                .spawn(move || accept_loop(&listener, &conn_tx, &stop, &metrics, write_timeout))
                .map_err(|e| spawn_err("ascend-http-accept", e))?
        };
        Ok(HttpServer { addr, stop, metrics, target, accept: Some(accept), workers })
    }

    /// The address the listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The session this server fronts (`None` in registry mode).
    pub fn session(&self) -> Option<&Arc<Session>> {
        match &*self.target {
            ServeTarget::Single(session) => Some(session),
            ServeTarget::Registry(_) => None,
        }
    }

    /// The model registry this server fronts (`None` in single-session
    /// mode).
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        match &*self.target {
            ServeTarget::Single(_) => None,
            ServeTarget::Registry(registry) => Some(registry),
        }
    }

    /// A clonable handle that can stop the server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { stop: Arc::clone(&self.stop) }
    }

    /// Graceful drain: stop accepting, let handlers finish their
    /// in-flight work, and join every thread. Also triggered by `Drop`;
    /// calling it explicitly just makes shutdown visible at the call
    /// site.
    pub fn join(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Polls the non-blocking listener, handing sockets to the worker
/// channel; a full channel means every handler is busy and the backlog
/// is taken, so the connection is shed with a `503` instead of queueing
/// without bound. Exits when the stop flag is set, dropping the sender
/// so workers drain the backlog and exit too.
fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
    write_timeout: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => match conn_tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    metrics.conn_shed.inc();
                    shed_connection(stream, write_timeout);
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if http1::is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
            // Transient accept failures (e.g. per-connection resource
            // limits) must not kill the listener.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Best-effort `503` on a connection there is no handler capacity for.
fn shed_connection(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let response = Response::text(503, "server at connection capacity; retry later")
        .with_header("retry-after", "1");
    let _ = response.write_to(&mut stream, true);
}

/// A connection-handler thread: pull sockets until the channel closes.
fn conn_worker(
    rx: &Mutex<Receiver<TcpStream>>,
    target: &ServeTarget,
    metrics: &ServerMetrics,
    cfg: &HttpConfig,
    stop: &AtomicBool,
) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // ascend-lint: allow(no-blocking-under-lock) -- the handler pull point: the receiver mutex only serializes recv() across connection workers and is dropped before the socket is served
            match guard.recv() {
                Ok(stream) => stream,
                Err(_) => break, // accept loop gone: shutdown
            }
        };
        metrics.connections.inc();
        handle_connection(stream, target, metrics, cfg, stop);
    }
}

/// Runs one connection's keep-alive loop to completion.
fn handle_connection(
    mut stream: TcpStream,
    target: &ServeTarget,
    metrics: &ServerMetrics,
    cfg: &HttpConfig,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let limits = Limits {
        max_header_bytes: cfg.max_header_bytes,
        max_headers: cfg.max_headers,
        max_body_bytes: cfg.max_body_bytes,
    };

    for served in 0..cfg.keep_alive_requests {
        // During drain, finish what was started but take nothing new.
        if stop.load(Ordering::SeqCst) && served > 0 {
            break;
        }
        let request = match http1::read_request(&mut reader, &limits) {
            Ok(request) => request,
            Err(e) => {
                respond_parse_error(&mut stream, metrics, &e);
                return;
            }
        };
        let last = served + 1 == cfg.keep_alive_requests;
        let (response, served_infer) = route(&request, target, metrics);
        // Decide keep-alive AFTER serving: a shutdown that lands while
        // this request was in flight must close (and announce it) now.
        let close =
            last || request.wants_close() || stop.load(Ordering::SeqCst);
        match served_infer {
            Some((timing, images)) => metrics.record_served(timing, images),
            None => metrics.record_status(response.status),
        }
        if response.write_to(&mut stream, close).is_err() || close {
            return;
        }
    }
}

/// Answers a request-parse failure with the right status (or a quiet
/// close for idle/io), always with `Connection: close`.
fn respond_parse_error(stream: &mut TcpStream, metrics: &ServerMetrics, e: &ParseError) {
    let response = match e {
        ParseError::Idle | ParseError::Io(_) => return,
        ParseError::Timeout => Response::text(408, "read deadline expired mid-request"),
        ParseError::BadRequest(msg) => Response::text(400, format!("bad request: {msg}")),
        ParseError::HeadersTooLarge => Response::text(431, "header block over limit"),
        ParseError::BodyTooLarge => Response::text(413, "body over limit"),
        ParseError::LengthRequired => Response::text(411, "content-length required"),
        ParseError::VersionUnsupported(v) => {
            Response::text(505, format!("only HTTP/1.1 is served, got {v}"))
        }
        ParseError::NotImplemented(what) => {
            Response::text(501, format!("`{what}` is not implemented"))
        }
    };
    metrics.record_status(response.status);
    let _ = response.write_to(stream, true);
}

/// Dispatches one parsed request; a `200` inference also returns the
/// queue-wait/service timing split and image count for metrics.
fn route(
    request: &Request,
    target: &ServeTarget,
    metrics: &ServerMetrics,
) -> (Response, Option<(JobTiming, usize)>) {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/infer") => match target {
            ServeTarget::Single(session) => infer(request, session),
            ServeTarget::Registry(_) => (
                Response::text(
                    404,
                    "this server is multi-model: POST /v1/models/{name}/infer",
                ),
                None,
            ),
        },
        ("GET", "/v1/infer") | ("HEAD", "/v1/infer") => {
            (Response::text(405, "use POST").with_header("allow", "POST"), None)
        }
        ("GET", "/metrics") => (Response::text(200, render_metrics(target, metrics)), None),
        (_, "/metrics") => {
            (Response::text(405, "use GET").with_header("allow", "GET"), None)
        }
        ("GET", "/debug/trace") => (render_trace(target), None),
        (_, "/debug/trace") => {
            (Response::text(405, "use GET").with_header("allow", "GET"), None)
        }
        ("GET", "/") | ("GET", "/healthz") => (healthz(target), None),
        (method, path) if path.starts_with("/v1/models/") => {
            model_route(method, path, request, target)
        }
        _ => (Response::text(404, format!("no route for {}", request.target)), None),
    }
}

/// Routes `/v1/models/{name}/infer`: look the model up in the registry
/// (warming it on first use) and serve on its pool. Typed errors map to
/// HTTP statuses in [`registry_error_response`].
fn model_route(
    method: &str,
    path: &str,
    request: &Request,
    target: &ServeTarget,
) -> (Response, Option<(JobTiming, usize)>) {
    let ServeTarget::Registry(registry) = target else {
        return (
            Response::text(404, "this server fronts a single model: POST /v1/infer"),
            None,
        );
    };
    let rest = path.strip_prefix("/v1/models/").unwrap_or("");
    let Some((name, action)) = rest.split_once('/') else {
        return (Response::text(404, format!("no route for {path}")), None);
    };
    match (method, action) {
        ("POST", "infer") => match registry.acquire(name) {
            Ok(handle) => infer(request, handle.session()),
            Err(e) => (registry_error_response(&e), None),
        },
        ("GET", "infer") | ("HEAD", "infer") => {
            (Response::text(405, "use POST").with_header("allow", "POST"), None)
        }
        _ => (Response::text(404, format!("no route for {path}")), None),
    }
}

/// Maps a registry acquire failure to its HTTP status: unknown model or
/// missing artifact file is the client's problem (`404`), a model over
/// the memory budget is transient pressure (`503 Retry-After`), and a
/// corrupt artifact or other load failure is the server's (`500`).
fn registry_error_response(e: &ScError) -> Response {
    match e {
        ScError::UnknownModel { .. } => Response::text(404, e.to_string()),
        ScError::Io { not_found: true, .. } => {
            Response::text(404, format!("model artifact missing: {e}"))
        }
        ScError::BudgetExceeded { .. } => {
            Response::text(503, format!("warming over budget: {e}"))
                .with_header("retry-after", "1")
        }
        ScError::QueueFull { .. } | ScError::PoolGone => shed_response(e),
        ScError::InvalidParam { .. } => Response::text(400, format!("rejected: {e}")),
        _ => Response::text(500, format!("model load failed: {e}")),
    }
}

/// `GET /healthz`. Single-session mode is healthy once bound (the pool
/// was spawned eagerly). Registry mode reports one `name=state` line per
/// model and answers `503 Retry-After` until at least one model is warm,
/// so orchestrators never route traffic at a process that would eat the
/// first request's cold-load latency for every model.
fn healthz(target: &ServeTarget) -> Response {
    let registry = match target {
        ServeTarget::Single(_) => return Response::text(200, "ascend-http: ok"),
        ServeTarget::Registry(registry) => registry,
    };
    let states = registry.states();
    let mut body = String::new();
    let mut any_warm = false;
    for (name, state) in &states {
        any_warm |= *state == ModelState::Warm;
        body.push_str(&format!("{name}={}\n", state.as_str()));
    }
    if states.is_empty() {
        body.push_str("no models registered\n");
    }
    if any_warm {
        Response::text(200, body)
    } else {
        Response::text(503, body).with_header("retry-after", "1")
    }
}

/// The `/metrics` body: server counters and the request-latency histogram,
/// followed by the pool's own registry (queue-wait and service-time
/// histograms), so one scrape covers the whole request path. In registry
/// mode the pool gauges are summed across warm models, the registry's
/// per-model block (state/resident/loads/evictions) follows, and each
/// warm pool renders its own histograms under a `# model` marker.
fn render_metrics(target: &ServeTarget, metrics: &ServerMetrics) -> String {
    let registry = match target {
        ServeTarget::Single(session) => {
            // The pool exists (bind() spawned it); a failure here means it
            // could not spawn at all, which bind() already surfaced.
            return match session.runner() {
                Ok(pool) => {
                    let mut out = metrics.render(
                        pool.queued(),
                        pool.queue_capacity(),
                        pool.in_flight(),
                        pool.workers(),
                    );
                    out.push_str(&pool.obs().render());
                    out
                }
                Err(e) => format!("# pool unavailable: {e}\n"),
            };
        }
        ServeTarget::Registry(registry) => registry,
    };
    let handles = registry.warm_handles();
    let (mut queued, mut capacity, mut in_flight, mut workers) = (0usize, 0usize, 0usize, 0usize);
    let mut pools = Vec::new();
    for handle in &handles {
        if let Ok(pool) = handle.session().runner() {
            queued += pool.queued();
            capacity += pool.queue_capacity();
            in_flight += pool.in_flight();
            workers += pool.workers();
            pools.push((handle.name(), pool));
        }
    }
    let mut out = metrics.render(queued, capacity, in_flight, workers);
    out.push_str(&registry.metrics_render());
    for (name, pool) in pools {
        out.push_str(&format!("# model {name} pool\n"));
        out.push_str(&pool.obs().render());
    }
    out
}

/// The `GET /debug/trace` body: the pool's recent request spans as
/// chrome://tracing JSON (load it via `chrome://tracing` or Perfetto).
/// Registry mode concatenates the warm models' spans.
fn render_trace(target: &ServeTarget) -> Response {
    match target {
        ServeTarget::Single(session) => match session.runner() {
            Ok(pool) => Response::json(200, pool.obs().trace().to_chrome_json()),
            Err(e) => Response::text(500, format!("pool unavailable: {e}")),
        },
        ServeTarget::Registry(registry) => {
            let handles = registry.warm_handles();
            let spans: Vec<String> = handles
                .iter()
                .filter_map(|h| Some(h.session().runner().ok()?.obs().trace().to_chrome_json()))
                .collect();
            Response::json(200, format!("[{}]", spans.join(",")))
        }
    }
}

/// Runs `POST /v1/infer`: decode, **non-blocking** admission, collect,
/// encode. The admission policy is the whole point: `try_submit` answers
/// a full queue with `503 Retry-After` immediately instead of blocking
/// this socket thread until the pool drains.
fn infer(request: &Request, session: &Session) -> (Response, Option<(JobTiming, usize)>) {
    let vit = session.backend().vit_config();
    let (patches, images) = match crate::decode_infer_request(&request.body, vit) {
        Ok(decoded) => decoded,
        Err(e) => return (Response::text(400, format!("bad payload: {e}")), None),
    };
    let pool = match session.runner() {
        Ok(pool) => pool,
        Err(e) => return (shed_response(&e), None),
    };
    // The trace id is minted here, at admission: a request the pool refuses
    // (shed below) dies with its id and must leave no spans behind.
    let trace = TraceId::mint();
    let handle = match pool.try_submit(ServeRequest::new(patches, images).with_trace(trace)) {
        Ok(handle) => handle,
        Err(e @ (ScError::QueueFull { .. } | ScError::PoolGone)) => {
            return (shed_response(&e), None)
        }
        Err(e) => return (Response::text(400, format!("rejected: {e}")), None),
    };
    match handle.collect() {
        Ok((logits, timing)) => {
            let body = crate::encode_logits(&logits, images, vit.classes);
            (Response::binary(200, body), Some((timing, images)))
        }
        Err(ScError::PoolGone) => (shed_response(&ScError::PoolGone), None),
        Err(e) => (Response::text(500, format!("inference failed: {e}")), None),
    }
}

/// The `503 Retry-After` load-shedding response.
fn shed_response(e: &ScError) -> Response {
    Response::text(503, format!("shed: {e}")).with_header("retry-after", "1")
}
