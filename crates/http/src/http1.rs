//! Minimal HTTP/1.1 message handling: request parsing with hard limits,
//! and response serialization.
//!
//! The parser is deliberately strict — this server fronts exactly one
//! binary API, so anything outside the expected envelope fails closed
//! with a typed [`ParseError`] that the connection loop maps to the
//! right status code (`400`, `408`, `411`, `413`, `431`, `505`). Every
//! size is bounded before any allocation happens, and `Content-Length`
//! goes through `u64::from_str` + `usize::try_from` — no lossy casts on
//! an attacker-controlled path.

use std::io::{BufRead, Write};

/// Hard limits the parser enforces while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Total header-block bytes (request line included) before `431`.
    pub max_header_bytes: usize,
    /// Header count before `431`.
    pub max_headers: usize,
    /// Body bytes before `413`.
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, verbatim (`/v1/infer`).
    pub target: String,
    /// Header `(name, value)` pairs; names lower-cased for lookup.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == lower).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. The connection loop maps each
/// variant to a status code (or a quiet close).
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed (or an idle keep-alive read timed out) before
    /// sending a single byte — close quietly, nothing to answer.
    Idle,
    /// The read deadline expired mid-request: `408`.
    Timeout,
    /// The message violates HTTP/1.1 framing: `400`.
    BadRequest(String),
    /// Header block over the byte or count limit: `431`.
    HeadersTooLarge,
    /// Declared body larger than the limit: `413`.
    BodyTooLarge,
    /// A body-carrying method without `Content-Length`: `411`.
    LengthRequired,
    /// A well-formed version this server does not speak: `505`.
    VersionUnsupported(String),
    /// `Transfer-Encoding` and friends: `501`.
    NotImplemented(String),
    /// The socket failed mid-read — close, nothing sensible to answer.
    Io(std::io::Error),
}

/// True when an I/O error is a read/write deadline expiring (`WouldBlock`
/// on unix, `TimedOut` elsewhere).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Reads one CRLF- (or bare-LF-) terminated line, bounding total header
/// bytes via `budget`.
fn read_line<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
    any_bytes: &mut bool,
) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && !*any_bytes {
                    return Err(ParseError::Idle);
                }
                return Err(ParseError::BadRequest("connection closed mid-line".into()));
            }
            Ok(_) => {
                *any_bytes = true;
                if *budget == 0 {
                    return Err(ParseError::HeadersTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| ParseError::BadRequest("non-UTF-8 header bytes".into()));
                }
                line.push(byte[0]);
            }
            Err(e) if is_timeout(&e) => {
                return if line.is_empty() && !*any_bytes {
                    Err(ParseError::Idle)
                } else {
                    Err(ParseError::Timeout)
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Reads and validates one full request (line, headers, body) under the
/// given limits.
///
/// # Errors
///
/// See [`ParseError`]; every failure mode is typed so the connection
/// loop can answer with the precise status code.
pub fn read_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Request, ParseError> {
    let mut budget = limits.max_header_bytes;
    let mut any_bytes = false;
    let request_line = read_line(reader, &mut budget, &mut any_bytes)?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/") {
        return Err(ParseError::BadRequest(format!("malformed version `{version}`")));
    }
    if version != "HTTP/1.1" {
        return Err(ParseError::VersionUnsupported(version));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut budget, &mut any_bytes).map_err(|e| match e {
            // Headers after the request line: a stall here is a timeout,
            // never an idle close.
            ParseError::Idle => ParseError::Timeout,
            other => other,
        })?;
        if line.is_empty() {
            break;
        }
        if headers.len() == limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!("header without colon: `{line}`")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!("malformed header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::NotImplemented("transfer-encoding".into()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => None,
        Some((_, v)) => {
            let n: u64 = v
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("bad content-length `{v}`")))?;
            Some(usize::try_from(n).map_err(|_| ParseError::BodyTooLarge)?)
        }
    };

    let body = match content_length {
        None => {
            if method == "POST" || method == "PUT" {
                return Err(ParseError::LengthRequired);
            }
            Vec::new()
        }
        Some(len) => {
            if len > limits.max_body_bytes {
                return Err(ParseError::BodyTooLarge);
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).map_err(|e| {
                if is_timeout(&e) {
                    ParseError::Timeout
                } else if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    ParseError::BadRequest("body shorter than content-length".into())
                } else {
                    ParseError::Io(e)
                }
            })?;
            body
        }
    };

    Ok(Request { method, target, headers, body })
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// One response, serialized by [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response { status, headers: Vec::new(), body: body.into_bytes(), content_type: "text/plain" }
    }

    /// A binary (`application/octet-stream`) response.
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response { status, headers: Vec::new(), body, content_type: "application/octet-stream" }
    }

    /// A JSON response (the body is trusted to already be valid JSON).
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response; `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (including write-deadline expiry).
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            self.content_type,
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn limits() -> Limits {
        Limits { max_header_bytes: 512, max_headers: 8, max_body_bytes: 64 }
    }

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw), &limits())
    }

    #[test]
    fn parses_a_get_with_headers() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/infer HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello")
            .expect("parses");
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nhost: y\n\n").expect("parses");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::BadRequest(_))),
                "raw = {raw:?}"
            );
        }
    }

    #[test]
    fn other_http_versions_are_rejected_as_unsupported() {
        assert!(matches!(
            parse(b"GET / HTTP/1.0\r\n\r\n"),
            Err(ParseError::VersionUnsupported(v)) if v == "HTTP/1.0"
        ));
    }

    #[test]
    fn header_limits_fail_closed() {
        // Byte budget.
        let long = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(600));
        assert!(matches!(parse(long.as_bytes()), Err(ParseError::HeadersTooLarge)));
        // Count budget.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..9 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(parse(many.as_bytes()), Err(ParseError::HeadersTooLarge)));
    }

    #[test]
    fn body_framing_failures_are_typed() {
        assert!(matches!(
            parse(b"POST /v1/infer HTTP/1.1\r\n\r\n"),
            Err(ParseError::LengthRequired)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\nxx"),
            Err(ParseError::BodyTooLarge)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::NotImplemented(_))
        ));
    }

    #[test]
    fn empty_stream_is_idle_not_an_error_response() {
        assert!(matches!(parse(b""), Err(ParseError::Idle)));
        // A half-sent request line is a framing error, not idle.
        assert!(matches!(parse(b"GET /"), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        Response::text(503, "shed")
            .with_header("retry-after", "1")
            .write_to(&mut out, true)
            .expect("writes");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("content-length: 5\r\n"));
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.contains("connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nshed\n"));

        let mut out = Vec::new();
        Response::binary(200, vec![1, 2, 3]).write_to(&mut out, false).expect("writes");
        let s = String::from_utf8_lossy(&out);
        assert!(s.contains("connection: keep-alive\r\n"));
        assert!(s.contains("content-type: application/octet-stream\r\n"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_codes() {
        for code in [200u16, 400, 404, 405, 408, 411, 413, 431, 500, 501, 503, 505] {
            assert_ne!(reason(code), "Unknown", "code {code}");
        }
        assert_eq!(reason(599), "Unknown");
    }
}
