//! End-to-end contract of the HTTP front-end, over real sockets:
//! protocol errors get the right status codes, keep-alive works and is
//! capped, a full admission queue sheds with `503 Retry-After` instead of
//! blocking, a dead pool answers `503` instead of hanging, graceful drain
//! completes in-flight work, and `200` bodies are bit-identical to the
//! in-process serial forward.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ascend::serve::ServeConfig;
use ascend::{ForwardScratch, InferenceBackend, Session};
use ascend_http::{client, HttpConfig, HttpServer};
use ascend_tensor::Tensor;
use ascend_vit::{PrecisionPlan, VitConfig};
use sc_core::ScError;

fn tiny_vit() -> VitConfig {
    VitConfig { image: 8, patch: 4, dim: 16, layers: 1, heads: 2, classes: 2, ..Default::default() }
}

/// A controllable backend: `forward_one` blocks until the gate opens,
/// then echoes `[sum, -sum]` of its input — tests hold the pool stalled
/// to observe admission behavior, then open the gate to drain.
struct GatedBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GatedBackend {
    fn new(open: bool) -> Self {
        GatedBackend {
            cfg: tiny_vit(),
            plan: PrecisionPlan::fp(),
            gate: Mutex::new(open),
            opened: Condvar::new(),
        }
    }

    fn open(&self) {
        // Poison-recovery so one panicked worker cannot cascade
        // PoisonError panics through every other gated thread.
        let mut open = match self.gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *open = true;
        self.opened.notify_all();
    }
}

impl InferenceBackend for GatedBackend {
    fn name(&self) -> &str {
        "gated"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        let mut open = match self.gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*open {
            open = match self.opened.wait(open) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        drop(open);
        let sum: f32 = patches.data().iter().sum();
        Ok(vec![sum, -sum])
    }
}

/// A backend whose worker dies on first contact — for proving that a
/// pool with no live workers surfaces `503`, never a hang.
struct PanickingBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
}

impl InferenceBackend for PanickingBackend {
    fn name(&self) -> &str {
        "panicking"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        _patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        panic!("worker down (intentional, this test kills the pool)");
    }
}

fn gated_server(
    open: bool,
    queue_depth: usize,
    cfg: HttpConfig,
) -> (HttpServer, Arc<GatedBackend>, Arc<Session>) {
    let backend = Arc::new(GatedBackend::new(open));
    let session = Arc::new(
        Session::from_shared_backend(
            Arc::clone(&backend) as Arc<dyn InferenceBackend>,
            ServeConfig { workers: 1, micro_batch: 1, queue_depth },
        )
        .expect("session builds"),
    );
    let server = HttpServer::bind(Arc::clone(&session), cfg).expect("server binds");
    (server, backend, session)
}

fn short_timeouts(mut cfg: HttpConfig) -> HttpConfig {
    cfg.read_timeout = Duration::from_millis(300);
    cfg.write_timeout = Duration::from_secs(2);
    cfg
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.set_write_timeout(Some(Duration::from_secs(10))).expect("write timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

/// One request's payload for the gated backend's geometry: `p × pd`
/// scalars all equal to `v`, so the expected logits are `[v·p·pd, -v·p·pd]`.
fn gated_payload(v: f32) -> Vec<u8> {
    let cfg = tiny_vit();
    let n = cfg.num_patches() * cfg.patch_dim();
    ascend_http::encode_infer_request(&vec![v; n], 1)
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn keep_alive_reuses_a_connection_and_caps_it() {
    let mut cfg = HttpConfig::new("127.0.0.1:0");
    cfg.keep_alive_requests = 3;
    let (server, _backend, _session) = gated_server(true, 4, cfg);
    let (mut reader, mut writer) = connect(server.local_addr());

    // Three requests ride one connection; the third hits the cap and the
    // server announces the close.
    for i in 0..3 {
        client::write_request(&mut writer, "GET", "/healthz", &[], false).expect("write");
        let response = client::read_response(&mut reader).expect("response");
        assert_eq!(response.status, 200, "request {i}");
        assert_eq!(response.wants_close(), i == 2, "request {i} close flag");
    }
    // The server hung up: the next read sees EOF, not a stall.
    client::write_request(&mut writer, "GET", "/healthz", &[], false).ok();
    assert!(client::read_response(&mut reader).is_err(), "connection must be closed");
    server.join();
}

#[test]
fn protocol_errors_get_typed_statuses() {
    use std::io::Write;
    let mut cfg = short_timeouts(HttpConfig::new("127.0.0.1:0"));
    cfg.max_header_bytes = 256;
    let (server, _backend, _session) = gated_server(true, 4, cfg);
    let addr = server.local_addr();

    // Malformed request line → 400.
    let (mut reader, mut writer) = connect(addr);
    writer.write_all(b"utter garbage\r\n\r\n").expect("write");
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 400);
    assert!(response.wants_close());

    // Header block over the limit → 431.
    let (mut reader, mut writer) = connect(addr);
    let big = "x".repeat(400);
    writer
        .write_all(format!("GET / HTTP/1.1\r\nbloat: {big}\r\n\r\n").as_bytes())
        .expect("write");
    assert_eq!(client::read_response(&mut reader).expect("response").status, 431);

    // Wrong method on a real route → 405 with Allow.
    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, "GET", "/v1/infer", &[], false).expect("write");
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));

    // Unknown path → 404.
    client::write_request(&mut writer, "POST", "/nope", &[], false).expect("write");
    assert_eq!(client::read_response(&mut reader).expect("response").status, 404);

    // HTTP/1.0 → 505.
    let (mut reader, mut writer) = connect(addr);
    writer.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("write");
    assert_eq!(client::read_response(&mut reader).expect("response").status, 505);

    // Body over the limit → 413, rejected on the declared length alone.
    let (mut reader, mut writer) = connect(addr);
    writer
        .write_all(b"POST /v1/infer HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n")
        .expect("write");
    assert_eq!(client::read_response(&mut reader).expect("response").status, 413);

    // POST without content-length → 411.
    let (mut reader, mut writer) = connect(addr);
    writer.write_all(b"POST /v1/infer HTTP/1.1\r\n\r\n").expect("write");
    assert_eq!(client::read_response(&mut reader).expect("response").status, 411);

    // A malformed infer body on the happy route → 400, not a hang.
    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, "POST", "/v1/infer", &[1, 2, 3], false).expect("write");
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 400);

    server.join();
}

#[test]
fn stalled_request_hits_the_read_deadline_with_408() {
    use std::io::Write;
    let cfg = short_timeouts(HttpConfig::new("127.0.0.1:0"));
    let (server, _backend, _session) = gated_server(true, 4, cfg);
    let (mut reader, mut writer) = connect(server.local_addr());
    // A few bytes of a request line, then silence: the 300ms read
    // deadline must expire and answer 408 — never hold the handler.
    writer.write_all(b"POS").expect("write");
    let started = Instant::now();
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 408);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline response took {:?}",
        started.elapsed()
    );
    server.join();
}

#[test]
fn full_queue_sheds_with_503_retry_after_and_drains_clean() {
    // One pool worker, queue depth 1, gate closed: request A stalls the
    // worker, B fills the queue, C must be shed immediately.
    let (server, backend, session) =
        gated_server(false, 1, HttpConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();
    let pool = session.runner().expect("pool");

    let (mut reader_a, mut writer_a) = connect(addr);
    client::write_request(&mut writer_a, "POST", "/v1/infer", &gated_payload(1.0), false)
        .expect("write A");
    // A is admitted and picked up by the (stalled) worker.
    wait_until("A in flight", Duration::from_secs(5), || pool.in_flight() == 1);

    let (mut reader_b, mut writer_b) = connect(addr);
    client::write_request(&mut writer_b, "POST", "/v1/infer", &gated_payload(2.0), false)
        .expect("write B");
    // B occupies the single queue slot.
    wait_until("B queued", Duration::from_secs(5), || pool.queued() == 1);

    // C: the queue is full — non-blocking admission must answer 503 with
    // Retry-After *now*, while the pool is still wedged.
    let (mut reader_c, mut writer_c) = connect(addr);
    client::write_request(&mut writer_c, "POST", "/v1/infer", &gated_payload(3.0), false)
        .expect("write C");
    let started = Instant::now();
    let shed = client::read_response(&mut reader_c).expect("C response");
    assert_eq!(shed.status, 503, "full queue must shed");
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shedding took {:?}, admission must not block",
        started.elapsed()
    );

    // Metrics are live mid-overload and see the queue.
    let (mut reader_m, mut writer_m) = connect(addr);
    client::write_request(&mut writer_m, "GET", "/metrics", &[], true).expect("write metrics");
    let metrics = client::read_response(&mut reader_m).expect("metrics");
    let text = String::from_utf8(metrics.body).expect("utf-8");
    assert!(text.contains("ascend_queue_depth 1\n"), "{text}");
    assert!(text.contains("ascend_queue_capacity 1\n"), "{text}");
    assert!(text.contains("ascend_in_flight 1\n"), "{text}");
    assert!(text.contains("ascend_http_shed_total 1\n"), "{text}");

    // Open the gate: A and B were never dropped and complete with the
    // right payloads, in order.
    backend.open();
    let n = tiny_vit().num_patches() * tiny_vit().patch_dim();
    for (reader, v) in [(&mut reader_a, 1.0f32), (&mut reader_b, 2.0f32)] {
        let response = client::read_response(reader).expect("drained response");
        assert_eq!(response.status, 200);
        let (images, classes, logits) =
            ascend_http::decode_logits(&response.body).expect("logits decode");
        assert_eq!((images, classes), (1, 2));
        let want = v * n as f32;
        assert_eq!(logits, vec![want, -want]);
    }
    server.join();
}

#[test]
fn traces_cover_every_200_and_never_a_shed() {
    // Same overload shape as the shedding test: A stalls the worker, B
    // queues, C is shed. After the drain, the two served requests — and
    // only they — must have queue-wait and service spans in /debug/trace,
    // and /metrics must carry the queue-wait/service histogram split.
    let (server, backend, session) =
        gated_server(false, 1, HttpConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();
    let pool = session.runner().expect("pool");

    let (mut reader_a, mut writer_a) = connect(addr);
    client::write_request(&mut writer_a, "POST", "/v1/infer", &gated_payload(1.0), false)
        .expect("write A");
    wait_until("A in flight", Duration::from_secs(5), || pool.in_flight() == 1);
    let (mut reader_b, mut writer_b) = connect(addr);
    client::write_request(&mut writer_b, "POST", "/v1/infer", &gated_payload(2.0), false)
        .expect("write B");
    wait_until("B queued", Duration::from_secs(5), || pool.queued() == 1);
    let (mut reader_c, mut writer_c) = connect(addr);
    client::write_request(&mut writer_c, "POST", "/v1/infer", &gated_payload(3.0), false)
        .expect("write C");
    assert_eq!(client::read_response(&mut reader_c).expect("C response").status, 503);

    backend.open();
    for reader in [&mut reader_a, &mut reader_b] {
        assert_eq!(client::read_response(reader).expect("drained").status, 200);
    }

    // /metrics: the pool's queue-wait and service histograms saw exactly
    // the two served requests; the shed one never reached a worker.
    let (mut reader_m, mut writer_m) = connect(addr);
    client::write_request(&mut writer_m, "GET", "/metrics", &[], false).expect("write metrics");
    let metrics = client::read_response(&mut reader_m).expect("metrics");
    let text = String::from_utf8(metrics.body).expect("utf-8");
    assert!(text.contains("# TYPE ascend_request_queue_wait_seconds histogram"), "{text}");
    assert!(text.contains("ascend_request_queue_wait_seconds_count 2\n"), "{text}");
    assert!(text.contains("ascend_request_service_seconds_count 2\n"), "{text}");
    assert!(text.contains("ascend_http_request_seconds_count 2\n"), "{text}");

    // /debug/trace: chrome://tracing JSON with one queue_wait and one
    // service span per 200, two distinct trace ids, and nothing from C.
    client::write_request(&mut writer_m, "GET", "/debug/trace", &[], true).expect("write trace");
    let trace = client::read_response(&mut reader_m).expect("trace");
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/json"));
    let json = String::from_utf8(trace.body).expect("utf-8");
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.trim_end().ends_with('}'), "{json}");
    assert_eq!(json.matches("\"name\":\"queue_wait\"").count(), 2, "{json}");
    assert_eq!(json.matches("\"name\":\"service\"").count(), 2, "{json}");
    let mut ids: Vec<&str> = json
        .split("\"trace_id\":")
        .skip(1)
        .map(|s| s.split(|c: char| !c.is_ascii_digit()).next().unwrap_or(""))
        .collect();
    assert_eq!(ids.len(), 4, "two spans per served request: {json}");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 2, "one trace id per request, none leaked for the shed: {json}");
    server.join();
}

#[test]
fn dead_pool_answers_503_never_hangs() {
    let backend: Arc<dyn InferenceBackend> =
        Arc::new(PanickingBackend { cfg: tiny_vit(), plan: PrecisionPlan::fp() });
    let session = Arc::new(
        Session::from_shared_backend(
            backend,
            ServeConfig { workers: 1, micro_batch: 1, queue_depth: 2 },
        )
        .expect("session builds"),
    );
    let server =
        HttpServer::bind(Arc::clone(&session), HttpConfig::new("127.0.0.1:0")).expect("binds");
    let addr = server.local_addr();

    // First request kills the only worker mid-service; the reply channel
    // drops and the response must be 503, not a hang.
    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, "POST", "/v1/infer", &gated_payload(1.0), false)
        .expect("write");
    let started = Instant::now();
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 503, "dead worker must surface as 503");
    assert!(started.elapsed() < Duration::from_secs(5));

    // With zero live workers, later submits see the disconnected queue:
    // still 503, still immediate.
    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, "POST", "/v1/infer", &gated_payload(2.0), false)
        .expect("write");
    let response = client::read_response(&mut reader).expect("response");
    assert_eq!(response.status, 503, "pool-gone must surface as 503");
    assert_eq!(response.header("retry-after"), Some("1"));
    server.join();
}

#[test]
fn graceful_drain_completes_in_flight_work() {
    let (server, backend, session) =
        gated_server(false, 4, HttpConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();
    let pool = session.runner().expect("pool");

    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, "POST", "/v1/infer", &gated_payload(5.0), false)
        .expect("write");
    wait_until("request in flight", Duration::from_secs(5), || pool.in_flight() == 1);

    // Shutdown lands while the request is mid-service; the drain must
    // still deliver its response before the connection closes.
    let handle = server.shutdown_handle();
    handle.shutdown();
    assert!(handle.is_shutdown());
    backend.open();
    let response = client::read_response(&mut reader).expect("drained response");
    assert_eq!(response.status, 200, "in-flight work must complete through drain");
    assert!(response.wants_close(), "drain responses announce the close");
    server.join();

    // And the listener is really gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn http_logits_are_bit_identical_to_the_serial_forward() {
    use ascend::engine::EngineConfig;
    use ascend::fixture::{engine_or_load, FixtureRecipe};

    let mut recipe = FixtureRecipe::tiny("http-tiny", 5);
    recipe.n_train = 48;
    recipe.n_test = 24;
    recipe.pre_epochs = 2;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("tiny engine compiles");
    let engine = Arc::new(engine);

    let n = 3usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);
    let serial = engine.forward(&patches, n).expect("serial forward");
    let classes = engine.vit_config().classes;
    let expected = ascend_http::encode_logits(&serial, n, classes);

    let session = Arc::new(
        Session::from_shared_backend(
            Arc::clone(&engine) as Arc<dyn InferenceBackend>,
            ServeConfig { workers: 2, micro_batch: 4, queue_depth: 8 },
        )
        .expect("session builds"),
    );
    let server =
        HttpServer::bind(Arc::clone(&session), HttpConfig::new("127.0.0.1:0")).expect("binds");
    let payload = ascend_http::encode_infer_request(patches.data(), n);

    // Twice over one keep-alive connection: byte-for-byte the serial
    // logits, both times — the wire adds nothing and loses nothing.
    let (mut reader, mut writer) = connect(server.local_addr());
    for round in 0..2 {
        client::write_request(&mut writer, "POST", "/v1/infer", &payload, false).expect("write");
        let response = client::read_response(&mut reader).expect("response");
        assert_eq!(response.status, 200, "round {round}");
        assert_eq!(
            response.body, expected,
            "round {round}: HTTP logits differ from the serial forward bytes"
        );
    }
    server.join();
}
