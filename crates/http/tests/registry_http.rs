//! Multi-model serving over real sockets: `/v1/models/{name}/infer`
//! routes by model id, typed registry failures map to the right HTTP
//! statuses (404 unknown model / missing artifact, 500 corrupt artifact,
//! 503 + Retry-After over budget), `/healthz` reports per-model state
//! and refuses traffic until one model is warm, and `/metrics` carries
//! the per-model registry gauges.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ascend::serve::ServeConfig;
use ascend::{ForwardScratch, InferenceBackend};
use ascend_http::{client, HttpConfig, HttpServer};
use ascend_registry::{ModelRegistry, ModelSpec, RegistryConfig};
use ascend_tensor::Tensor;
use ascend_vit::{PrecisionPlan, VitConfig};
use sc_core::ScError;

fn tiny_vit() -> VitConfig {
    VitConfig { image: 8, patch: 4, dim: 16, layers: 1, heads: 2, classes: 2, ..Default::default() }
}

/// Echoes `[scale·sum, -scale·sum]` so each model's responses are
/// distinguishable on the wire.
struct ScaledBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
    scale: f32,
    bytes: usize,
}

impl ScaledBackend {
    fn new(scale: f32, bytes: usize) -> Self {
        ScaledBackend { cfg: tiny_vit(), plan: PrecisionPlan::fp(), scale, bytes }
    }
}

impl InferenceBackend for ScaledBackend {
    fn name(&self) -> &str {
        "scaled"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn resident_bytes(&self) -> usize {
        self.bytes
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        let sum: f32 = patches.data().iter().sum::<f32>() * self.scale;
        Ok(vec![sum, -sum])
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { workers: 1, micro_batch: 1, queue_depth: 4 }
}

fn spec(name: &str, scale: f32, bytes: usize) -> ModelSpec {
    ModelSpec::shared(name, Arc::new(ScaledBackend::new(scale, bytes))).serve(serve_cfg())
}

fn bind(registry: Arc<ModelRegistry>) -> HttpServer {
    HttpServer::bind_registry(registry, HttpConfig::new("127.0.0.1:0")).expect("server binds")
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.set_write_timeout(Some(Duration::from_secs(10))).expect("write timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn payload(v: f32) -> Vec<u8> {
    let cfg = tiny_vit();
    ascend_http::encode_infer_request(&vec![v; cfg.num_patches() * cfg.patch_dim()], 1)
}

fn roundtrip(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> client::ClientResponse {
    let (mut reader, mut writer) = connect(addr);
    client::write_request(&mut writer, method, target, body, true).expect("write");
    client::read_response(&mut reader).expect("response")
}

#[test]
fn routes_by_model_name_and_404s_the_unknown() {
    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry.register(spec("alpha", 1.0, 100)).expect("register");
    registry.register(spec("beta", 3.0, 100)).expect("register");
    let server = bind(Arc::clone(&registry));
    let addr = server.local_addr();

    let n = (tiny_vit().num_patches() * tiny_vit().patch_dim()) as f32;
    for (model, scale) in [("alpha", 1.0f32), ("beta", 3.0), ("alpha", 1.0)] {
        let response =
            roundtrip(addr, "POST", &format!("/v1/models/{model}/infer"), &payload(2.0));
        assert_eq!(response.status, 200, "{model}");
        let (images, classes, logits) =
            ascend_http::decode_logits(&response.body).expect("decode");
        assert_eq!((images, classes), (1, 2));
        assert_eq!(logits[0].to_bits(), (2.0 * n * scale).to_bits(), "{model} logit");
    }

    let missing = roundtrip(addr, "POST", "/v1/models/ghost/infer", &payload(1.0));
    assert_eq!(missing.status, 404);
    assert!(
        String::from_utf8_lossy(&missing.body).contains("unknown model `ghost`"),
        "body: {}",
        String::from_utf8_lossy(&missing.body)
    );

    // The single-model route does not exist on a multi-model server.
    let single = roundtrip(addr, "POST", "/v1/infer", &payload(1.0));
    assert_eq!(single.status, 404);
    // And the method guard still applies per model.
    let get = roundtrip(addr, "GET", "/v1/models/alpha/infer", &[]);
    assert_eq!(get.status, 405);
    assert_eq!(get.header("allow"), Some("POST"));

    // Exactly one load per model despite repeated requests.
    assert_eq!(registry.loads_total("alpha"), Some(1));
    assert_eq!(registry.loads_total("beta"), Some(1));
    server.join();
}

#[test]
fn healthz_reports_per_model_state_and_503s_until_one_model_is_warm() {
    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry.register(spec("alpha", 1.0, 100)).expect("register");
    registry.register(spec("beta", 1.0, 100)).expect("register");
    let server = bind(Arc::clone(&registry));
    let addr = server.local_addr();

    // Nothing warm yet: not ready, and the body says why.
    let cold = roundtrip(addr, "GET", "/healthz", &[]);
    assert_eq!(cold.status, 503);
    assert_eq!(cold.header("retry-after"), Some("1"));
    let body = String::from_utf8_lossy(&cold.body).to_string();
    assert!(body.contains("alpha=cold") && body.contains("beta=cold"), "body: {body}");

    // One inference warms alpha; the process becomes ready.
    assert_eq!(roundtrip(addr, "POST", "/v1/models/alpha/infer", &payload(1.0)).status, 200);
    let warm = roundtrip(addr, "GET", "/healthz", &[]);
    assert_eq!(warm.status, 200);
    let body = String::from_utf8_lossy(&warm.body).to_string();
    assert!(body.contains("alpha=warm") && body.contains("beta=cold"), "body: {body}");
    server.join();
}

#[test]
fn metrics_carry_per_model_registry_gauges_and_pool_histograms() {
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: 4096,
        ..Default::default()
    }));
    registry.register(spec("alpha", 1.0, 1234)).expect("register");
    registry.register(spec("beta", 1.0, 999)).expect("register");
    let server = bind(Arc::clone(&registry));
    let addr = server.local_addr();

    assert_eq!(roundtrip(addr, "POST", "/v1/models/alpha/infer", &payload(1.0)).status, 200);
    let scrape = roundtrip(addr, "GET", "/metrics", &[]);
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8_lossy(&scrape.body).to_string();
    assert!(text.contains("ascend_model_state{model=\"alpha\"} 2"), "{text}");
    assert!(text.contains("ascend_model_state{model=\"beta\"} 0"), "{text}");
    assert!(text.contains("ascend_model_resident_bytes{model=\"alpha\"} 1234"), "{text}");
    assert!(text.contains("ascend_model_loads_total{model=\"alpha\"} 1"), "{text}");
    assert!(text.contains("ascend_registry_budget_bytes 4096"), "{text}");
    assert!(text.contains("ascend_registry_resident_bytes 1234"), "{text}");
    // The warm model's pool histograms ride the same scrape.
    assert!(text.contains("# model alpha pool"), "{text}");
    assert!(text.contains("# TYPE ascend_request_queue_wait_seconds histogram"), "{text}");
    // Server-level counters still render.
    assert!(text.contains("ascend_http_responses_ok_total"), "{text}");
    server.join();
}

#[test]
fn over_budget_warming_is_shed_with_retry_after() {
    // Budget admits `small` but never `huge`.
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: 500,
        ..Default::default()
    }));
    registry.register(spec("small", 1.0, 100)).expect("register");
    registry.register(spec("huge", 1.0, 10_000)).expect("register");
    let server = bind(Arc::clone(&registry));
    let addr = server.local_addr();

    assert_eq!(roundtrip(addr, "POST", "/v1/models/small/infer", &payload(1.0)).status, 200);
    let over = roundtrip(addr, "POST", "/v1/models/huge/infer", &payload(1.0));
    assert_eq!(over.status, 503);
    assert_eq!(over.header("retry-after"), Some("1"));
    assert!(
        String::from_utf8_lossy(&over.body).contains("memory budget exceeded"),
        "body: {}",
        String::from_utf8_lossy(&over.body)
    );
    // The shed request must not have wedged the rest of the fleet.
    assert_eq!(roundtrip(addr, "POST", "/v1/models/small/infer", &payload(1.0)).status, 200);
    server.join();
}

#[test]
fn artifact_failures_map_to_404_for_missing_and_500_for_corrupt() {
    let dir = std::env::temp_dir()
        .join(format!("ascend-registry-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let corrupt_path = dir.join("corrupt.sceng");
    // Right magic, garbage after it: opens as ASCNDART traffic but fails
    // validation — a server-side problem, not the client's.
    let mut bytes = b"ASCNDART".to_vec();
    bytes.extend_from_slice(&[0x5a; 64]);
    std::fs::write(&corrupt_path, bytes).expect("write corrupt artifact");

    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry
        .register(ModelSpec::artifact("missing", dir.join("nope.sceng")).serve(serve_cfg()))
        .expect("register");
    registry
        .register(ModelSpec::artifact("corrupt", &corrupt_path).serve(serve_cfg()))
        .expect("register");
    let server = bind(Arc::clone(&registry));
    let addr = server.local_addr();

    let missing = roundtrip(addr, "POST", "/v1/models/missing/infer", &payload(1.0));
    assert_eq!(missing.status, 404, "file-not-found is the client's 404");
    assert!(
        String::from_utf8_lossy(&missing.body).contains("no such file"),
        "body: {}",
        String::from_utf8_lossy(&missing.body)
    );

    let corrupt = roundtrip(addr, "POST", "/v1/models/corrupt/infer", &payload(1.0));
    assert_eq!(corrupt.status, 500, "corruption is the server's 500");
    assert!(
        String::from_utf8_lossy(&corrupt.body).contains("model load failed"),
        "body: {}",
        String::from_utf8_lossy(&corrupt.body)
    );

    // Neither failure leaves the slot wedged: states went back to cold.
    let health = roundtrip(addr, "GET", "/healthz", &[]);
    assert_eq!(health.status, 503);
    let body = String::from_utf8_lossy(&health.body).to_string();
    assert!(body.contains("missing=cold") && body.contains("corrupt=cold"), "body: {body}");
    std::fs::remove_dir_all(&dir).ok();
    server.join();
}
