//! Shared plumbing for the table/figure harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! ASCEND paper; see DESIGN.md §3 for the index. This library holds the
//! input distributions, metric helpers and formatting they share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sc_nonlinear::mae::InputDist;

/// Samples the GELU-input test vectors used by Table III / Fig. 7
/// (standard normal clipped to ±4, documented in EXPERIMENTS.md).
pub fn gelu_inputs(n: usize, seed: u64) -> Vec<f64> {
    InputDist::gelu_default().sample(n, seed)
}

/// Samples softmax logit rows used by Table IV / Fig. 8: `N(0, 2.5²)`
/// clipped to ±6 per element — the wider, peakier shape of attention
/// logits collected from trained ViT layers (the paper gathers its test
/// vectors the same way, §VI-A; see EXPERIMENTS.md).
pub fn softmax_rows(rows: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    InputDist::Gaussian { mean: 0.0, sigma: 2.5, min: -6.0, max: 6.0 }.sample_rows(rows, m, seed)
}

/// MAE of a scalar SC GELU block against the exact reference over samples.
pub fn gelu_mae<F: Fn(f64) -> f64>(block: F, xs: &[f64]) -> f64 {
    let got: Vec<f64> = xs.iter().map(|&x| block(x)).collect();
    let want: Vec<f64> = xs.iter().map(|&x| sc_nonlinear::ref_fn::gelu(x)).collect();
    sc_nonlinear::mae::mae(&got, &want)
}

/// Prints the standard harness banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("=== ASCEND reproduction: {what} ({paper_ref}) ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_are_deterministic() {
        assert_eq!(gelu_inputs(16, 1), gelu_inputs(16, 1));
        assert_eq!(softmax_rows(2, 8, 1), softmax_rows(2, 8, 1));
    }

    #[test]
    fn gelu_mae_zero_for_exact() {
        let xs = gelu_inputs(64, 2);
        assert_eq!(gelu_mae(sc_nonlinear::ref_fn::gelu, &xs), 0.0);
    }
}
