//! Table IV — softmax blocks: area / delay / ADP / MAE at m = 64.
//!
//! Baseline: the FSM/binary softmax of \[17\] at BSL ∈ {128, 256, 1024}.
//! Ours: the iterative approximate softmax at Bx = 4 and By ∈ {4, 8, 16}
//! (`[s1, s2, k] = [32, 8, 3]`, the paper's recommended rates) with the
//! paper's full-range state grid αy = 2/By.
#![forbid(unsafe_code)]

use ascend::report::{eng, TextTable};
use sc_core::rescale::RescaleMode;
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::softmax_fsm::{FsmSoftmax, FsmSoftmaxConfig};
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

const M: usize = 64;

fn main() {
    ascend_bench::banner("softmax block comparison (m = 64)", "Table IV");
    let lib = CellLibrary::paper_calibrated();
    let rows = ascend_bench::softmax_rows(120, M, 7);

    let mut table = TextTable::new(vec![
        "Design", "Config", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE",
    ]);

    let mut fsm_adp = Vec::new();
    let mut fsm_mae = Vec::new();
    for bsl in [128usize, 256, 1024] {
        // The [17] design point: 6 fractional output bits, coarse exp LUT.
        let cfg = FsmSoftmaxConfig { m: M, bsl, frac_bits: 6, lut_entries: 16, ..Default::default() };
        let block = FsmSoftmax::new(cfg).expect("valid baseline");
        let cost = blocks::fsm_softmax(&lib, &cfg);
        let mae = mae_of(|r| block.run(r).expect("runs"), &rows);
        fsm_adp.push(cost.adp());
        fsm_mae.push(mae);
        table.row(vec![
            "FSM [17]".into(),
            format!("{bsl}b BSL"),
            eng(cost.area_um2),
            eng(cost.delay_ns()),
            eng(cost.adp()),
            format!("{mae:.4}"),
        ]);
    }

    let mut ours_adp = Vec::new();
    let mut ours_mae = Vec::new();
    for by in [4usize, 8, 16] {
        let block = paper_grid_block(by);
        let mae = block.mae_levels(&rows).expect("runs");
        let cost = blocks::iter_softmax(&lib, &block).expect("dims probe");
        ours_adp.push(cost.adp());
        ours_mae.push(mae);
        table.row(vec![
            "Ours (iterative)".into(),
            format!("By = {by}"),
            eng(cost.area_um2),
            eng(cost.delay_ns()),
            eng(cost.adp()),
            format!("{mae:.4}"),
        ]);
    }

    println!("{}", table.render());
    println!("Headline comparisons (paper: 1.58–12.6x ADP reduction, 22.6–29.1% MAE reduction @By=8):");
    println!(
        "  By=8 vs FSM@128b:  ADP x{:.2}, MAE {:+.1}%",
        fsm_adp[0] / ours_adp[1],
        100.0 * (ours_mae[1] / fsm_mae[0] - 1.0)
    );
    println!(
        "  By=8 vs FSM@1024b: ADP x{:.2}, MAE {:+.1}%",
        fsm_adp[2] / ours_adp[1],
        100.0 * (ours_mae[1] / fsm_mae[2] - 1.0)
    );
    println!(
        "  By 8→4: ADP x{:.2} further reduction, MAE {:+.1}%",
        ours_adp[1] / ours_adp[0],
        100.0 * (ours_mae[0] / ours_mae[1] - 1.0)
    );
}

/// Builds the By-block on the paper's grids: αx spans ±6 over Bx = 4
/// levels; αy = 1/m so the anchor y(0) = 1/m is exactly one level and the
/// representable output range (±By/2m) grows with By — the mechanism
/// behind Table IV/VI's accuracy-vs-By trend.
fn paper_grid_block(by: usize) -> IterSoftmaxBlock {
    IterSoftmaxBlock::new(IterSoftmaxConfig {
        m: M,
        k: 3,
        bx: 4,
        ax: 3.0,
        by,
        ay: 1.0 / M as f64,
        s1: 32,
        s2: 8,
        mode: RescaleMode::Round,
    })
    .expect("paper configuration is feasible")
}

fn mae_of<F: Fn(&[f64]) -> Vec<f64>>(block: F, rows: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for row in rows {
        let got = block(row);
        let want = sc_nonlinear::ref_fn::softmax(row);
        for (g, w) in got.iter().zip(want.iter()) {
            total += (g - w).abs();
            n += 1;
        }
    }
    total / n as f64
}
