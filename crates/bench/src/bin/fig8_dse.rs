//! Fig. 8 — design-space exploration of the iterative softmax block.
//!
//! Sweeps the full Table II parameter grid — 2916 designs:
//! `Bx ∈ {2,4} × m ∈ {64,128} × By ∈ {4,8,16} × k ∈ {2,3,4} ×
//! s1 ∈ {8,32,128} × s2 ∈ {2,8,16} × αx-mult ∈ {0.5,1,2} ×
//! αy ∈ {0.5,1,2}/m` (state grids anchored at the y(0) = 1/m level) —
//! evaluates ADP (analytic synthesis model) and MAE
//! (level-domain circuit sim, property-tested equal to the bit-level one),
//! and extracts the per-Bx Pareto fronts.
#![forbid(unsafe_code)]

use ascend::report::{eng, TextTable};
use ascend::serve::{parallel_map, ServeConfig};
use sc_core::rescale::RescaleMode;
use sc_hw::pareto::{pareto_front, DesignPoint};
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn main() {
    ascend_bench::banner("iterative-softmax design-space exploration", "Fig. 8");
    let lib = CellLibrary::paper_calibrated();

    // The 2916-point grid.
    let mut grid = Vec::new();
    for bx in [2usize, 4] {
        for m in [64usize, 128] {
            for by in [4usize, 8, 16] {
                for k in [2usize, 3, 4] {
                    for s1 in [8usize, 32, 128] {
                        for s2 in [2usize, 8, 16] {
                            for ax_mult in [0.5f64, 1.0, 2.0] {
                                for ay_mult in [0.5f64, 1.0, 2.0] {
                                    grid.push(IterSoftmaxConfig {
                                        m,
                                        k,
                                        bx,
                                        ax: ax_mult * 4.0 / bx as f64,
                                        by,
                                        ay: ay_mult / m as f64,
                                        s1,
                                        s2,
                                        mode: RescaleMode::Round,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    println!("design grid: {} points (paper: 2916)", grid.len());

    // Evaluate in parallel on the workspace's shared parallel-map primitive;
    // small chunks keep the workers load-balanced across the ragged
    // per-design evaluation times.
    let threads = ServeConfig::auto().resolved_workers();
    let results = parallel_map(threads, 64, &grid, |_, cfg| evaluate(&lib, *cfg));

    let feasible: Vec<(IterSoftmaxConfig, f64, f64)> =
        results.into_iter().flatten().collect();
    println!(
        "feasible designs: {} ({} infeasible by stream-divisibility)",
        feasible.len(),
        grid.len() - feasible.len()
    );
    println!();

    for bx in [2usize, 4] {
        let points: Vec<DesignPoint<IterSoftmaxConfig>> = feasible
            .iter()
            .filter(|(c, _, _)| c.bx == bx)
            .map(|(c, adp, mae)| DesignPoint { id: *c, adp: *adp, mae: *mae })
            .collect();
        let n_points = points.len();
        let front = pareto_front(points);
        println!(
            "Bx = {bx}: {} designs, {} Pareto optima (paper: {} optima)",
            n_points,
            front.len(),
            if bx == 2 { 12 } else { 21 }
        );
        let adp_lo = front.first().map(|p| p.adp).unwrap_or(0.0);
        let adp_hi = front.last().map(|p| p.adp).unwrap_or(0.0);
        let mae_lo = front.last().map(|p| p.mae).unwrap_or(0.0);
        let mae_hi = front.first().map(|p| p.mae).unwrap_or(0.0);
        println!(
            "  front spans ADP {} … {} | MAE {:.4} … {:.4}",
            eng(adp_lo),
            eng(adp_hi),
            mae_hi,
            mae_lo
        );
        let mut table = TextTable::new(vec![
            "m", "By", "k", "s1", "s2", "ax", "ay", "ADP (um2*ns)", "MAE",
        ]);
        for p in &front {
            let c = &p.id;
            table.row(vec![
                c.m.to_string(),
                c.by.to_string(),
                c.k.to_string(),
                c.s1.to_string(),
                c.s2.to_string(),
                format!("{:.3}", c.ax),
                format!("{:.4}", c.ay),
                eng(p.adp),
                format!("{:.4}", p.mae),
            ]);
        }
        println!("{}", table.render());
    }
}

fn evaluate(
    lib: &CellLibrary,
    cfg: IterSoftmaxConfig,
) -> Option<(IterSoftmaxConfig, f64, f64)> {
    let block = IterSoftmaxBlock::new(cfg).ok()?;
    let rows = ascend_bench::softmax_rows(24, cfg.m, 11);
    let mae = block.mae_levels(&rows).ok()?;
    let cost = blocks::iter_softmax(lib, &block).ok()?;
    Some((cfg, cost.adp(), mae))
}
