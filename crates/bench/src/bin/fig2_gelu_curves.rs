//! Fig. 2 — GELU transfer curves of the four circuit families.
//!
//! Prints a TSV of `x`, exact GELU, and each design's output over the
//! paper's plotting window `x ∈ [−3, 0.5]`: (a) FSM at BSL 128/1024,
//! (b) 4-term Bernstein at BSL 128/1024, (c) naive SI at BSL 4/8,
//! (d) gate-assisted SI at BSL 4/8.
#![forbid(unsafe_code)]

use sc_core::encoding::Thermometer;
use sc_nonlinear::bernstein::gelu_block as bernstein_gelu;
use sc_nonlinear::fsm::{FsmGelu, FsmGeluConfig};
use sc_nonlinear::gate_si::gelu_block_calibrated;
use sc_nonlinear::ref_fn;
use sc_nonlinear::si::SiBlock;

fn main() {
    ascend_bench::banner("GELU transfer curves", "Fig. 2");

    let fsm128 = FsmGelu::new(FsmGeluConfig { bsl: 128, ..Default::default() }).expect("valid");
    let fsm1024 = FsmGelu::new(FsmGeluConfig { bsl: 1024, ..Default::default() }).expect("valid");
    let bern128 = bernstein_gelu(4, 128).expect("valid");
    let bern1024 = bernstein_gelu(4, 1024).expect("valid");

    // Both SI families run the paper's wide-input configuration: a 256-bit
    // accumulated thermometer input compressed to a 4b/8b output whose
    // scale is calibrated on the plotting window — the setup where Fig. 2
    // (c) and (d) differ *only* in the assist gates.
    let window: Vec<f64> = (0..700).map(|i| -3.0 + i as f64 * 0.005).collect();
    let gate4 = gelu_block_calibrated(256, 4, &window).expect("calibrates");
    let gate8 = gelu_block_calibrated(256, 8, &window).expect("calibrates");
    let naive_like = |gate: &sc_nonlinear::gate_si::GateAssistedSi| {
        let input = Thermometer::with_range(256, 4.0).expect("valid codec");
        let output =
            Thermometer::new(gate.output().len(), gate.output().scale()).expect("valid codec");
        SiBlock::compile(ref_fn::gelu, input, output).expect("compiles")
    };
    let naive4 = naive_like(&gate4);
    let naive8 = naive_like(&gate8);

    println!(
        "{}",
        [
            "x", "gelu", "fsm_bsl128", "fsm_bsl1024", "bern4_bsl128", "bern4_bsl1024",
            "naive_si_4b", "naive_si_8b", "gate_si_4b", "gate_si_8b",
        ]
        .join("\t")
    );
    let mut x = -3.0f64;
    while x <= 0.5 + 1e-9 {
        let row = [
            x,
            ref_fn::gelu(x),
            fsm128.eval(x),
            fsm1024.eval(x),
            bern128.eval(x),
            bern1024.eval(x),
            naive4.eval_value(x),
            naive8.eval_value(x),
            gate4.eval_value(x),
            gate8.eval_value(x),
        ];
        println!(
            "{}",
            row.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>().join("\t")
        );
        x += 0.05;
    }

    // The qualitative claims of Fig. 2, checked numerically.
    let xs = ascend_bench::gelu_inputs(2000, 42);
    let dip: Vec<f64> = xs.iter().copied().filter(|v| (-2.0..=-0.3).contains(v)).collect();
    let fsm_dip = ascend_bench::gelu_mae(|v| fsm1024.eval(v), &dip);
    let gate_dip = ascend_bench::gelu_mae(|v| gate8.eval_value(v), &dip);
    let naive_dip = ascend_bench::gelu_mae(|v| naive8.eval_value(v), &dip);
    println!();
    println!("# dip-region (−2 ≤ x ≤ −0.3) MAE:");
    println!("#   FSM @1024b        {fsm_dip:.4}   (saturates at 0 — Fig. 2a)");
    println!("#   naive SI @8b      {naive_dip:.4}   (monotone hull — Fig. 2c)");
    println!("#   gate-assisted @8b {gate_dip:.4}   (tracks the dip — Fig. 2d)");
}
