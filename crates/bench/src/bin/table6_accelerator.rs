//! Table VI — accelerator-level evaluation of softmax configurations.
//!
//! Trains one SC-friendly ViT with the two-stage pipeline, then sweeps the
//! paper's `[By, s1, s2, k]` quadruples: for each, compiles the SC engine,
//! measures end-to-end SC accuracy, and costs `k` parallel softmax blocks
//! inside the full accelerator area model. Pass `--quick` for a smoke run.
#![forbid(unsafe_code)]

use ascend::accelerator::{AcceleratorConfig, AcceleratorModel};
use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::pipeline::{Pipeline, PipelineConfig};
use ascend::report::{eng, TextTable};
use sc_hw::CellLibrary;

/// The paper's Table VI configuration quadruples `[By, s1, s2, k]`.
const QUADS: [(usize, usize, usize, usize); 4] =
    [(4, 128, 2, 2), (8, 32, 8, 3), (16, 128, 16, 4), (32, 128, 16, 4)];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ascend_bench::banner("SC accelerator configurations", "Table VI");

    let cfg = if quick {
        PipelineConfig {
            classes: 10,
            n_train: 300,
            n_test: 120,
            stage1_epochs: 2,
            stage2_epochs: 1,
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig {
            classes: 10,
            n_train: 1200,
            n_test: 400,
            stage1_epochs: 8,
            stage2_epochs: 3,
            verbose: true,
            ..PipelineConfig::default()
        }
    };
    println!("training the SC-friendly ViT (two-stage pipeline)…");
    let mut pipeline = Pipeline::new(cfg);
    let report = pipeline.run();
    println!("{}", report.table());

    let model = pipeline.final_model.as_ref().expect("pipeline trains the final model");
    let (train_set, test_set) = pipeline.datasets();
    let calib_idx: Vec<usize> = (0..32.min(train_set.len())).collect();
    let calib = train_set.patches(&calib_idx, model.config.patch);
    let lib = CellLibrary::paper_calibrated();

    let mut table = TextTable::new(vec![
        "[By, s1, s2, k]",
        "Softmax area (um2)",
        "*Accelerator area (um2)",
        "Softmax share",
        "SC accuracy (%)",
    ]);

    for (by, s1, s2, k) in QUADS {
        let ecfg = EngineConfig::from_quad(by, s1, s2, k);
        let engine = ScEngine::compile(model, ecfg, &calib, calib_idx.len())
            .expect("engine compiles for trained model");
        let acc_cfg = AcceleratorConfig {
            softmax_by: by,
            softmax_s1: s1,
            softmax_s2: s2,
            softmax_k: k,
            array_rows: 16,
        };
        // Arrays are costed at the paper's accelerator tile geometry
        // (dim 256 ViT, 16 tokens/wave); the softmax blocks are the ones
        // compiled for this model. This reproduces the share narrative of
        // Table VI without pretending our reduced-width ViT fills a full
        // accelerator.
        let tile = ascend_vit::VitConfig { dim: 256, mlp_ratio: 2, ..model.config };
        let hw = AcceleratorModel::cost(&lib, &engine, &tile, &acc_cfg)
            .expect("accelerator model costs");
        let accuracy = engine.accuracy(test_set, 64).expect("SC inference runs") * 100.0;
        table.row(vec![
            format!("[{by}, {s1}, {s2}, {k}]"),
            eng(hw.breakdown().softmax),
            eng(hw.breakdown().total()),
            format!("{:.2}%", hw.breakdown().softmax_share_pct()),
            format!("{accuracy:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("* k softmax blocks are instantiated for full parallelism (Table VI note).");
    println!("Expected shape: softmax share small at the low end (~1.5% in the paper),");
    println!("area grows >30x across configs while accuracy improves by a point or two;");
    println!("[8, 32, 8, 3] is the recommended knee.");
}
