//! Table III — GELU blocks: area / delay / ADP / MAE.
//!
//! Baselines: Bernstein polynomial \[18\] with 4/5/6 terms at 1024-bit BSL.
//! Ours: gate-assisted SI with 2/4/8-bit output BSL (256-bit accumulated
//! input stream), output scale calibrated on the input distribution.
#![forbid(unsafe_code)]

use ascend::report::{eng, TextTable};
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::bernstein::{BernsteinConfig, gelu_block as bernstein_gelu};
use sc_nonlinear::gate_si::gelu_block_calibrated;

fn main() {
    ascend_bench::banner("GELU block comparison", "Table III");
    let lib = CellLibrary::paper_calibrated();
    let xs = ascend_bench::gelu_inputs(4000, 42);

    let mut table = TextTable::new(vec![
        "Design", "Config", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE",
    ]);

    let mut bern_adp = Vec::new();
    let mut bern_mae = Vec::new();
    for terms in [4usize, 5, 6] {
        let block = bernstein_gelu(terms, 1024).expect("valid baseline");
        let cost = blocks::bernstein(
            &lib,
            &BernsteinConfig { terms, bsl: 1024, ..Default::default() },
            false,
        );
        let mae = ascend_bench::gelu_mae(|x| block.eval(x), &xs);
        bern_adp.push(cost.adp());
        bern_mae.push(mae);
        table.row(vec![
            "Bernstein [18]".into(),
            format!("{terms}-term, 1024b"),
            eng(cost.area_um2),
            eng(cost.delay_ns()),
            eng(cost.adp()),
            format!("{mae:.4}"),
        ]);
    }

    let mut ours_adp = Vec::new();
    let mut ours_mae = Vec::new();
    for by in [2usize, 4, 8] {
        let block = gelu_block_calibrated(256, by, &xs).expect("calibrates");
        let cost = blocks::gate_si(&lib, &block);
        let mae = ascend_bench::gelu_mae(|x| block.eval_value(x), &xs);
        ours_adp.push(cost.adp());
        ours_mae.push(mae);
        table.row(vec![
            "Ours (gate-SI)".into(),
            format!("{by}b BSL"),
            eng(cost.area_um2),
            eng(cost.delay_ns()),
            eng(cost.adp()),
            format!("{mae:.4}"),
        ]);
    }

    println!("{}", table.render());
    println!("Headline comparisons (paper: 3.36–5.29x ADP reduction, 56.3–71.7% MAE reduction):");
    println!(
        "  8b gate-SI vs 4-term/1024b Bernstein: ADP x{:.2}, MAE -{:.1}%",
        bern_adp[0] / ours_adp[2],
        100.0 * (1.0 - ours_mae[2] / bern_mae[0])
    );
    println!(
        "  8b gate-SI vs 6-term/1024b Bernstein: ADP x{:.2}, MAE -{:.1}%",
        bern_adp[2] / ours_adp[2],
        100.0 * (1.0 - ours_mae[2] / bern_mae[2])
    );
    println!(
        "  2b vs 8b gate-SI (allowing larger error): ADP x{:.2} further reduction",
        ours_adp[2] / ours_adp[0]
    );
}
