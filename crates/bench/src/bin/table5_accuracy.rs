//! Table V — ViT accuracy under the two-stage training pipeline.
//!
//! Runs the full pipeline (paper §V) on SynthCIFAR-10 and SynthCIFAR-100
//! (the documented CIFAR substitutions, DESIGN.md S2/S3) and prints the
//! five Table V rows per dataset. Pass `--quick` for a smoke-scale run.
#![forbid(unsafe_code)]

use ascend::pipeline::{Pipeline, PipelineConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ascend_bench::banner("two-stage training pipeline accuracy", "Table V");

    for classes in [10usize, 100] {
        let cfg = if quick {
            PipelineConfig {
                classes,
                n_train: 300,
                n_test: 120,
                stage1_epochs: 2,
                stage2_epochs: 1,
                verbose: false,
                ..PipelineConfig::default()
            }
        } else {
            PipelineConfig {
                classes,
                n_train: if classes == 10 { 1200 } else { 2000 },
                n_test: if classes == 10 { 400 } else { 600 },
                stage1_epochs: 8,
                stage2_epochs: 3,
                verbose: true,
                ..PipelineConfig::default()
            }
        };
        println!("--- SynthCIFAR-{classes} ---");
        let report = Pipeline::new(cfg).run();
        println!("{}", report.table());

        let prog = report.accuracy("BN-ViT + progressive quant").unwrap_or(0.0);
        let base = report.accuracy("Baseline low-precision BN-ViT").unwrap_or(0.0);
        let appr = report.accuracy("BN-ViT + progressive quant + appr").unwrap_or(0.0);
        let ft = report
            .accuracy("BN-ViT + progressive quant + appr-aware ft")
            .unwrap_or(0.0);
        println!("progressive quantization gain: {:+.2} pts (paper: +32.99 / +21.4)", prog - base);
        println!("approximate-softmax cost:     {:+.2} pts (paper: −1.85 / −1.8)", appr - prog);
        println!("fine-tuning recovery:          {:+.2} pts (paper: +1.52 / +0.82)", ft - appr);
        println!();
    }
}
