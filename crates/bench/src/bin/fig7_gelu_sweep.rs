//! Fig. 7 — GELU ADP and MAE across BSLs.
//!
//! Bernstein 4/5/6-term at BSL ∈ {128, 256, 1024} vs gate-assisted SI at
//! output BSL ∈ {2, 4, 8}: two aligned series (ADP bars, MAE bars).
#![forbid(unsafe_code)]

use ascend::report::{eng, TextTable};
use sc_hw::{blocks, CellLibrary};
use sc_nonlinear::bernstein::{gelu_block as bernstein_gelu, BernsteinConfig};
use sc_nonlinear::gate_si::gelu_block_calibrated;

fn main() {
    ascend_bench::banner("GELU blocks across BSLs", "Fig. 7");
    let lib = CellLibrary::paper_calibrated();
    let xs = ascend_bench::gelu_inputs(3000, 42);

    let mut table =
        TextTable::new(vec!["Series", "BSL", "ADP (um2*ns)", "MAE"]);

    for terms in [4usize, 5, 6] {
        for bsl in [128usize, 256, 1024] {
            let block = bernstein_gelu(terms, bsl).expect("valid baseline");
            let cost = blocks::bernstein(
                &lib,
                &BernsteinConfig { terms, bsl, ..Default::default() },
                false,
            );
            let mae = ascend_bench::gelu_mae(|x| block.eval(x), &xs);
            table.row(vec![
                format!("{terms}-term Bern. poly."),
                format!("{bsl}b"),
                eng(cost.adp()),
                format!("{mae:.4}"),
            ]);
        }
    }
    for by in [2usize, 4, 8] {
        let block = gelu_block_calibrated(256, by, &xs).expect("calibrates");
        let cost = blocks::gate_si(&lib, &block);
        let mae = ascend_bench::gelu_mae(|x| block.eval_value(x), &xs);
        table.row(vec![
            "Gate-Assisted SI (ours)".into(),
            format!("{by}b"),
            eng(cost.adp()),
            format!("{mae:.4}"),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: Bernstein ADP grows with BSL while MAE falls slowly;");
    println!("gate-SI sits orders of magnitude lower in delay-driven ADP at equal or better MAE.");
}
