//! Ablation — the re-scaling blocks' rounding mode and the `/k` gain error.
//!
//! DESIGN.md calls out two design choices the paper leaves implicit:
//! (1) which bit of each sub-sample group the re-scaler taps (floor /
//! round / ceil behaviour), and (2) the gain error absorbed when the `/k`
//! scale folding does not land on an even tap count. This harness
//! quantifies both on the recommended softmax configuration.
#![forbid(unsafe_code)]

use ascend::report::TextTable;
use sc_core::rescale::RescaleMode;
use sc_nonlinear::softmax_iter::{IterSoftmaxBlock, IterSoftmaxConfig};

fn main() {
    ascend_bench::banner("re-scaling ablations", "DESIGN.md §3 / paper Table II");
    let rows = ascend_bench::softmax_rows(120, 64, 7);

    // (1) Rounding mode of every re-scaler in the block.
    let mut table = TextTable::new(vec!["Rescale mode", "MAE (By=8)", "MAE (By=16)"]);
    for mode in [RescaleMode::Floor, RescaleMode::Round, RescaleMode::Ceil] {
        let mae = |by: usize| {
            IterSoftmaxBlock::new(IterSoftmaxConfig {
                by,
                ay: 1.0 / 64.0,
                ax: 3.0,
                mode,
                ..IterSoftmaxConfig::default()
            })
            .expect("feasible")
            .mae_levels(&rows)
            .expect("runs")
        };
        table.row(vec![format!("{mode:?}"), format!("{:.4}", mae(8)), format!("{:.4}", mae(16))]);
    }
    println!("{}", table.render());

    // (2) k sweep: the iteration-error vs gain-error trade.
    let mut table = TextTable::new(vec!["k", "MAE (By=8)", "note"]);
    for k in [1usize, 2, 3, 4, 6, 8] {
        let block = IterSoftmaxBlock::new(IterSoftmaxConfig {
            k,
            by: 8,
            ay: 1.0 / 64.0,
            ax: 3.0,
            ..IterSoftmaxConfig::default()
        })
        .expect("feasible");
        let mae = block.mae_levels(&rows).expect("runs");
        let note = match k {
            1 => "single Euler step",
            3 => "paper's recommended k (and k blocks in the accelerator)",
            _ => "",
        };
        table.row(vec![k.to_string(), format!("{mae:.4}"), note.into()]);
    }
    println!("{}", table.render());
    println!("Euler error falls with k while area grows k-fold (Table VI note);");
    println!("non-power-of-two k additionally pays the /k gain error documented in");
    println!("sc_core::rescale::align_scale.");
}
