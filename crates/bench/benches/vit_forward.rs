//! Criterion benchmarks of ViT inference: float model vs SC engine.

use ascend::engine::{EngineConfig, ScEngine};
use ascend::InferenceBackend;
use ascend::fixture::{train_or_load, FixtureRecipe};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vit(c: &mut Criterion) {
    // Checkpoint-cached fixture shared with the other benches.
    let mut recipe = FixtureRecipe::tiny("bench-vit", 5);
    recipe.n_train = 64;
    recipe.n_test = 16;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;
    let (model, train, _test) = train_or_load(&recipe);
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).expect("compiles");

    let patches = train.patches(&(0..8).collect::<Vec<_>>(), 4);
    c.bench_function("vit_float_predict_batch8", |b| {
        b.iter(|| black_box(model.predict(black_box(&patches), 8)))
    });
    c.bench_function("vit_sc_engine_batch8", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), 8)))
    });
}

criterion_group!(benches, bench_vit);
criterion_main!(benches);
