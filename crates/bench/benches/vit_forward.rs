//! Criterion benchmarks of ViT inference: float model vs SC engine.

use ascend::engine::{EngineConfig, ScEngine};
use ascend_vit::data::synth_cifar;
use ascend_vit::train::{train_model, TrainConfig};
use ascend_vit::{PrecisionPlan, VitConfig, VitModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vit(c: &mut Criterion) {
    let cfg = VitConfig {
        image: 8,
        patch: 4,
        dim: 16,
        layers: 2,
        heads: 2,
        classes: 4,
        ..Default::default()
    };
    let mut model = VitModel::new(cfg);
    let (train, _test) = synth_cifar(4, 64, 16, 8, 5);
    train_model(
        &mut model,
        None,
        &train,
        &_test,
        &TrainConfig { epochs: 1, batch: 16, ..Default::default() },
    );
    model.set_plan(PrecisionPlan::w2_a2_r16());
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    model.calibrate_steps(&calib, 16);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).expect("compiles");

    let patches = train.patches(&(0..8).collect::<Vec<_>>(), 4);
    c.bench_function("vit_float_predict_batch8", |b| {
        b.iter(|| black_box(model.predict(black_box(&patches), 8)))
    });
    c.bench_function("vit_sc_engine_batch8", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), 8)))
    });
}

criterion_group!(benches, bench_vit);
criterion_main!(benches);
