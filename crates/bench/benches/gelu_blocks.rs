//! Criterion benchmarks of the GELU blocks across circuit families.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_nonlinear::bernstein::gelu_block as bernstein_gelu;
use sc_nonlinear::fsm::{FsmGelu, FsmGeluConfig};
use sc_nonlinear::gate_si::gelu_block_calibrated;
use std::hint::black_box;

fn bench_gelu_families(c: &mut Criterion) {
    let xs: Vec<f64> = (0..64).map(|i| -3.0 + i as f64 * 0.1).collect();

    let fsm = FsmGelu::new(FsmGeluConfig { bsl: 1024, ..Default::default() }).expect("valid");
    c.bench_function("gelu_fsm_1024b", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(fsm.eval(black_box(x)));
            }
        })
    });

    let bern = bernstein_gelu(4, 1024).expect("valid");
    c.bench_function("gelu_bernstein_4term_1024b", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(bern.eval(black_box(x)));
            }
        })
    });

    let dist: Vec<f64> = (0..200).map(|i| -3.0 + i as f64 * 0.03).collect();
    let gate = gelu_block_calibrated(256, 8, &dist).expect("calibrates");
    c.bench_function("gelu_gate_si_8b", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(gate.eval_value(black_box(x)));
            }
        })
    });
}

criterion_group!(benches, bench_gelu_families);
criterion_main!(benches);
