//! Criterion benchmarks of the serving runtime: serial `ScEngine::forward`
//! vs the parallel `BatchRunner` at increasing worker counts.
//!
//! The acceptance bar for the runtime is > 1.5× images/s over serial at
//! 4 workers on a multi-core runner; compare `serve_serial_batch32`
//! against `serve_runner_w4_batch32`.

use ascend::engine::EngineConfig;
use ascend::InferenceBackend;
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{BatchRunner, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    // Checkpoint-cached fixture: 1 FP epoch, calibrate, no QAT — bench
    // runs reuse the trained model instead of paying training on every
    // invocation.
    let mut recipe = FixtureRecipe::tiny("bench-throughput", 5);
    recipe.n_train = 64;
    recipe.n_test = 32;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("compiles");

    let n = 32usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    c.bench_function("serve_serial_batch32", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), n).expect("forward")))
    });
    for workers in [1usize, 2, 4] {
        let runner = BatchRunner::new(
            &engine,
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("runner builds");
        c.bench_function(&format!("serve_runner_w{workers}_batch32"), |b| {
            b.iter(|| black_box(runner.run_batch(black_box(&patches), n).expect("run_batch")))
        });
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
