//! Criterion benchmarks of the serving runtime: serial `ScEngine::forward`
//! vs the persistent `ServePool` at increasing worker counts, plus the
//! pool-reuse vs spawn-per-call comparison that justifies keeping the
//! workers alive.
//!
//! Acceptance bars:
//! * parallel speedup — `serve_pool_w4_batch32` > 1.5× images/s over
//!   `serve_serial_batch32` on a multi-core runner;
//! * pool persistence — `serve_pool_reuse_tiny_requests` measurably
//!   faster than `serve_pool_spawn_per_call_tiny_requests`, since the
//!   spawn-per-call variant pays thread spawn + join on every call, which
//!   dominates for small-request workloads;
//! * observability overhead — `forward_instrumented_batch32` within
//!   noise of `forward_bare_batch32` (the [`InstrumentedBackend`] adds a
//!   handful of monotonic-clock reads and relaxed atomic adds per
//!   forward, nothing on the per-element path).
//!
//! The run also merges a `"throughput"` record into `BENCH_serve.json`
//! at the repo root (see `ascend_obs::BenchRecord`), tracking images/s
//! and instrumentation overhead across PRs.

use ascend::engine::EngineConfig;
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::instrument::InstrumentedBackend;
use ascend::serve::{ServeConfig, ServePool};
use ascend::InferenceBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Times `f` over `iters` calls and returns images/second.
fn images_per_second(images_per_call: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: first call pays lazy init, keep it out of the timing
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (images_per_call * iters) as f64 / start.elapsed().as_secs_f64()
}

fn bench_throughput(c: &mut Criterion) {
    // Checkpoint-cached fixture: 1 FP epoch, calibrate, no QAT — bench
    // runs reuse the trained model instead of paying training on every
    // invocation.
    let mut recipe = FixtureRecipe::tiny("bench-throughput", 5);
    recipe.n_train = 64;
    recipe.n_test = 32;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("compiles");
    let engine = Arc::new(engine);

    let n = 32usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    c.bench_function("serve_serial_batch32", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), n).expect("forward")))
    });
    for workers in [1usize, 2, 4] {
        let pool = ServePool::new(
            Arc::clone(&engine),
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("pool builds");
        c.bench_function(&format!("serve_pool_w{workers}_batch32"), |b| {
            b.iter(|| black_box(pool.run_batch(black_box(&patches), n).expect("run_batch")))
        });
    }

    // Pool reuse vs spawn-per-call, on a small-request workload where the
    // per-call thread churn is proportionally largest: a 4-image call
    // carved into single-image requests, the shape of interactive traffic.
    let tiny_n = 4usize;
    let tiny = test.patches(&(0..tiny_n).collect::<Vec<_>>(), 4);
    let small = ServeConfig { workers: 4, micro_batch: 1, queue_depth: 8 };
    let reused = ServePool::new(Arc::clone(&engine), small).expect("pool builds");
    c.bench_function("serve_pool_reuse_tiny_requests", |b| {
        b.iter(|| black_box(reused.run_batch(black_box(&tiny), tiny_n).expect("run_batch")))
    });
    c.bench_function("serve_pool_spawn_per_call_tiny_requests", |b| {
        b.iter(|| {
            // The anti-pattern the persistent pool replaces: spawn the
            // workers, serve once, join them — every single call.
            let pool = ServePool::new(Arc::clone(&engine), small).expect("pool builds");
            let out = black_box(pool.run_batch(black_box(&tiny), tiny_n).expect("run_batch"));
            pool.shutdown();
            out
        })
    });

    // Instrumentation overhead: the same forward with and without the
    // per-stage StageTimer wrapped around it. The wrapper must stay
    // within noise — it reads the clock a handful of times per forward
    // and never touches the per-element compute.
    let instrumented = InstrumentedBackend::new(&*engine);
    c.bench_function("forward_bare_batch32", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), n).expect("forward")))
    });
    c.bench_function("forward_instrumented_batch32", |b| {
        b.iter(|| black_box(instrumented.forward(black_box(&patches), n).expect("forward")))
    });

    // The "throughput" perf-trajectory record: serial vs pooled images/s,
    // the instrumented/bare overhead ratio, and the pool's queue-wait
    // split, merged into BENCH_serve.json at the repo root.
    const ITERS: usize = 10;
    let serial = images_per_second(n, ITERS, || {
        black_box(engine.forward(black_box(&patches), n).expect("forward"));
    });
    let wrapped = images_per_second(n, ITERS, || {
        black_box(instrumented.forward(black_box(&patches), n).expect("forward"));
    });
    let pool = ServePool::new(
        Arc::clone(&engine),
        ServeConfig { workers: 4, micro_batch: 4, queue_depth: 0 },
    )
    .expect("pool builds");
    let pooled = images_per_second(n, ITERS, || {
        black_box(pool.run_batch(black_box(&patches), n).expect("run_batch"));
    });
    let obs = pool.obs();
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let record = ascend_obs::BenchRecord::new("throughput")
        .num("serial_images_per_s", serial)
        .num("pool_w4_images_per_s", pooled)
        .num("instrumented_images_per_s", wrapped)
        .num("instrumented_over_bare", if serial > 0.0 { wrapped / serial } else { 0.0 })
        .num("queue_wait_p50_ms", ms(obs.queue_wait().snapshot().percentile(50.0)))
        .num("queue_wait_p95_ms", ms(obs.queue_wait().snapshot().percentile(95.0)))
        .num("service_p50_ms", ms(obs.service().snapshot().percentile(50.0)))
        .num("service_p95_ms", ms(obs.service().snapshot().percentile(95.0)))
        .int("batch_images", n as u64)
        .int("iters", ITERS as u64)
        .text("backend", engine.name());
    // Benches run with the package dir as cwd; anchor the artifact at the
    // workspace root regardless.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match record.write_merged(&path) {
        Ok(()) => println!("merged \"throughput\" record into {}", path.display()),
        Err(e) => println!("BENCH_serve.json not written: {e}"),
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
