//! Criterion benchmarks of the serving runtime: serial `ScEngine::forward`
//! vs the parallel `BatchRunner` at increasing worker counts.
//!
//! The acceptance bar for the runtime is > 1.5× images/s over serial at
//! 4 workers on a multi-core runner; compare `serve_serial_batch32`
//! against `serve_runner_w4_batch32`.

use ascend::engine::{EngineConfig, ScEngine};
use ascend::serve::{BatchRunner, ServeConfig};
use ascend_vit::data::synth_cifar;
use ascend_vit::train::{train_model, TrainConfig};
use ascend_vit::{PrecisionPlan, VitConfig, VitModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let cfg = VitConfig {
        image: 8,
        patch: 4,
        dim: 16,
        layers: 2,
        heads: 2,
        classes: 4,
        ..Default::default()
    };
    let mut model = VitModel::new(cfg);
    let (train, test) = synth_cifar(4, 64, 32, 8, 5);
    train_model(
        &mut model,
        None,
        &train,
        &test,
        &TrainConfig { epochs: 1, batch: 16, ..Default::default() },
    );
    model.set_plan(PrecisionPlan::w2_a2_r16());
    let calib = train.patches(&(0..16).collect::<Vec<_>>(), 4);
    model.calibrate_steps(&calib, 16);
    let engine = ScEngine::compile(&model, EngineConfig::default(), &calib, 16).expect("compiles");

    let n = 32usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    c.bench_function("serve_serial_batch32", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), n).expect("forward")))
    });
    for workers in [1usize, 2, 4] {
        let runner = BatchRunner::new(
            &engine,
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("runner builds");
        c.bench_function(&format!("serve_runner_w{workers}_batch32"), |b| {
            b.iter(|| black_box(runner.run_batch(black_box(&patches), n).expect("run_batch")))
        });
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
