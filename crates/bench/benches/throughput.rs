//! Criterion benchmarks of the serving runtime: serial `ScEngine::forward`
//! vs the persistent `ServePool` at increasing worker counts, plus the
//! pool-reuse vs spawn-per-call comparison that justifies keeping the
//! workers alive.
//!
//! Acceptance bars:
//! * parallel speedup — `serve_pool_w4_batch32` > 1.5× images/s over
//!   `serve_serial_batch32` on a multi-core runner;
//! * pool persistence — `serve_pool_reuse_tiny_requests` measurably
//!   faster than `serve_pool_spawn_per_call_tiny_requests`, since the
//!   spawn-per-call variant pays thread spawn + join on every call, which
//!   dominates for small-request workloads.

use ascend::engine::EngineConfig;
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::serve::{ServeConfig, ServePool};
use ascend::InferenceBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_throughput(c: &mut Criterion) {
    // Checkpoint-cached fixture: 1 FP epoch, calibrate, no QAT — bench
    // runs reuse the trained model instead of paying training on every
    // invocation.
    let mut recipe = FixtureRecipe::tiny("bench-throughput", 5);
    recipe.n_train = 64;
    recipe.n_test = 32;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("compiles");
    let engine = Arc::new(engine);

    let n = 32usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    c.bench_function("serve_serial_batch32", |b| {
        b.iter(|| black_box(engine.forward(black_box(&patches), n).expect("forward")))
    });
    for workers in [1usize, 2, 4] {
        let pool = ServePool::new(
            Arc::clone(&engine),
            ServeConfig { workers, micro_batch: 4, queue_depth: 0 },
        )
        .expect("pool builds");
        c.bench_function(&format!("serve_pool_w{workers}_batch32"), |b| {
            b.iter(|| black_box(pool.run_batch(black_box(&patches), n).expect("run_batch")))
        });
    }

    // Pool reuse vs spawn-per-call, on a small-request workload where the
    // per-call thread churn is proportionally largest: a 4-image call
    // carved into single-image requests, the shape of interactive traffic.
    let tiny_n = 4usize;
    let tiny = test.patches(&(0..tiny_n).collect::<Vec<_>>(), 4);
    let small = ServeConfig { workers: 4, micro_batch: 1, queue_depth: 8 };
    let reused = ServePool::new(Arc::clone(&engine), small).expect("pool builds");
    c.bench_function("serve_pool_reuse_tiny_requests", |b| {
        b.iter(|| black_box(reused.run_batch(black_box(&tiny), tiny_n).expect("run_batch")))
    });
    c.bench_function("serve_pool_spawn_per_call_tiny_requests", |b| {
        b.iter(|| {
            // The anti-pattern the persistent pool replaces: spawn the
            // workers, serve once, join them — every single call.
            let pool = ServePool::new(Arc::clone(&engine), small).expect("pool builds");
            let out = black_box(pool.run_batch(black_box(&tiny), tiny_n).expect("run_batch"));
            pool.shutdown();
            out
        })
    });
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
