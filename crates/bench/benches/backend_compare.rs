//! Criterion comparison of the [`InferenceBackend`] implementations on the
//! same checkpoint: SC-exact vs float-reference (vs the zero-rate fault
//! wrapper, to price the decorator).
//!
//! This is the paper's accuracy/efficiency trade measured end to end in
//! software: `backend_ref_batch32` should beat `backend_sc_batch32` by a
//! wide margin (no bit-level nonlinear blocks), and
//! `backend_fault0_sc_batch32` should cost the same as bare SC (rate 0
//! passes inputs through untouched).

use ascend::engine::EngineConfig;
use ascend::fixture::{session_or_load, FixtureRecipe};
use ascend::{BackendKind, InferenceBackend};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut recipe = FixtureRecipe::tiny("bench-backends", 5);
    recipe.n_train = 64;
    recipe.n_test = 32;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;

    let (sc, _train, test) =
        session_or_load(&recipe, EngineConfig::default(), BackendKind::Sc).expect("sc session");
    let (reference, _, _) =
        session_or_load(&recipe, EngineConfig::default(), BackendKind::Ref).expect("ref session");

    let n = 32usize;
    let patches = test.patches(&(0..n).collect::<Vec<_>>(), 4);

    c.bench_function("backend_sc_batch32", |b| {
        b.iter(|| black_box(sc.forward(black_box(&patches), n).expect("sc forward")))
    });
    c.bench_function("backend_ref_batch32", |b| {
        b.iter(|| black_box(reference.forward(black_box(&patches), n).expect("ref forward")))
    });

    // The decorator at rate 0: the delegation overhead must be noise.
    let fault0 = ascend::FaultInjectingBackend::new(sc.backend(), 0.0, 7).expect("wrapper");
    c.bench_function("backend_fault0_sc_batch32", |b| {
        b.iter(|| black_box(fault0.forward(black_box(&patches), n).expect("fault forward")))
    });
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
