//! Criterion benchmarks of the softmax blocks (ours vs FSM baseline),
//! including the bit-level vs level-domain simulator gap.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_nonlinear::softmax_fsm::{FsmSoftmax, FsmSoftmaxConfig};
use sc_nonlinear::softmax_iter::{iterative_softmax_float, IterSoftmaxBlock, IterSoftmaxConfig};
use std::hint::black_box;

fn logits(m: usize) -> Vec<f64> {
    (0..m).map(|i| ((i as f64) * 0.37).sin() * 1.5).collect()
}

fn bench_iterative(c: &mut Criterion) {
    let block = IterSoftmaxBlock::new(IterSoftmaxConfig::default()).expect("feasible");
    let x = logits(64);
    c.bench_function("iter_softmax_bit_level_m64", |b| {
        b.iter(|| black_box(block.run(black_box(&x))))
    });
    c.bench_function("iter_softmax_level_domain_m64", |b| {
        b.iter(|| black_box(block.run_levels(black_box(&x))))
    });
    c.bench_function("iter_softmax_float_reference_m64", |b| {
        b.iter(|| black_box(iterative_softmax_float(black_box(&x), 3)))
    });
}

fn bench_fsm_baseline(c: &mut Criterion) {
    let block =
        FsmSoftmax::new(FsmSoftmaxConfig { m: 64, bsl: 128, ..Default::default() }).expect("valid");
    let x = logits(64);
    c.bench_function("fsm_softmax_128b_m64", |b| b.iter(|| black_box(block.run(black_box(&x)))));
}

criterion_group!(benches, bench_iterative, bench_fsm_baseline);
criterion_main!(benches);
