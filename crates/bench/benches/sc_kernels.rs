//! Criterion micro-benchmarks of the SC arithmetic substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::bsn::{self, BitonicNetwork};
use sc_core::rescale::{rescale, RescaleMode};
use sc_core::{ttmul, Bitstream, ThermStream};
use std::hint::black_box;

fn bench_bsn_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsn_sort");
    for n in [64usize, 256, 1024] {
        let net = BitonicNetwork::new(n);
        let bits = Bitstream::from_fn(n, |i| i % 3 == 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(net.sort(black_box(&bits))))
        });
    }
    group.finish();
}

fn bench_bsn_add(c: &mut Criterion) {
    let streams: Vec<ThermStream> =
        (0..64).map(|i| ThermStream::from_level((i % 9) - 4, 16, 1.0).expect("valid")).collect();
    let refs: Vec<&ThermStream> = streams.iter().collect();
    c.bench_function("bsn_add_64x16b", |b| b.iter(|| black_box(bsn::add(black_box(&refs)))));
}

fn bench_ttmul(c: &mut Criterion) {
    let a = ThermStream::from_level(-1, 2, 0.5).expect("valid");
    let y = ThermStream::from_level(3, 16, 0.125).expect("valid");
    c.bench_function("ttmul_2b_x_16b", |b| {
        b.iter(|| black_box(ttmul::mul(black_box(&a), black_box(&y))))
    });
}

fn bench_rescale(c: &mut Criterion) {
    let x = ThermStream::from_level(100, 1024, 0.01).expect("valid");
    c.bench_function("rescale_1024_by_32", |b| {
        b.iter(|| black_box(rescale(black_box(&x), 32, RescaleMode::Round)))
    });
}

criterion_group!(benches, bench_bsn_sort, bench_bsn_add, bench_ttmul, bench_rescale);
criterion_main!(benches);
