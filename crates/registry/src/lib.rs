//! # ascend-registry — multi-model, multi-tenant serving registry
//!
//! One process, N named models. Each model is registered as a
//! [`ModelSpec`] — a name plus where its weights come from — and is
//! **lazily materialized** on first request: the registry opens the
//! ASCNDART artifact through [`ascend_io`]'s lazy [`ArtifactReader`]
//! (per-section CRC validation, no whole-file read), compiles the
//! backend, wraps it in a [`Session`], and spawns the session's
//! [`ServePool`] — all while the model is in the `Warming` state, so a
//! cold model's first request pays the load once and every concurrent
//! request for the same model waits on that single flight instead of
//! loading again.
//!
//! [`ArtifactReader`]: ascend_io::format::ArtifactReader
//! [`ServePool`]: ascend::ServePool
//!
//! ## State machine
//!
//! ```text
//!            acquire() on a cold slot
//!   Cold ───────────────────────────────▶ Warming
//!    ▲                                       │
//!    │ load fails, or budget                 │ load + pool spawn
//!    │ eviction (LRU)                        ▼ succeed
//!    └─────────────────────────────────── Warm
//! ```
//!
//! * `Cold` — registered, nothing resident. The first [`acquire`] moves
//!   the slot to `Warming` and performs the load **outside** the
//!   registry lock.
//! * `Warming` — one thread (the *warmer*) is loading; every other
//!   [`acquire`] for the same model blocks on a condvar until the slot
//!   settles. A failed warm returns the slot to `Cold` and wakes the
//!   waiters, which retry (and typically surface the same typed error).
//! * `Warm` — an [`Arc<ModelHandle>`] holds the live [`Session`] and its
//!   running pool. Eviction only drops the *registry's* reference: any
//!   in-flight request still holds the handle (and the pool completes
//!   every admitted request before its workers exit), so eviction
//!   **drains gracefully and never kills in-flight work**.
//!
//! [`acquire`]: ModelRegistry::acquire
//!
//! ## Memory budget & LRU eviction
//!
//! [`RegistryConfig::memory_budget_bytes`] bounds the total
//! [`InferenceBackend::resident_bytes`] of warm models (`0` = unlimited).
//! When a warm completes and the total exceeds the budget, the registry
//! evicts least-recently-*acquired* warm models (a logical u64 tick, not
//! wall-clock time) until it fits. If evicting every other model still
//! leaves the newcomer over budget — the model alone is bigger than the
//! budget — the warm is rolled back and [`ScError::BudgetExceeded`] is
//! returned, which serving front-ends map to `503 Retry-After`.
//!
//! ## Zero-copy sharing
//!
//! Two registered models backed by the **same artifact path** share one
//! backend: the registry keeps a weak cache of loaded artifacts keyed by
//! `(path, backend kind)`, so the second warm finds the live `Arc` and
//! skips the load entirely. Shared backends are charged against the
//! budget **once** (residency is deduplicated by `Arc` identity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};

use ascend::{load_backend, BackendKind, EngineConfig, InferenceBackend, ServeConfig, Session};
use ascend_obs::{Counter, Gauge, Registry as MetricsRegistry};
use sc_core::ScError;

/// Observable lifecycle state of a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// Registered; nothing resident.
    Cold,
    /// One thread is loading the artifact and spawning the pool.
    Warming,
    /// Live: session and worker pool resident and serving.
    Warm,
}

impl ModelState {
    /// The HTTP/metrics-facing name (`"cold"` / `"warming"` / `"warm"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ModelState::Cold => "cold",
            ModelState::Warming => "warming",
            ModelState::Warm => "warm",
        }
    }

    /// The `/metrics` gauge encoding (cold 0, warming 1, warm 2).
    pub fn gauge_value(self) -> u64 {
        match self {
            ModelState::Cold => 0,
            ModelState::Warming => 1,
            ModelState::Warm => 2,
        }
    }
}

/// Where a model's weights come from.
#[derive(Clone)]
pub enum ModelSource {
    /// Lazily loaded from an ASCNDART artifact file on first request.
    Artifact {
        /// Path to the `.sceng` engine or `.ckpt` checkpoint artifact.
        path: PathBuf,
        /// Which backend to materialize from the artifact.
        backend: BackendKind,
    },
    /// An already-constructed backend, shared with the caller. Used by
    /// embedders and tests that need controllable backends; artifact
    /// sources are the production path.
    Shared(Arc<dyn InferenceBackend>),
}

/// A named model registration: name, weight source, and the serving
/// configuration its pool is spawned with when it warms.
#[derive(Clone)]
pub struct ModelSpec {
    /// Registry-unique model name (`[A-Za-z0-9._-]`, at most 64 chars).
    pub name: String,
    /// Where the weights come from.
    pub source: ModelSource,
    /// Pool shape used when the model warms.
    pub serve: ServeConfig,
}

impl ModelSpec {
    /// A spec serving `path` (an ASCNDART artifact) under `name` with the
    /// default SC backend and serving configuration.
    pub fn artifact(name: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        ModelSpec {
            name: name.into(),
            source: ModelSource::Artifact { path: path.into(), backend: BackendKind::Sc },
            serve: ServeConfig::default(),
        }
    }

    /// A spec serving an already-constructed shared backend under `name`.
    pub fn shared(name: impl Into<String>, backend: Arc<dyn InferenceBackend>) -> Self {
        ModelSpec { name: name.into(), source: ModelSource::Shared(backend), serve: ServeConfig::default() }
    }

    /// Overrides the backend kind (artifact sources only; no-op for
    /// shared sources).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        if let ModelSource::Artifact { backend, .. } = &mut self.source {
            *backend = kind;
        }
        self
    }

    /// Overrides the serving configuration used at warm time.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }
}

/// A live, warm model: the session (with its running pool), the shared
/// backend, and the resident-byte charge the registry accounted for it.
///
/// Handles are reference-counted: the registry holds one reference while
/// the model is warm, and every in-flight request holds its own, so
/// eviction never tears down a pool that still has work outstanding.
pub struct ModelHandle {
    name: String,
    backend: Arc<dyn InferenceBackend>,
    session: Session,
    bytes: usize,
}

impl ModelHandle {
    /// The model's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live session (its pool was spawned during warming).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The shared backend `Arc` — exposed so callers can verify that two
    /// models over one artifact really share one copy of the weights
    /// (`Arc::ptr_eq`).
    pub fn shared_backend(&self) -> &Arc<dyn InferenceBackend> {
        &self.backend
    }

    /// Bytes this model contributes to the registry's resident total
    /// (deduplicated across handles sharing one backend).
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }
}

/// Registry-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegistryConfig {
    /// Upper bound on the summed resident bytes of warm models; `0`
    /// means unlimited (no eviction).
    pub memory_budget_bytes: usize,
    /// Engine configuration used when compiling checkpoint artifacts.
    pub engine_config: EngineConfig,
}

/// Per-model `/metrics` handles, labeled with the model name.
struct ModelMetrics {
    state: Arc<Gauge>,
    resident: Arc<Gauge>,
    loads: Arc<Counter>,
    evictions: Arc<Counter>,
}

enum SlotState {
    Cold,
    Warming,
    Warm(Arc<ModelHandle>),
}

struct Slot {
    spec: ModelSpec,
    state: SlotState,
    /// Logical LRU tick of the last acquire (or warm completion). A u64
    /// counter, not wall-clock time: eviction order is deterministic and
    /// clock-independent.
    last_used: u64,
    metrics: ModelMetrics,
}

impl Slot {
    fn state_enum(&self) -> ModelState {
        match self.state {
            SlotState::Cold => ModelState::Cold,
            SlotState::Warming => ModelState::Warming,
            SlotState::Warm(_) => ModelState::Warm,
        }
    }
}

/// Weak cache entry enabling zero-copy backend sharing across models
/// registered over the same artifact.
struct SharedLoad {
    path: PathBuf,
    kind: BackendKind,
    backend: Weak<dyn InferenceBackend>,
}

struct Inner {
    slots: Vec<Slot>,
    shared: Vec<SharedLoad>,
    clock: u64,
}

/// The multi-model serving registry. See the [module docs](self) for the
/// state machine, budget semantics, and sharing model.
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    /// Signaled whenever a `Warming` slot settles (either way), waking
    /// the acquires parked on it.
    warmed: Condvar,
    budget: usize,
    engine_config: EngineConfig,
    metrics: MetricsRegistry,
    resident_gauge: Arc<Gauge>,
    models_gauge: Arc<Gauge>,
}

impl ModelRegistry {
    /// An empty registry with the given budget and engine configuration.
    pub fn new(config: RegistryConfig) -> Self {
        let metrics = MetricsRegistry::new();
        let resident_gauge = metrics.gauge(
            "ascend_registry_resident_bytes",
            "Deduplicated resident bytes across all warm models",
        );
        // The budget never changes after construction; set it once and
        // let the metrics registry keep the gauge alive.
        metrics
            .gauge(
                "ascend_registry_budget_bytes",
                "Configured memory budget in bytes (0 = unlimited)",
            )
            .set(u64::try_from(config.memory_budget_bytes).unwrap_or(u64::MAX));
        let models_gauge =
            metrics.gauge("ascend_registry_models", "Number of registered models");
        ModelRegistry {
            inner: Mutex::new(Inner { slots: Vec::new(), shared: Vec::new(), clock: 0 }),
            warmed: Condvar::new(),
            budget: config.memory_budget_bytes,
            engine_config: config.engine_config,
            metrics,
            resident_gauge,
            models_gauge,
        }
    }

    /// The configured memory budget in bytes (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn slot_index(inner: &Inner, name: &str) -> Option<usize> {
        inner.slots.iter().position(|s| s.spec.name == name)
    }

    /// Total resident bytes across warm models, charging each distinct
    /// backend once (models sharing one artifact share one copy).
    fn resident_locked(inner: &Inner) -> usize {
        let mut seen: Vec<&Arc<dyn InferenceBackend>> = Vec::new();
        let mut total = 0usize;
        for slot in &inner.slots {
            if let SlotState::Warm(handle) = &slot.state {
                if seen.iter().any(|b| Arc::ptr_eq(b, &handle.backend)) {
                    continue;
                }
                seen.push(&handle.backend);
                total = total.saturating_add(handle.bytes);
            }
        }
        total
    }

    fn update_registry_gauges_locked(&self, inner: &Inner) {
        self.resident_gauge
            .set(u64::try_from(Self::resident_locked(inner)).unwrap_or(u64::MAX));
        self.models_gauge.set(u64::try_from(inner.slots.len()).unwrap_or(u64::MAX));
    }

    fn validate_name(name: &str) -> Result<(), ScError> {
        if name.is_empty() || name.len() > 64 {
            return Err(ScError::InvalidParam {
                name: "model",
                reason: format!("model name must be 1..=64 characters, got {}", name.len()),
            });
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(ScError::InvalidParam {
                name: "model",
                reason: format!("model name `{name}` contains characters outside [A-Za-z0-9._-]"),
            });
        }
        Ok(())
    }

    /// Registers a model. Registration is cheap — nothing is loaded until
    /// the first [`acquire`](Self::acquire).
    ///
    /// # Errors
    ///
    /// [`ScError::InvalidParam`] for a malformed or duplicate name.
    pub fn register(&self, spec: ModelSpec) -> Result<(), ScError> {
        Self::validate_name(&spec.name)?;
        let mut inner = self.lock();
        if Self::slot_index(&inner, &spec.name).is_some() {
            return Err(ScError::InvalidParam {
                name: "model",
                reason: format!("model `{}` is already registered", spec.name),
            });
        }
        let label = |metric: &str| format!("{metric}{{model=\"{}\"}}", spec.name);
        let metrics = ModelMetrics {
            state: self.metrics.gauge(
                &label("ascend_model_state"),
                "Model lifecycle state (0 cold, 1 warming, 2 warm)",
            ),
            resident: self.metrics.gauge(
                &label("ascend_model_resident_bytes"),
                "Resident weight bytes while the model is warm",
            ),
            loads: self.metrics.counter(
                &label("ascend_model_loads_total"),
                "Completed cold loads (warm transitions) of this model",
            ),
            evictions: self.metrics.counter(
                &label("ascend_model_evictions_total"),
                "Times this model was evicted back to cold",
            ),
        };
        inner.slots.push(Slot { spec, state: SlotState::Cold, last_used: 0, metrics });
        self.update_registry_gauges_locked(&inner);
        Ok(())
    }

    /// Acquires a live handle for `name`, warming the model first if it
    /// is cold (see the [module docs](self) for the single-flight and
    /// eviction protocol). The returned handle stays valid even if the
    /// model is evicted while the caller still uses it.
    ///
    /// # Errors
    ///
    /// * [`ScError::UnknownModel`] — no such registration.
    /// * [`ScError::Io`] with `not_found` — the artifact path does not
    ///   exist (front-ends map this to 404).
    /// * [`ScError::CorruptArtifact`] — the artifact exists but fails
    ///   validation (500).
    /// * [`ScError::BudgetExceeded`] — the model alone does not fit in
    ///   the memory budget even after evicting everything else (503).
    pub fn acquire(&self, name: &str) -> Result<Arc<ModelHandle>, ScError> {
        let mut inner = self.lock();
        loop {
            let Some(idx) = Self::slot_index(&inner, name) else {
                return Err(ScError::UnknownModel { model: name.to_string() });
            };
            let state = inner.slots.get(idx).map(Slot::state_enum);
            match state {
                None => {
                    return Err(ScError::UnknownModel { model: name.to_string() });
                }
                Some(ModelState::Warm) => {
                    inner.clock += 1;
                    let tick = inner.clock;
                    let Some(slot) = inner.slots.get_mut(idx) else { continue };
                    slot.last_used = tick;
                    if let SlotState::Warm(handle) = &slot.state {
                        return Ok(Arc::clone(handle));
                    }
                }
                Some(ModelState::Warming) => {
                    inner = match self.warmed.wait(inner) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                Some(ModelState::Cold) => {
                    let (source, serve) = {
                        let Some(slot) = inner.slots.get_mut(idx) else { continue };
                        slot.state = SlotState::Warming;
                        slot.metrics.state.set(ModelState::Warming.gauge_value());
                        (slot.spec.source.clone(), slot.spec.serve)
                    };
                    drop(inner);
                    return self.warm_slot(name, &source, serve);
                }
            }
        }
    }

    /// Returns the warm handle for `name` without warming a cold model
    /// (and without touching the LRU clock).
    pub fn peek(&self, name: &str) -> Option<Arc<ModelHandle>> {
        let inner = self.lock();
        let idx = Self::slot_index(&inner, name)?;
        match &inner.slots.get(idx)?.state {
            SlotState::Warm(handle) => Some(Arc::clone(handle)),
            _ => None,
        }
    }

    /// Force-evicts a warm model back to cold, returning whether anything
    /// was evicted. The drained pool is dropped outside the registry
    /// lock, so a slow drain never blocks other models.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.lock();
        let Some(idx) = Self::slot_index(&inner, name) else {
            return false;
        };
        let Some(slot) = inner.slots.get_mut(idx) else {
            return false;
        };
        if !matches!(slot.state, SlotState::Warm(_)) {
            return false;
        }
        let previous = std::mem::replace(&mut slot.state, SlotState::Cold);
        slot.metrics.state.set(ModelState::Cold.gauge_value());
        slot.metrics.resident.set(0);
        slot.metrics.evictions.inc();
        self.update_registry_gauges_locked(&inner);
        drop(inner);
        drop(previous);
        true
    }

    /// Current state of `name`, or `None` if it is not registered.
    pub fn state(&self, name: &str) -> Option<ModelState> {
        let inner = self.lock();
        let idx = Self::slot_index(&inner, name)?;
        inner.slots.get(idx).map(Slot::state_enum)
    }

    /// `(name, state)` for every registered model, in registration order.
    pub fn states(&self) -> Vec<(String, ModelState)> {
        self.lock()
            .slots
            .iter()
            .map(|s| (s.spec.name.clone(), s.state_enum()))
            .collect()
    }

    /// Every currently-warm handle, in registration order (used by the
    /// HTTP front-end to render per-pool metrics).
    pub fn warm_handles(&self) -> Vec<Arc<ModelHandle>> {
        self.lock()
            .slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Warm(handle) => Some(Arc::clone(handle)),
                _ => None,
            })
            .collect()
    }

    /// Deduplicated resident bytes across all warm models.
    pub fn resident_bytes(&self) -> usize {
        Self::resident_locked(&self.lock())
    }

    /// Completed loads of `name` (`None` if unregistered).
    pub fn loads_total(&self, name: &str) -> Option<u64> {
        let inner = self.lock();
        let idx = Self::slot_index(&inner, name)?;
        inner.slots.get(idx).map(|s| s.metrics.loads.get())
    }

    /// Evictions of `name` (`None` if unregistered).
    pub fn evictions_total(&self, name: &str) -> Option<u64> {
        let inner = self.lock();
        let idx = Self::slot_index(&inner, name)?;
        inner.slots.get(idx).map(|s| s.metrics.evictions.get())
    }

    /// Refreshes and renders the registry's `/metrics` block (per-model
    /// state/resident/loads/evictions plus registry-wide totals) as
    /// Prometheus text.
    pub fn metrics_render(&self) -> String {
        let inner = self.lock();
        for slot in &inner.slots {
            let (state, bytes) = match &slot.state {
                SlotState::Cold => (ModelState::Cold.gauge_value(), 0),
                SlotState::Warming => (ModelState::Warming.gauge_value(), 0),
                SlotState::Warm(handle) => (
                    ModelState::Warm.gauge_value(),
                    u64::try_from(handle.bytes).unwrap_or(u64::MAX),
                ),
            };
            slot.metrics.state.set(state);
            slot.metrics.resident.set(bytes);
        }
        self.update_registry_gauges_locked(&inner);
        drop(inner);
        self.metrics.render()
    }

    /// The warmer's off-lock work: materialize the backend, wrap it in a
    /// session, spawn the pool, then re-lock to publish the result and
    /// enforce the budget.
    fn warm_slot(
        &self,
        name: &str,
        source: &ModelSource,
        serve: ServeConfig,
    ) -> Result<Arc<ModelHandle>, ScError> {
        let warmed = self.materialize(source).and_then(|backend| {
            let bytes = backend.resident_bytes();
            let session = Session::from_shared_backend(Arc::clone(&backend), serve)?;
            // Spawn the worker pool *during* warming so the first real
            // request hits a ready pool, and so a spawn failure surfaces
            // here as a typed error instead of on the request path.
            session.runner()?;
            Ok(Arc::new(ModelHandle { name: name.to_string(), backend, session, bytes }))
        });
        let mut inner = self.lock();
        let handle = match warmed {
            Err(e) => {
                if let Some(slot) =
                    Self::slot_index(&inner, name).and_then(|i| inner.slots.get_mut(i))
                {
                    slot.state = SlotState::Cold;
                    slot.metrics.state.set(ModelState::Cold.gauge_value());
                }
                drop(inner);
                self.warmed.notify_all();
                return Err(e);
            }
            Ok(handle) => handle,
        };
        inner.clock += 1;
        let tick = inner.clock;
        let Some(idx) = Self::slot_index(&inner, name) else {
            drop(inner);
            self.warmed.notify_all();
            return Err(ScError::UnknownModel { model: name.to_string() });
        };
        if let Some(slot) = inner.slots.get_mut(idx) {
            slot.state = SlotState::Warm(Arc::clone(&handle));
            slot.last_used = tick;
            slot.metrics.state.set(ModelState::Warm.gauge_value());
            slot.metrics.resident.set(u64::try_from(handle.bytes).unwrap_or(u64::MAX));
            slot.metrics.loads.inc();
        }
        let mut evicted: Vec<Arc<ModelHandle>> = Vec::new();
        let mut budget_err = None;
        if self.budget > 0 {
            while Self::resident_locked(&inner) > self.budget {
                match Self::evict_lru_locked(&mut inner, idx) {
                    Some(h) => evicted.push(h),
                    None => break,
                }
            }
            if Self::resident_locked(&inner) > self.budget {
                // Everything else is already out and the newcomer alone
                // still busts the budget: roll the warm back.
                if let Some(slot) = inner.slots.get_mut(idx) {
                    slot.state = SlotState::Cold;
                    slot.metrics.state.set(ModelState::Cold.gauge_value());
                    slot.metrics.resident.set(0);
                }
                budget_err = Some(ScError::BudgetExceeded {
                    needed: handle.bytes,
                    budget: self.budget,
                });
            }
        }
        self.update_registry_gauges_locked(&inner);
        drop(inner);
        self.warmed.notify_all();
        // Evicted pools drain (workers join) here, outside the lock, so a
        // slow drain never blocks routing or other warms.
        drop(evicted);
        match budget_err {
            Some(e) => Err(e),
            None => Ok(handle),
        }
    }

    /// Evicts the least-recently-used warm slot other than `exclude`,
    /// returning its handle (dropped by the caller outside the lock).
    fn evict_lru_locked(inner: &mut Inner, exclude: usize) -> Option<Arc<ModelHandle>> {
        let mut lru: Option<(usize, u64)> = None;
        for (i, slot) in inner.slots.iter().enumerate() {
            if i == exclude || !matches!(slot.state, SlotState::Warm(_)) {
                continue;
            }
            if lru.is_none_or(|(_, tick)| slot.last_used < tick) {
                lru = Some((i, slot.last_used));
            }
        }
        let (i, _) = lru?;
        let slot = inner.slots.get_mut(i)?;
        let previous = std::mem::replace(&mut slot.state, SlotState::Cold);
        slot.metrics.state.set(ModelState::Cold.gauge_value());
        slot.metrics.resident.set(0);
        slot.metrics.evictions.inc();
        match previous {
            SlotState::Warm(handle) => Some(handle),
            _ => None,
        }
    }

    /// Produces the backend for a source: shared sources are cloned,
    /// artifact sources go through the weak `(path, kind)` cache so two
    /// models over one artifact share one copy of the weights.
    fn materialize(&self, source: &ModelSource) -> Result<Arc<dyn InferenceBackend>, ScError> {
        let (path, kind) = match source {
            ModelSource::Shared(backend) => return Ok(Arc::clone(backend)),
            ModelSource::Artifact { path, backend } => (path, *backend),
        };
        if let Some(hit) = self.cached_shared(path, kind) {
            return Ok(hit);
        }
        let loaded = load_backend(path, kind, self.engine_config)?;
        let backend: Arc<dyn InferenceBackend> = Arc::from(loaded);
        let mut inner = self.lock();
        inner.shared.retain(|s| s.backend.strong_count() > 0);
        // A racing warm over the same artifact may have published first;
        // prefer its copy so both models share.
        if let Some(hit) = inner
            .shared
            .iter()
            .find_map(|s| (s.path == *path && s.kind == kind).then(|| s.backend.upgrade())?)
        {
            return Ok(hit);
        }
        inner.shared.push(SharedLoad {
            path: path.clone(),
            kind,
            backend: Arc::downgrade(&backend),
        });
        Ok(backend)
    }

    fn cached_shared(&self, path: &Path, kind: BackendKind) -> Option<Arc<dyn InferenceBackend>> {
        let inner = self.lock();
        inner
            .shared
            .iter()
            .find_map(|s| (s.path == path && s.kind == kind).then(|| s.backend.upgrade())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend::ForwardScratch;
    use ascend_vit::{PrecisionPlan, VitConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A tiny controllable backend for registry unit tests: explicit
    /// resident size, an optional warm gate (blocks `resident_bytes`
    /// until opened, which stalls the warmer outside the registry lock),
    /// and a deterministic `forward_one`.
    struct TinyBackend {
        cfg: VitConfig,
        plan: PrecisionPlan,
        bytes: usize,
        gate: Option<(Mutex<bool>, Condvar)>,
        resident_calls: AtomicUsize,
    }

    impl TinyBackend {
        fn new(bytes: usize) -> Self {
            let cfg = VitConfig {
                image: 8,
                patch: 4,
                dim: 16,
                layers: 1,
                heads: 2,
                classes: 2,
                ..Default::default()
            };
            TinyBackend {
                cfg,
                plan: PrecisionPlan::fp(),
                bytes,
                gate: None,
                resident_calls: AtomicUsize::new(0),
            }
        }

        fn gated(bytes: usize) -> Self {
            let mut b = Self::new(bytes);
            b.gate = Some((Mutex::new(false), Condvar::new()));
            b
        }

        fn open_gate(&self) {
            // Poison-recovery, not unwrap: if a test thread panics while
            // holding the gate, recovering keeps the failure singular
            // instead of cascading PoisonError panics through every
            // other waiter (the gate payload is a plain bool, so the
            // poisoned state is still coherent).
            if let Some((lock, cv)) = &self.gate {
                let mut open = match lock.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *open = true;
                cv.notify_all();
            }
        }
    }

    impl InferenceBackend for TinyBackend {
        fn name(&self) -> &str {
            "tiny"
        }
        fn vit_config(&self) -> &VitConfig {
            &self.cfg
        }
        fn plan(&self) -> &PrecisionPlan {
            &self.plan
        }
        fn resident_bytes(&self) -> usize {
            self.resident_calls.fetch_add(1, Ordering::SeqCst);
            if let Some((lock, cv)) = &self.gate {
                let mut open = match lock.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                while !*open {
                    open = match cv.wait(open) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
            self.bytes
        }
        fn make_scratch(&self) -> ForwardScratch {
            ForwardScratch::empty()
        }
        fn forward_one(
            &self,
            patches: &ascend_tensor::Tensor,
            _scratch: &mut ForwardScratch,
        ) -> Result<Vec<f32>, ScError> {
            let sum: f32 = patches.data().iter().sum();
            Ok(vec![sum, -sum])
        }
    }

    fn serve_cfg() -> ServeConfig {
        ServeConfig { workers: 1, micro_batch: 1, queue_depth: 0 }
    }

    fn registry(budget: usize) -> ModelRegistry {
        ModelRegistry::new(RegistryConfig { memory_budget_bytes: budget, ..Default::default() })
    }

    fn shared_spec(name: &str, bytes: usize) -> ModelSpec {
        ModelSpec::shared(name, Arc::new(TinyBackend::new(bytes))).serve(serve_cfg())
    }

    #[test]
    fn names_are_validated_and_unique() {
        let reg = registry(0);
        for bad in ["", "has space", "sla/sh", "q?", &"x".repeat(65)] {
            let err = reg
                .register(ModelSpec::shared(bad, Arc::new(TinyBackend::new(1))))
                .unwrap_err();
            assert!(matches!(err, ScError::InvalidParam { name: "model", .. }), "{bad:?}: {err}");
        }
        reg.register(shared_spec("ok-model.v1_2", 1)).unwrap();
        let dup = reg.register(shared_spec("ok-model.v1_2", 1)).unwrap_err();
        assert!(matches!(dup, ScError::InvalidParam { .. }), "{dup}");
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let reg = registry(0);
        let err = reg.acquire("ghost").map(|_| ()).unwrap_err();
        assert_eq!(err, ScError::UnknownModel { model: "ghost".into() });
        assert_eq!(reg.state("ghost"), None);
        assert!(!reg.evict("ghost"));
    }

    #[test]
    fn acquire_warms_lazily_and_reuses_the_handle() {
        let reg = registry(0);
        reg.register(shared_spec("m", 128)).unwrap();
        assert_eq!(reg.state("m"), Some(ModelState::Cold));
        assert!(reg.peek("m").is_none(), "peek must not warm");
        assert_eq!(reg.state("m"), Some(ModelState::Cold));

        let h1 = reg.acquire("m").unwrap();
        assert_eq!(reg.state("m"), Some(ModelState::Warm));
        assert_eq!(h1.resident_bytes(), 128);
        assert_eq!(reg.resident_bytes(), 128);
        assert_eq!(reg.loads_total("m"), Some(1));

        let h2 = reg.acquire("m").unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "second acquire must reuse the warm handle");
        assert_eq!(reg.loads_total("m"), Some(1), "no reload on a warm hit");
        assert!(reg.peek("m").is_some());
    }

    #[test]
    fn lru_eviction_follows_interleaved_access_order() {
        let reg = registry(200);
        for name in ["a", "b", "c"] {
            reg.register(shared_spec(name, 100)).unwrap();
        }
        reg.acquire("a").unwrap();
        reg.acquire("b").unwrap();
        // Touch `a` so `b` becomes the LRU, then warm `c`: `b` must go.
        reg.acquire("a").unwrap();
        reg.acquire("c").unwrap();
        assert_eq!(reg.state("a"), Some(ModelState::Warm));
        assert_eq!(reg.state("b"), Some(ModelState::Cold));
        assert_eq!(reg.state("c"), Some(ModelState::Warm));
        assert_eq!(reg.evictions_total("b"), Some(1));
        assert_eq!(reg.resident_bytes(), 200);

        // Re-warm `b`: now `a` (older tick than `c`) is evicted.
        reg.acquire("b").unwrap();
        assert_eq!(reg.state("a"), Some(ModelState::Cold));
        assert_eq!(reg.loads_total("b"), Some(2), "re-warm is a second load");
        assert!(reg.resident_bytes() <= 200);
    }

    #[test]
    fn a_model_bigger_than_the_budget_is_a_typed_error() {
        let reg = registry(200);
        reg.register(shared_spec("small", 150)).unwrap();
        reg.register(shared_spec("huge", 300)).unwrap();
        reg.acquire("small").unwrap();
        let err = reg.acquire("huge").map(|_| ()).unwrap_err();
        assert_eq!(err, ScError::BudgetExceeded { needed: 300, budget: 200 });
        // The failed warm must not leave the slot wedged in Warming, and
        // the small model was sacrificed to try to make room.
        assert_eq!(reg.state("huge"), Some(ModelState::Cold));
        let err2 = reg.acquire("huge").map(|_| ()).unwrap_err();
        assert!(matches!(err2, ScError::BudgetExceeded { .. }));
        // The small model can come back.
        reg.acquire("small").unwrap();
        assert_eq!(reg.state("small"), Some(ModelState::Warm));
    }

    #[test]
    fn models_sharing_a_backend_are_charged_once() {
        let backend: Arc<dyn InferenceBackend> = Arc::new(TinyBackend::new(100));
        // Budget admits one 100-byte model; both fit because they share.
        let reg = registry(150);
        reg.register(ModelSpec::shared("a", Arc::clone(&backend)).serve(serve_cfg())).unwrap();
        reg.register(ModelSpec::shared("b", Arc::clone(&backend)).serve(serve_cfg())).unwrap();
        let ha = reg.acquire("a").unwrap();
        let hb = reg.acquire("b").unwrap();
        assert!(Arc::ptr_eq(ha.shared_backend(), hb.shared_backend()));
        assert_eq!(reg.resident_bytes(), 100, "shared backend must be counted once");
        assert_eq!(reg.state("a"), Some(ModelState::Warm));
        assert_eq!(reg.state("b"), Some(ModelState::Warm));
    }

    #[test]
    fn explicit_evict_drops_residency_and_rewarm_reloads() {
        let reg = registry(0);
        reg.register(shared_spec("m", 64)).unwrap();
        let handle = reg.acquire("m").unwrap();
        assert!(reg.evict("m"));
        assert!(!reg.evict("m"), "already cold");
        assert_eq!(reg.state("m"), Some(ModelState::Cold));
        assert_eq!(reg.resident_bytes(), 0);
        assert_eq!(reg.evictions_total("m"), Some(1));
        // The caller's handle survives eviction.
        assert_eq!(handle.resident_bytes(), 64);
        reg.acquire("m").unwrap();
        assert_eq!(reg.loads_total("m"), Some(2));
    }

    #[test]
    fn concurrent_cold_acquires_are_single_flight() {
        let backend = Arc::new(TinyBackend::gated(32));
        let reg = Arc::new(registry(0));
        reg.register(
            ModelSpec::shared("m", Arc::clone(&backend) as Arc<dyn InferenceBackend>)
                .serve(serve_cfg()),
        )
        .unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || reg.acquire("m").map(|h| Arc::as_ptr(&h) as usize))
            })
            .collect();
        // The warmer is parked on the gate inside `resident_bytes`; every
        // other thread must be waiting on the condvar, not loading.
        backend.open_gate();
        let ptrs: Vec<_> = threads.into_iter().map(|t| t.join().unwrap().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "all acquires share one handle");
        assert_eq!(reg.loads_total("m"), Some(1), "exactly one flight warms the model");
        assert_eq!(
            backend.resident_calls.load(Ordering::SeqCst),
            1,
            "only the single warmer touched the backend"
        );
    }

    #[test]
    fn failed_warm_resets_to_cold_and_reports_not_found() {
        let reg = registry(0);
        reg.register(
            ModelSpec::artifact("missing", "/nonexistent/ascend/engine.sceng").serve(serve_cfg()),
        )
        .unwrap();
        let err = reg.acquire("missing").map(|_| ()).unwrap_err();
        assert!(matches!(err, ScError::Io { not_found: true, .. }), "got {err}");
        assert_eq!(reg.state("missing"), Some(ModelState::Cold), "slot must not wedge in Warming");
        // Retry surfaces the same typed error, not a hang.
        let err2 = reg.acquire("missing").map(|_| ()).unwrap_err();
        assert!(matches!(err2, ScError::Io { not_found: true, .. }));
    }

    #[test]
    fn metrics_render_labels_every_model() {
        let reg = registry(512);
        reg.register(shared_spec("alpha", 96)).unwrap();
        reg.register(shared_spec("beta", 128)).unwrap();
        reg.acquire("alpha").unwrap();
        let text = reg.metrics_render();
        assert!(text.contains("ascend_model_state{model=\"alpha\"} 2"), "{text}");
        assert!(text.contains("ascend_model_state{model=\"beta\"} 0"), "{text}");
        assert!(text.contains("ascend_model_resident_bytes{model=\"alpha\"} 96"), "{text}");
        assert!(text.contains("ascend_model_loads_total{model=\"alpha\"} 1"), "{text}");
        assert!(text.contains("ascend_model_evictions_total{model=\"alpha\"} 0"), "{text}");
        assert!(text.contains("ascend_registry_resident_bytes 96"), "{text}");
        assert!(text.contains("ascend_registry_budget_bytes 512"), "{text}");
        assert!(text.contains("ascend_registry_models 2"), "{text}");
    }

    #[test]
    fn states_reports_registration_order() {
        let reg = registry(0);
        reg.register(shared_spec("z", 1)).unwrap();
        reg.register(shared_spec("a", 1)).unwrap();
        reg.acquire("a").unwrap();
        let states = reg.states();
        assert_eq!(
            states,
            vec![("z".to_string(), ModelState::Cold), ("a".to_string(), ModelState::Warm)]
        );
        assert_eq!(reg.warm_handles().len(), 1);
        assert_eq!(reg.warm_handles()[0].name(), "a");
    }
}
