//! Registry correctness over real artifacts and live pools:
//!
//! * two models registered over one artifact path share a single
//!   `Arc`-held copy of the weights and serve bit-identically to the
//!   serial engine;
//! * a model evicted under the memory budget re-warms to a backend that
//!   is bit-for-bit identical to its first load;
//! * eviction with requests still in flight never drops or reorders a
//!   response (the evicted pool drains; it is never killed);
//! * a property test over random access sequences: once warm, the
//!   deduplicated resident total never exceeds the budget.

use std::sync::{Arc, Condvar, Mutex};

use ascend::engine::{EngineConfig, ScEngine};
use ascend::fixture::{engine_or_load, FixtureRecipe};
use ascend::{ForwardScratch, InferenceBackend, ServeConfig, ServeRequest};
use ascend_registry::{ModelRegistry, ModelSpec, ModelState, RegistryConfig};
use ascend_tensor::Tensor;
use ascend_vit::data::Dataset;
use ascend_vit::{PrecisionPlan, VitConfig};
use proptest::prelude::*;
use sc_core::ScError;

/// This file's one fixture: a tiny engine trained once and cached under
/// `target/ascend-fixtures` (2 FP epochs, no QAT — registry tests need
/// *a* compiled engine, not an accurate one).
fn tiny_engine() -> (Arc<ScEngine>, Dataset) {
    let mut recipe = FixtureRecipe::tiny("registry-tiny", 7);
    recipe.n_train = 32;
    recipe.n_test = 16;
    recipe.pre_epochs = 1;
    recipe.qat_epochs = 0;
    let (engine, _train, test) =
        engine_or_load(&recipe, EngineConfig::default()).expect("tiny engine compiles");
    (Arc::new(engine), test)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ascend-registry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { workers: 1, micro_batch: 1, queue_depth: 0 }
}

fn assert_bit_identical(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: logit {i} differs");
    }
}

#[test]
fn two_models_over_one_artifact_share_weights_and_serve_bit_identically() {
    let (engine, test) = tiny_engine();
    let dir = scratch_dir("shared");
    let path = dir.join("engine.sceng");
    engine.save(&path).expect("save artifact");

    let registry = ModelRegistry::new(RegistryConfig::default());
    registry.register(ModelSpec::artifact("alpha", &path).serve(serve_cfg())).expect("register");
    registry.register(ModelSpec::artifact("beta", &path).serve(serve_cfg())).expect("register");

    let alpha = registry.acquire("alpha").expect("warm alpha");
    let beta = registry.acquire("beta").expect("warm beta");

    // One artifact, two sessions, ONE copy of the weights.
    assert!(
        Arc::ptr_eq(alpha.shared_backend(), beta.shared_backend()),
        "sessions over one artifact must share the backend Arc"
    );
    assert_eq!(registry.resident_bytes(), engine.resident_bytes(), "shared copy charged once");
    assert_eq!(alpha.resident_bytes(), beta.resident_bytes());

    // Both pools serve bit-identically to the serial forward.
    let patch = engine.vit_config().patch;
    let patches = test.patches(&[0, 1, 2], patch);
    let want = engine.forward(&patches, 3).expect("serial forward");
    for handle in [&alpha, &beta] {
        let (got, _report) = handle.session().serve_batch(&patches, 3).expect("served batch");
        assert_bit_identical(&got, &want, &format!("model {}", handle.name()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewarm_after_eviction_is_bit_identical_to_first_load() {
    let (engine, test) = tiny_engine();
    let dir = scratch_dir("rewarm");
    let path_a = dir.join("a.sceng");
    let path_b = dir.join("b.sceng");
    engine.save(&path_a).expect("save a");
    // A byte-identical copy under a different path: distinct paths do
    // NOT share, so warming `b` really costs a second residency.
    std::fs::copy(&path_a, &path_b).expect("copy artifact");

    // Budget admits exactly one engine: every cross-model acquire evicts.
    let registry = ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: engine.resident_bytes(),
        ..Default::default()
    });
    registry.register(ModelSpec::artifact("a", &path_a).serve(serve_cfg())).expect("register");
    registry.register(ModelSpec::artifact("b", &path_b).serve(serve_cfg())).expect("register");

    let patch = engine.vit_config().patch;
    let patches = test.patches(&[3, 4], patch);

    let first = registry.acquire("a").expect("first warm of a");
    let out_first = first.session().serve_batch(&patches, 2).expect("first serve").0;
    drop(first);

    registry.acquire("b").expect("warm b evicts a");
    assert_eq!(registry.state("a"), Some(ModelState::Cold), "a was the LRU");
    assert_eq!(registry.evictions_total("a"), Some(1));

    let again = registry.acquire("a").expect("re-warm a evicts b");
    assert_eq!(registry.state("b"), Some(ModelState::Cold));
    assert_eq!(registry.loads_total("a"), Some(2), "re-warm is a fresh lazy load");
    let out_again = again.session().serve_batch(&patches, 2).expect("re-warmed serve").0;
    assert_bit_identical(&out_again, &out_first, "re-warm after eviction");

    assert!(registry.resident_bytes() <= registry.budget_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

/// A controllable backend: `forward_one` blocks until the gate opens,
/// then echoes a deterministic function of its input — so the test can
/// hold a pool mid-request while the registry evicts it.
struct GatedBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GatedBackend {
    fn new() -> Self {
        let cfg = VitConfig {
            image: 8,
            patch: 4,
            dim: 16,
            layers: 1,
            heads: 2,
            classes: 2,
            ..Default::default()
        };
        GatedBackend {
            cfg,
            plan: PrecisionPlan::fp(),
            gate: Mutex::new(false),
            opened: Condvar::new(),
        }
    }

    fn open(&self) {
        // Poison-recovery so one panicked worker cannot cascade
        // PoisonError panics through every other gated thread.
        let mut open = match self.gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *open = true;
        self.opened.notify_all();
    }
}

impl InferenceBackend for GatedBackend {
    fn name(&self) -> &str {
        "gated"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn resident_bytes(&self) -> usize {
        1000
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        let mut open = match self.gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*open {
            open = match self.opened.wait(open) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        drop(open);
        let sum: f32 = patches.data().iter().sum();
        Ok(vec![sum, -sum])
    }
}

/// A trivially warm backend used as the eviction trigger.
struct StubBackend {
    cfg: VitConfig,
    plan: PrecisionPlan,
}

impl StubBackend {
    fn new() -> Self {
        StubBackend { cfg: GatedBackend::new().cfg, plan: PrecisionPlan::fp() }
    }
}

impl InferenceBackend for StubBackend {
    fn name(&self) -> &str {
        "stub"
    }
    fn vit_config(&self) -> &VitConfig {
        &self.cfg
    }
    fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }
    fn resident_bytes(&self) -> usize {
        1000
    }
    fn make_scratch(&self) -> ForwardScratch {
        ForwardScratch::empty()
    }
    fn forward_one(
        &self,
        _patches: &Tensor,
        _scratch: &mut ForwardScratch,
    ) -> Result<Vec<f32>, ScError> {
        Ok(vec![0.0, 0.0])
    }
}

#[test]
fn eviction_mid_flight_never_drops_or_reorders_responses() {
    let gated = Arc::new(GatedBackend::new());
    // Budget fits exactly one model, so warming `other` must evict
    // `victim` — while `victim`'s pool still has queued work.
    let registry = ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: 1000,
        ..Default::default()
    });
    registry
        .register(
            ModelSpec::shared("victim", Arc::clone(&gated) as Arc<dyn InferenceBackend>)
                .serve(serve_cfg()),
        )
        .expect("register victim");
    registry
        .register(ModelSpec::shared("other", Arc::new(StubBackend::new())).serve(serve_cfg()))
        .expect("register other");

    let victim = registry.acquire("victim").expect("warm victim");
    let (np, pd) = (gated.cfg.num_patches(), gated.cfg.patch_dim());

    // With the gate closed, the single worker stalls on request 0 and
    // the rest queue up behind it: genuinely in-flight work.
    let mut handles = Vec::new();
    let mut wants = Vec::new();
    for i in 0..6 {
        let fill = i as f32 + 1.0;
        let patches = Tensor::from_vec(vec![fill; np * pd], &[np, pd]);
        wants.push(vec![fill * (np * pd) as f32, -fill * (np * pd) as f32]);
        let pool = victim.session().runner().expect("victim pool");
        handles.push(pool.submit(ServeRequest::new(patches, 1)).expect("submit"));
    }

    // Evict the victim mid-flight.
    registry.acquire("other").expect("warm other");
    assert_eq!(registry.state("victim"), Some(ModelState::Cold), "victim evicted");
    assert_eq!(registry.state("other"), Some(ModelState::Warm));
    assert_eq!(registry.evictions_total("victim"), Some(1));

    // The evicted pool still answers EVERY admitted request, in order.
    gated.open();
    for (i, (handle, want)) in handles.into_iter().zip(&wants).enumerate() {
        let (got, _latency) = handle.collect().expect("evicted pool completes its work");
        assert_eq!(got.data(), &want[..], "request {i} dropped or reordered by eviction");
    }
    // Only now does the last reference drop and the pool drain.
    drop(victim);
}

/// Shared specs for the property test: three models whose sizes force
/// evictions under a 180-byte budget but each fit individually.
fn prop_registry() -> ModelRegistry {
    struct Sized {
        cfg: VitConfig,
        plan: PrecisionPlan,
        bytes: usize,
    }
    impl InferenceBackend for Sized {
        fn name(&self) -> &str {
            "sized"
        }
        fn vit_config(&self) -> &VitConfig {
            &self.cfg
        }
        fn plan(&self) -> &PrecisionPlan {
            &self.plan
        }
        fn resident_bytes(&self) -> usize {
            self.bytes
        }
        fn make_scratch(&self) -> ForwardScratch {
            ForwardScratch::empty()
        }
        fn forward_one(
            &self,
            _patches: &Tensor,
            _scratch: &mut ForwardScratch,
        ) -> Result<Vec<f32>, ScError> {
            Ok(vec![0.0, 0.0])
        }
    }
    let registry = ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: 180,
        ..Default::default()
    });
    for (name, bytes) in [("m0", 60), ("m1", 80), ("m2", 100)] {
        let backend = Sized { cfg: GatedBackend::new().cfg, plan: PrecisionPlan::fp(), bytes };
        registry
            .register(ModelSpec::shared(name, Arc::new(backend)).serve(serve_cfg()))
            .expect("register");
    }
    registry
}

proptest! {
    #[test]
    fn resident_bytes_never_exceed_the_budget_once_warm(
        accesses in proptest::collection::vec(0usize..3, 1..16)
    ) {
        let registry = prop_registry();
        for &i in &accesses {
            let name = ["m0", "m1", "m2"][i];
            let handle = registry.acquire(name).expect("every model fits alone");
            prop_assert_eq!(registry.state(name), Some(ModelState::Warm));
            prop_assert!(handle.resident_bytes() <= 180);
            let resident = registry.resident_bytes();
            prop_assert!(
                resident <= 180,
                "resident {} exceeds budget after acquiring {}", resident, name
            );
        }
    }
}
