//! The linter run against the live workspace — the same gate CI enforces.
//!
//! Two invariants:
//!
//! 1. **Zero deny-class violations.** Hot-path panics, wall-clock reads in
//!    forward paths, unordered iteration in bit-identical crates, lossy
//!    casts in the artifact codec and missing `#![forbid(unsafe_code)]`
//!    must stay at zero (or carry a reasoned waiver).
//! 2. **The checked-in baseline matches the tree exactly.** Growth is a
//!    regression; shrinkage must be banked by tightening
//!    `crates/lint/baseline.tsv` so improvements cannot silently erode.

use ascend_lint::baseline;
use ascend_lint::report;
use ascend_lint::workspace;

fn repo_root() -> std::path::PathBuf {
    // crates/lint -> crates -> workspace root
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_deny_violations() {
    let root = repo_root();
    let outcome = workspace::run(&root).expect("lint run over the live workspace");
    assert!(
        outcome.files > 20,
        "walker found only {} files — the source walk is broken",
        outcome.files
    );
    let rendered: Vec<String> = outcome.deny.iter().map(|v| v.render()).collect();
    assert!(
        rendered.is_empty(),
        "deny-class lint violations in the workspace:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn ratchet_matches_checked_in_baseline_exactly() {
    let root = repo_root();
    let outcome = workspace::run(&root).expect("lint run over the live workspace");
    let baseline = workspace::load_baseline(&root).expect("baseline.tsv parses");
    let live = outcome.ratchet_counts();

    let (errors, improvements) = baseline::compare(&live, &baseline);
    assert!(
        errors.is_empty(),
        "ratcheted violation counts grew past the baseline:\n{}",
        errors.join("\n")
    );
    assert!(
        improvements.is_empty(),
        "ratchet improved — bank it by regenerating the baseline \
         (cargo run -p ascend-lint -- --update-baseline):\n{}",
        improvements.join("\n")
    );
}

#[test]
fn baseline_file_is_canonical_and_minimal() {
    // The committed TSV must be byte-identical to what the renderer
    // would write for the measured counts: sorted, zero-count entries
    // omitted, the standard header comment intact. This stops hand
    // edits that pad counts, reorder lines, or leave dead entries — the
    // ratchet only means something if the file is exactly the tree.
    let root = repo_root();
    let text = std::fs::read_to_string(root.join(baseline::BASELINE_PATH))
        .expect("baseline.tsv exists");
    let parsed = baseline::parse(&text).expect("baseline.tsv parses");
    assert_eq!(
        baseline::render(&parsed),
        text,
        "baseline.tsv is not in canonical form — regenerate it \
         (cargo run -p ascend-lint -- --update-baseline)"
    );
    let outcome = workspace::run(&root).expect("lint run over the live workspace");
    assert_eq!(
        parsed,
        outcome.ratchet_counts(),
        "baseline.tsv does not equal the measured counts — regenerate it"
    );
}

#[test]
fn check_entrypoint_agrees_with_the_gate() {
    let root = repo_root();
    let outcome = workspace::run(&root).expect("lint run over the live workspace");
    let baseline = workspace::load_baseline(&root).expect("baseline.tsv parses");
    let result = report::check(&outcome, &baseline);
    assert!(
        result.ok(),
        "ascend-lint --check would fail CI:\n{}",
        result.errors.join("\n")
    );
}
