//! The ratchet baseline: per-(rule, crate) violation counts that may only
//! go down.
//!
//! The file lives at `crates/lint/baseline.tsv` and is committed. The
//! `--check` gate fails if any count *grows*; the workspace integration
//! test (`crates/lint/tests/workspace_gate.rs`) additionally asserts the
//! committed counts match reality *exactly*, so an improvement must land
//! together with the tightened baseline — the same one-way mechanism as
//! the CI test-count floor.

use std::collections::BTreeMap;

/// Parsed baseline: (rule, crate) → allowed count.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Relative path of the baseline file inside the workspace.
pub const BASELINE_PATH: &str = "crates/lint/baseline.tsv";

/// Parses the TSV body. Lines are `rule<TAB>crate<TAB>count`; `#` comments
/// and blank lines are skipped.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse(body: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(rule), Some(krate), Some(count)) = (cols.next(), cols.next(), cols.next()) else {
            return Err(format!(
                "baseline line {}: expected rule<TAB>crate<TAB>count",
                i + 1
            ));
        };
        if cols.next().is_some() {
            return Err(format!("baseline line {}: too many columns", i + 1));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        if out
            .insert((rule.to_string(), krate.to_string()), count)
            .is_some()
        {
            return Err(format!(
                "baseline line {}: duplicate entry {rule}/{krate}",
                i + 1
            ));
        }
    }
    Ok(out)
}

/// Renders a baseline back to the committed TSV form (sorted, commented).
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# ascend-lint ratchet baseline — violation counts per rule and crate.\n\
         # Counts may only DECREASE. When you remove a violation, tighten the\n\
         # matching line (or regenerate: cargo run -p ascend-lint -- --update-baseline).\n\
         # Adding or growing an entry fails CI and the workspace_gate test.\n",
    );
    for ((rule, krate), count) in baseline {
        if *count > 0 {
            out.push_str(&format!("{rule}\t{krate}\t{count}\n"));
        }
    }
    out
}

/// Compares measured ratchet counts against the baseline.
///
/// Returns `(errors, improvements)`: `errors` are growths (and unknown
/// entries) that must fail the gate; `improvements` are counts now below
/// the baseline, reported so the developer tightens the file (the
/// workspace test *enforces* the tightening).
pub fn compare(
    measured: &BTreeMap<(String, String), usize>,
    baseline: &Baseline,
) -> (Vec<String>, Vec<String>) {
    let mut errors = Vec::new();
    let mut improvements = Vec::new();
    for ((rule, krate), &got) in measured {
        let allowed = baseline
            .get(&(rule.clone(), krate.clone()))
            .copied()
            .unwrap_or(0);
        if got > allowed {
            errors.push(format!(
                "{rule} in crate `{krate}`: {got} violations exceed the baseline of {allowed} \
                 (new violations are not allowed; fix them or waive with a reason)"
            ));
        } else if got < allowed {
            improvements.push(format!(
                "{rule} in crate `{krate}`: {got} violations, baseline allows {allowed} — \
                 tighten {BASELINE_PATH}"
            ));
        }
    }
    for ((rule, krate), &allowed) in baseline {
        if allowed > 0 && !measured.contains_key(&(rule.clone(), krate.clone())) {
            improvements.push(format!(
                "{rule} in crate `{krate}`: 0 violations, baseline allows {allowed} — \
                 tighten {BASELINE_PATH}"
            ));
        }
    }
    (errors, improvements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rule: &str, krate: &str, n: usize) -> ((String, String), usize) {
        ((rule.to_string(), krate.to_string()), n)
    }

    #[test]
    fn parse_render_roundtrip_is_exact() {
        let b: Baseline = [
            entry("no-panic-in-lib", "vit", 3),
            entry("no-panic-in-lib", "cli", 7),
        ]
        .into_iter()
        .collect();
        let text = render(&b);
        assert_eq!(parse(&text).unwrap(), b);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let b = parse("# header\n\nno-panic-in-lib\tvit\t2\n").unwrap();
        assert_eq!(
            b,
            [entry("no-panic-in-lib", "vit", 2)].into_iter().collect()
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert!(parse("just-one-column").unwrap_err().contains("line 1"));
        assert!(parse("a\tb\tnot-a-number")
            .unwrap_err()
            .contains("bad count"));
        assert!(parse("a\tb\t1\td").unwrap_err().contains("too many"));
        assert!(parse("a\tb\t1\na\tb\t2").unwrap_err().contains("duplicate"));
    }

    #[test]
    fn growth_is_an_error_shrink_is_an_improvement() {
        let baseline: Baseline = [entry("no-panic-in-lib", "vit", 3)].into_iter().collect();
        let grew: BTreeMap<_, _> = [entry("no-panic-in-lib", "vit", 4)].into_iter().collect();
        let (errors, _) = compare(&grew, &baseline);
        assert_eq!(errors.len(), 1);
        let shrank: BTreeMap<_, _> = [entry("no-panic-in-lib", "vit", 2)].into_iter().collect();
        let (errors, improvements) = compare(&shrank, &baseline);
        assert!(errors.is_empty());
        assert_eq!(improvements.len(), 1);
    }

    #[test]
    fn unknown_crate_counts_as_growth_from_zero() {
        let baseline = Baseline::new();
        let measured: BTreeMap<_, _> = [entry("no-panic-in-lib", "new-crate", 1)]
            .into_iter()
            .collect();
        let (errors, _) = compare(&measured, &baseline);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("baseline of 0"));
    }

    #[test]
    fn vanished_crate_is_reported_as_improvement() {
        let baseline: Baseline = [entry("no-panic-in-lib", "vit", 3)].into_iter().collect();
        let (errors, improvements) = compare(&BTreeMap::new(), &baseline);
        assert!(errors.is_empty());
        assert_eq!(improvements.len(), 1);
    }

    #[test]
    fn zero_count_entries_are_not_rendered() {
        let b: Baseline = [entry("no-panic-in-lib", "vit", 0)].into_iter().collect();
        assert!(!render(&b).contains("vit"));
    }
}
