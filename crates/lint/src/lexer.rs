//! A token-level scanner for Rust source.
//!
//! The rules in [`crate::rules`] must never fire on commented-out code, on
//! string literals that merely *mention* `unwrap`, or on `#[cfg(test)]`
//! modules (tests unwrap freely, and should). Regex-over-lines cannot make
//! those guarantees; a real lexer can. This one understands every Rust
//! surface form that matters for that goal:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary `#` fence (`r#"…"#`),
//! * char literals (including escapes) versus lifetimes (`'a'` vs `'a`),
//! * identifiers, numbers, and single-char punctuation.
//!
//! It is *not* a parser: it produces a flat token stream with line numbers,
//! which is exactly the level the invariant rules match at. A post-pass
//! ([`mark_test_regions`]) brace-matches `#[cfg(test)]` / `#[test]` items
//! so rules can skip test code without a syntax tree.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (approximate: suffixes ride along).
    Num,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `//…` comment, text excludes the trailing newline.
    LineComment,
    /// `/*…*/` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind tag.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` module or `#[test]`
    /// function (set by [`mark_test_regions`]).
    pub in_test: bool,
}

impl Tok {
    fn new(kind: TokKind, text: String, line: u32) -> Self {
        Tok {
            kind,
            text,
            line,
            in_test: false,
        }
    }

    /// Whether the token is code (not a comment) — what rules match on.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Code token with exactly this text.
    pub fn is(&self, text: &str) -> bool {
        self.is_code() && self.text == text
    }
}

/// Lexes `src` into a token stream and marks test regions.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Tok::new(
                TokKind::LineComment,
                chars[start..i].iter().collect(),
                line,
            ));
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok::new(
                TokKind::BlockComment,
                chars[start..i].iter().collect(),
                start_line,
            ));
            continue;
        }
        // Raw strings: r"…", r#"…"#, br"…", br#"…"# — no escapes inside,
        // terminated by a quote followed by the opening's hash fence.
        if let Some((end, newlines)) = raw_string_end(&chars, i) {
            toks.push(Tok::new(TokKind::Str, chars[i..end].iter().collect(), line));
            line += newlines;
            i = end;
            continue;
        }
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start = i;
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => {
                        // Escapes skip the next char; a `\<newline>`
                        // line-continuation still advances the line count.
                        if chars.get(i + 1) == Some(&'\n') {
                            line += 1;
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            toks.push(Tok::new(
                TokKind::Str,
                chars[start..i].iter().collect(),
                start_line,
            ));
            continue;
        }
        if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
            let start = i;
            let q = if c == 'b' { i + 1 } else { i };
            // Lifetime: 'ident not closed by a quote right after one char.
            let is_lifetime = c == '\''
                && matches!(chars.get(q + 1), Some(ch) if ch.is_alphanumeric() || *ch == '_')
                && chars.get(q + 2) != Some(&'\'');
            if is_lifetime {
                i = q + 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::new(
                    TokKind::Lifetime,
                    chars[start..i].iter().collect(),
                    line,
                ));
            } else {
                i = q + 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok::new(
                    TokKind::Char,
                    chars[start..i].iter().collect(),
                    line,
                ));
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::new(
                TokKind::Ident,
                chars[start..i].iter().collect(),
                line,
            ));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() {
                let ch = chars[i];
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else if ch == '.' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) {
                    // `1.5` continues the number; `0..n` leaves `..` alone.
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok::new(
                TokKind::Num,
                chars[start..i].iter().collect(),
                line,
            ));
            continue;
        }
        toks.push(Tok::new(TokKind::Punct, c.to_string(), line));
        i += 1;
    }
    mark_test_regions(&mut toks);
    toks
}

/// If a raw string starts at `chars[i]`, returns `(end_index, newlines)`.
fn raw_string_end(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < chars.len() {
        if chars[j] == '\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let fence = &chars[j + 1..(j + 1 + hashes).min(chars.len())];
            if fence.len() == hashes && fence.iter().all(|&h| h == '#') {
                return Some((j + 1 + hashes, newlines));
            }
        }
        j += 1;
    }
    Some((chars.len(), newlines))
}

/// Marks every token inside a `#[cfg(test)]` `mod`/`fn` or a `#[test]` fn
/// as test code, by brace-matching the item body that follows the
/// attribute. Inner attributes (`#![…]`) and unrelated attributes (incl.
/// `#[cfg(not(test))]`) never trigger marking.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is("#") && matches!(toks.get(i + 1), Some(t) if t.is("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((inner, after)) = attribute_span(toks, i) else {
            i += 1;
            continue;
        };
        let is_test_attr = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
        if !is_test_attr {
            i = after;
            continue;
        }
        // Skip any further attributes stacked after the test attribute.
        let mut j = after;
        while j < toks.len() && toks[j].is("#") {
            match attribute_span(toks, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // Find the item body: the first `{` before any `;` (a `mod x;`
        // or signature-only form has no inline body to mark).
        let mut body = None;
        while j < toks.len() {
            if toks[j].is(";") {
                break;
            }
            if toks[j].is("{") {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body else {
            i = after;
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while k < toks.len() {
            if toks[k].is("{") {
                depth += 1;
            } else if toks[k].is("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let end = k.min(toks.len().saturating_sub(1));
        for t in &mut toks[attr_start..=end] {
            t.in_test = true;
        }
        i = end + 1;
    }
}

/// For an attribute starting at `toks[i] == '#'` (outer form `#[…]`),
/// returns the inner token texts and the index just past the closing `]`.
/// Inner attributes `#![…]` return `None` (they are never test markers).
fn attribute_span(toks: &[Tok], i: usize) -> Option<(Vec<String>, usize)> {
    if !toks[i].is("#") {
        return None;
    }
    let mut j = i + 1;
    if matches!(toks.get(j), Some(t) if t.is("!")) {
        return None;
    }
    if !matches!(toks.get(j), Some(t) if t.is("[")) {
        return None;
    }
    j += 1;
    let mut depth = 1usize;
    let mut inner = Vec::new();
    while j < toks.len() {
        if toks[j].is("[") {
            depth += 1;
        } else if toks[j].is("]") {
            depth -= 1;
            if depth == 0 {
                return Some((inner, j + 1));
            }
        }
        if toks[j].is_code() {
            inner.push(toks[j].text.clone());
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_not_code() {
        let toks = lex("let x = 1; // x.unwrap()\n/* panic!() */ let y = 2;");
        let code: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_code())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(code, ["let", "x", "=", "1", ";", "let", "y", "=", "2", ";"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
        assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let toks = lex("/* outer /* inner */ still comment */ code");
        let code: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_code())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(code, ["code"]);
    }

    #[test]
    fn strings_swallow_panicky_text() {
        let toks = lex(r#"let m = "call .unwrap() or panic!";"#);
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_respect_the_hash_fence() {
        let toks = lex(r###"let s = r#"quote " inside, and .unwrap()"#; after"###);
        assert!(toks.iter().any(|t| t.is("after")));
        assert!(toks.iter().all(|t| t.text != "unwrap"));
        // An escape-like backslash before the closing quote stays raw.
        let toks = lex(r#"let s = r"a\"; done"#);
        assert!(toks.iter().any(|t| t.is("done")));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = lex(r#"let s = "a\"b.unwrap()\"c"; tail"#);
        assert!(toks.iter().any(|t| t.is("tail")));
        assert!(toks.iter().all(|t| t.text != "unwrap"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let toks = kinds("let c = 'x'; fn f<'a>(s: &'a str) { let q = '\\''; }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t == "'\\''"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"two\nline\"\nb\n/* c\nd */\ne");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("e"), Some(7));
    }

    #[test]
    fn string_line_continuations_advance_the_line_count() {
        // A `\<newline>` escape inside a string must still count the line,
        // or every report location after it drifts.
        let toks = lex("let s = \"first \\\n second\";\nafter");
        assert_eq!(toks.iter().find(|t| t.is("after")).map(|t| t.line), Some(3));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..16 { let x = 1.5e3; }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "16"));
        assert!(toks.iter().any(|(_, t)| t == "."));
    }

    #[test]
    fn cfg_test_mod_is_marked_as_test_code() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}";
        let toks = lex(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true]);
        assert!(toks.iter().any(|t| t.is("live2") && !t.in_test));
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "#[test]\nfn check() { it.unwrap(); }\nfn live() { ok(); }";
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").map(|t| t.in_test);
        assert_eq!(unwrap, Some(true));
        assert!(toks.iter().any(|t| t.is("live") && !t.in_test));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.text == "unwrap" && !t.in_test));
    }

    #[test]
    fn inner_attributes_do_not_confuse_region_marking() {
        let src = "#![forbid(unsafe_code)]\nfn live() { x.unwrap(); }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.text == "unwrap" && !t.in_test));
    }

    #[test]
    fn mod_declaration_without_body_marks_nothing_after() {
        // `#[cfg(test)] mod tests;` has no inline body; the following item
        // must stay live.
        let src = "#[cfg(test)]\nmod tests;\nfn live() { x.unwrap(); }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.text == "unwrap" && !t.in_test));
    }

    #[test]
    fn stacked_attributes_after_cfg_test_still_mark_the_body() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { x.unwrap(); } }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.text == "unwrap" && t.in_test));
    }
}
