//! Brace/scope structure over the lexer's flat token stream.
//!
//! The token rules in [`crate::rules`] match fixed token windows; the
//! concurrency rules cannot — "a channel `recv()` while a `MutexGuard`
//! is live" is a property of *scopes*, not of any token window. This
//! module is the layer in between a lexer and a parser: it brace-matches
//! blocks, tracks function-item boundaries, and follows lock-guard
//! *bindings* (`let guard = m.lock()…`, `if let Ok(g) = m.lock()`, the
//! poison-recovery `let g = match m.lock` form) through their lexical
//! lifetime — scope end, `drop(guard)`, or end-of-statement for an
//! unbound temporary. On top of that structure it records four event
//! kinds per function, each annotated with the guard sites held at that
//! point:
//!
//! * [`Acquire`] — a `.lock()` / `.read()` / `.write()` acquisition.
//! * [`Call`] — a function or method call (fuel for the workspace-wide
//!   lock-order union in [`crate::rules::lock_order`]).
//! * [`Blocking`] — a potentially-blocking operation (`recv`, `send`,
//!   thread `join`, `ServePool::submit`, `thread::sleep`, file I/O).
//! * [`Wait`] — a `Condvar::wait`-family call, with whether it sits
//!   inside a loop and which *other* guards stay held across it.
//!
//! Known over-approximations, by design (the rules stay waivable):
//!
//! * Lock sites are named by the receiver identifier (`self.inner.lock()`
//!   → site `inner`), prefixed with the crate name by the caller — two
//!   different mutexes reached through same-named fields alias to one
//!   site.
//! * A shadowing rebind (`let g = a.lock(); let g = b.lock();`) keeps
//!   **both** guards held, which is exactly what Rust does: the shadowed
//!   guard lives until scope end. `drop(g)` releases only the newest
//!   binding.
//! * Closure bodies count as part of the enclosing function: a blocking
//!   call inside a closure built while a guard is held is flagged even
//!   though the closure may run later.

use crate::lexer::{Tok, TokKind};

/// A lock acquisition event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquire {
    /// Site name: `{prefix}{receiver-ident}` (e.g. `registry:self`).
    pub site: String,
    /// 1-based source line of the `.lock()` call.
    pub line: u32,
    /// Sites whose guards were already live when this acquisition ran.
    pub held: Vec<String>,
}

/// A function or method call observed inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (bare identifier — matched workspace-wide by name).
    pub callee: String,
    /// 1-based source line of the call.
    pub line: u32,
    /// Sites whose guards were live at the call.
    pub held: Vec<String>,
}

/// A potentially-blocking operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocking {
    /// What blocks: `.recv()`, `.join()`, `thread::sleep`, `File::open`…
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// Sites whose guards were live at the operation.
    pub held: Vec<String>,
}

/// A `Condvar::wait` / `wait_timeout` / `wait_while` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wait {
    /// The wait method name (`wait`, `wait_timeout`, `wait_while`).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether the wait sits inside a `loop`/`while`/`for` body — the
    /// spurious-wakeup-safe shape.
    pub in_loop: bool,
    /// Guard sites that stay held across the wait, *excluding* the guard
    /// passed to the wait itself (a condvar releases only its own mutex).
    pub held_other: Vec<String>,
}

/// Everything the parser learned about one function item.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name (bare identifier).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Lock acquisitions, in source order.
    pub acquires: Vec<Acquire>,
    /// Calls, in source order.
    pub calls: Vec<Call>,
    /// Potentially-blocking operations, in source order.
    pub blocking: Vec<Blocking>,
    /// Condvar waits, in source order.
    pub waits: Vec<Wait>,
}

/// Methods that return a lock guard when called with no arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Methods that can block the calling thread. `.join()` counts only with
/// empty arguments (thread-handle join) — `slice.join(", ")` is string
/// glue, not a park.
const BLOCKING_METHODS: [&str; 5] = ["recv", "recv_timeout", "send", "join", "submit"];
/// The `Condvar` wait family.
const WAIT_METHODS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];
/// Method-chain links after `.lock()` through which the value is still a
/// guard: `m.lock().unwrap()`, `.expect("…")`, `.map_err(…)?`, `.ok()`.
/// Any other continuation (`.len()`, field access…) means the guard was a
/// temporary that dies at the end of the statement.
const GUARD_CHAIN: [&str; 4] = ["unwrap", "expect", "map_err", "ok"];

/// Keywords that can precede `(` or occupy a binding position.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "in", "as", "move", "ref", "mut", "pub", "use", "impl", "where", "unsafe", "dyn",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses the token stream into per-function scope analyses.
///
/// `site_prefix` is prepended to every lock-site name (the rules pass
/// `"{crate}:"` so sites are comparable across files but never collide
/// across crates). Tokens inside `#[cfg(test)]` / `#[test]` regions keep
/// the braces balanced but generate no functions or events — test code
/// may lock and block freely.
pub fn analyze(toks: &[Tok], site_prefix: &str) -> Vec<FnScope> {
    Parser::new(toks, site_prefix).run()
}

struct Block {
    is_loop: bool,
    is_fn_body: bool,
    fn_idx: Option<usize>,
}

struct Guard {
    var: String,
    site: String,
    depth: usize,
    temp: bool,
    alive: bool,
}

struct LetCtx {
    name: Option<String>,
    cond: bool,
    saw_match: bool,
}

struct Parser<'a> {
    code: Vec<&'a Tok>,
    prefix: &'a str,
    fns: Vec<FnScope>,
    blocks: Vec<Block>,
    guards: Vec<Guard>,
    /// `fn name` seen, body `{` not yet: (name, line, in_test).
    pending_fn: Option<(String, u32, bool)>,
    /// `loop`/`while`/`for` seen, body `{` not yet.
    pending_loop: bool,
    /// An `if let`/`while let` guard binding waiting for its block.
    pending_cond_guard: Option<(String, String)>,
    let_ctx: Option<LetCtx>,
    /// Token indices of method calls chained directly onto a lock
    /// acquisition (`self.lock().len()`) — calls on the guard itself.
    on_guard_calls: std::collections::BTreeSet<usize>,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [Tok], site_prefix: &'a str) -> Self {
        Parser {
            code: toks.iter().filter(|t| t.is_code()).collect(),
            prefix: site_prefix,
            fns: Vec::new(),
            blocks: Vec::new(),
            guards: Vec::new(),
            pending_fn: None,
            pending_loop: false,
            pending_cond_guard: None,
            let_ctx: None,
            on_guard_calls: std::collections::BTreeSet::new(),
        }
    }

    fn run(mut self) -> Vec<FnScope> {
        for i in 0..self.code.len() {
            let t = self.code[i];
            match t.text.as_str() {
                "{" => self.open_block(),
                "}" => self.close_block(),
                ";" => {
                    self.let_ctx = None;
                    self.pending_fn = None; // trait-method declaration
                    for g in &mut self.guards {
                        if g.temp {
                            g.alive = false;
                        }
                    }
                }
                "fn" => {
                    if let Some(name) = self.code.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                    {
                        self.pending_fn = Some((name.text.clone(), t.line, t.in_test));
                    }
                }
                "loop" | "while" | "for" => self.pending_loop = true,
                "let" => self.let_ctx = Some(self.parse_let(i)),
                "match" => {
                    if let Some(lc) = &mut self.let_ctx {
                        lc.saw_match = true;
                    }
                }
                _ => {}
            }
            if t.kind == TokKind::Ident
                && matches!(self.code.get(i + 1), Some(n) if n.is("("))
                && !is_keyword(&t.text)
            {
                self.ident_call(i);
            }
        }
        self.fns
    }

    fn open_block(&mut self) {
        let mut fn_idx = None;
        let is_fn_body = self.pending_fn.is_some();
        if let Some((name, line, in_test)) = self.pending_fn.take() {
            if !in_test {
                self.fns.push(FnScope {
                    name,
                    line,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                    blocking: Vec::new(),
                    waits: Vec::new(),
                });
                fn_idx = Some(self.fns.len() - 1);
            }
        }
        self.blocks.push(Block {
            is_loop: std::mem::take(&mut self.pending_loop),
            is_fn_body,
            fn_idx,
        });
        if let Some((var, site)) = self.pending_cond_guard.take() {
            self.guards.push(Guard {
                var,
                site,
                depth: self.blocks.len(),
                temp: false,
                alive: true,
            });
        }
        self.let_ctx = None;
    }

    fn close_block(&mut self) {
        let depth = self.blocks.len();
        for g in &mut self.guards {
            if g.alive && g.depth >= depth {
                g.alive = false;
            }
        }
        self.blocks.pop();
        self.let_ctx = None;
    }

    /// The function the current position belongs to, if any.
    fn cur_fn(&self) -> Option<usize> {
        self.blocks
            .iter()
            .rev()
            .find(|b| b.is_fn_body)
            .and_then(|b| b.fn_idx)
    }

    /// Whether the current position sits inside a loop body of the
    /// current function.
    fn inside_loop(&self) -> bool {
        for b in self.blocks.iter().rev() {
            if b.is_loop {
                return true;
            }
            if b.is_fn_body {
                return false;
            }
        }
        false
    }

    /// Live guard sites, in acquisition order, deduplicated.
    fn held_sites(&self) -> Vec<String> {
        let mut out = Vec::new();
        for g in self.guards.iter().filter(|g| g.alive) {
            if !out.contains(&g.site) {
                out.push(g.site.clone());
            }
        }
        out
    }

    /// Parses the binding position after a `let` at index `i`.
    fn parse_let(&self, i: usize) -> LetCtx {
        let cond = i > 0 && (self.code[i - 1].is("if") || self.code[i - 1].is("while"));
        let mut j = i + 1;
        // `let Ok(g)` / `let Some(g)` unwrap one constructor layer.
        if matches!(self.code.get(j), Some(t) if matches!(t.text.as_str(), "Ok" | "Some" | "Err"))
            && matches!(self.code.get(j + 1), Some(t) if t.is("("))
        {
            j += 2;
        }
        if matches!(self.code.get(j), Some(t) if t.is("mut")) {
            j += 1;
        }
        let name = match self.code.get(j) {
            Some(t) if t.kind == TokKind::Ident && !is_keyword(&t.text) => Some(t.text.clone()),
            _ => None,
        };
        LetCtx {
            name,
            cond,
            saw_match: false,
        }
    }

    /// Index just past the `)` matching the `(` at `open`.
    fn skip_parens(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.code.len() {
            if self.code[j].is("(") {
                depth += 1;
            } else if self.code[j].is(")") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.code.len()
    }

    /// Dispatches an identifier followed by `(` — method call, bare call,
    /// lock acquisition, condvar wait, or blocking operation.
    fn ident_call(&mut self, i: usize) {
        let t = self.code[i];
        let name = t.text.as_str();
        let is_method = i > 0 && self.code[i - 1].is(".");
        let empty_args = matches!(self.code.get(i + 2), Some(n) if n.is(")"));
        if is_method && empty_args && ACQUIRE_METHODS.contains(&name) {
            self.acquisition(i);
            return;
        }
        if is_method && WAIT_METHODS.contains(&name) {
            if t.in_test {
                return;
            }
            if empty_args {
                // No guard argument: `Barrier::wait()`-style park.
                let held = self.held_sites();
                if let Some(f) = self.cur_fn() {
                    self.fns[f].blocking.push(Blocking {
                        what: format!(".{name}()"),
                        line: t.line,
                        held,
                    });
                }
            } else {
                self.condvar_wait(i);
            }
            return;
        }
        if t.in_test {
            return;
        }
        if is_method && (GUARD_CHAIN.contains(&name) || ACQUIRE_METHODS.contains(&name)) {
            return;
        }
        if name == "drop" && !is_method {
            // `drop(guard)` ends the newest binding of that name early.
            if let Some(arg) = self.code.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                if matches!(self.code.get(i + 3), Some(c) if c.is(")")) {
                    if let Some(g) = self
                        .guards
                        .iter_mut()
                        .rev()
                        .find(|g| g.alive && g.var == arg.text)
                    {
                        g.alive = false;
                        return;
                    }
                }
            }
        }
        let held = self.held_sites();
        let Some(f) = self.cur_fn() else { return };
        if is_method && BLOCKING_METHODS.contains(&name) && (name != "join" || empty_args) {
            self.fns[f].blocking.push(Blocking {
                what: format!(".{name}()"),
                line: t.line,
                held: held.clone(),
            });
        }
        // Qualified-path blocking: `thread::sleep(`, `File::open(`, `fs::*(`.
        if !is_method
            && i >= 3
            && self.code[i - 1].is(":")
            && self.code[i - 2].is(":")
            && self.code[i - 3].kind == TokKind::Ident
        {
            let qual = self.code[i - 3].text.as_str();
            let what = match (qual, name) {
                ("thread", "sleep") => Some("thread::sleep".to_string()),
                ("File", "open" | "create") => Some(format!("File::{name}")),
                ("fs", _) => Some(format!("fs::{name}")),
                _ => None,
            };
            if let Some(what) = what {
                self.fns[f].blocking.push(Blocking {
                    what,
                    line: t.line,
                    held: held.clone(),
                });
            }
        }
        // Calls *through* a guard reach the protected container (`Vec`,
        // `BTreeMap`…), not a workspace function — feeding them to the
        // by-name lock-order union would alias `guard.len()` with any
        // workspace `fn len` that happens to lock. Skip both forms: a
        // receiver that is a live guard variable, and a method chained
        // directly onto the acquisition.
        let through_guard = self.on_guard_calls.contains(&i)
            || (is_method
                && i >= 2
                && self.code[i - 2].kind == TokKind::Ident
                && self
                    .guards
                    .iter()
                    .any(|g| g.alive && !g.var.is_empty() && g.var == self.code[i - 2].text));
        if !through_guard {
            self.fns[f].calls.push(Call {
                callee: t.text.clone(),
                line: t.line,
                held,
            });
        }
    }

    /// Handles `receiver.lock()` (and RwLock `.read()`/`.write()`).
    fn acquisition(&mut self, i: usize) {
        let t = self.code[i];
        let receiver = if i >= 2 && self.code[i - 2].kind == TokKind::Ident {
            self.code[i - 2].text.as_str()
        } else {
            "expr"
        };
        let site = format!("{}{receiver}", self.prefix);
        if !t.in_test {
            let held = self.held_sites();
            if let Some(f) = self.cur_fn() {
                self.fns[f].acquires.push(Acquire {
                    site: site.clone(),
                    line: t.line,
                    held,
                });
            }
        }
        // Does the produced guard get bound, and to what?
        let mut j = i + 3; // past `( )`
        loop {
            match self.code.get(j) {
                Some(d)
                    if d.is(".")
                        && matches!(self.code.get(j + 1),
                            Some(m) if GUARD_CHAIN.contains(&m.text.as_str()))
                        && matches!(self.code.get(j + 2), Some(p) if p.is("(")) =>
                {
                    j = self.skip_parens(j + 2);
                }
                Some(q) if q.is("?") => j += 1,
                _ => break,
            }
        }
        let term = self.code.get(j).map(|t| t.text.as_str()).unwrap_or("");
        if term == "." {
            // `m.lock().foo(…)` — `foo` is called on the guard itself.
            self.on_guard_calls.insert(j + 1);
        }
        let depth = self.blocks.len();
        match &self.let_ctx {
            Some(lc) if lc.name.is_some() && lc.cond && term == "{" => {
                // `if let Ok(g) = m.lock() {` — binds into the next block.
                self.pending_cond_guard =
                    Some((lc.name.clone().unwrap_or_default(), site));
            }
            Some(lc) if lc.name.is_some() && !lc.cond && (term == ";" || (lc.saw_match && term == "{")) =>
            {
                // `let g = m.lock()…;` or the poison-recovery
                // `let g = match m.lock() { … };` — a real binding,
                // live to the end of the enclosing block.
                self.guards.push(Guard {
                    var: lc.name.clone().unwrap_or_default(),
                    site,
                    depth,
                    temp: false,
                    alive: true,
                });
            }
            _ => {
                // Unbound (or chained-past) guard: a temporary that holds
                // the lock until the end of the statement.
                self.guards.push(Guard {
                    var: String::new(),
                    site,
                    depth,
                    temp: true,
                    alive: true,
                });
            }
        }
    }

    /// Handles `cv.wait(guard)` / `wait_timeout` / `wait_while`.
    fn condvar_wait(&mut self, i: usize) {
        let t = self.code[i];
        let arg = self
            .code
            .get(i + 2)
            .filter(|a| a.kind == TokKind::Ident)
            .map(|a| a.text.clone());
        let own = arg.and_then(|a| {
            self.guards
                .iter()
                .enumerate()
                .rev()
                .find(|(_, g)| g.alive && g.var == a)
                .map(|(k, _)| k)
        });
        let mut held_other = Vec::new();
        for (k, g) in self.guards.iter().enumerate() {
            if g.alive && Some(k) != own && !held_other.contains(&g.site) {
                held_other.push(g.site.clone());
            }
        }
        let in_loop = self.inside_loop();
        if let Some(f) = self.cur_fn() {
            self.fns[f].waits.push(Wait {
                what: t.text.clone(),
                line: t.line,
                in_loop,
                held_other,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze_src(src: &str) -> Vec<FnScope> {
        analyze(&lex(src), "t:")
    }

    fn only_fn(src: &str) -> FnScope {
        let fns = analyze_src(src);
        assert_eq!(fns.len(), 1, "expected one fn in {src:?}");
        fns.into_iter().next().unwrap()
    }

    #[test]
    fn function_boundaries_and_lines() {
        let fns = analyze_src("fn a() { }\nfn b() { }\n");
        assert_eq!(fns.len(), 2);
        assert_eq!((fns[0].name.as_str(), fns[0].line), ("a", 1));
        assert_eq!((fns[1].name.as_str(), fns[1].line), ("b", 2));
    }

    #[test]
    fn bound_guard_is_held_to_scope_end() {
        let fns = analyze_src(
            "fn f() {\n  let g = m.lock().unwrap();\n  x.recv();\n}\nfn h() { y.recv(); }",
        );
        assert_eq!(fns.len(), 2);
        let f = &fns[0];
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.blocking[0].what, ".recv()");
        assert_eq!(f.blocking[0].line, 3);
        assert_eq!(f.blocking[0].held, ["t:m"]);
        // The guard does not leak into the next function.
        assert_eq!(fns[1].blocking[0].held, Vec::<String>::new());
    }

    #[test]
    fn guard_dies_with_its_block_not_the_function() {
        let f = only_fn(
            "fn f() {\n  {\n    let g = m.lock().unwrap();\n  }\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, Vec::<String>::new());
    }

    #[test]
    fn drop_ends_the_held_region_early() {
        let f = only_fn(
            "fn f() {\n  let g = m.lock().unwrap();\n  drop(g);\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, Vec::<String>::new());
    }

    #[test]
    fn shadowing_rebind_keeps_both_guards_held() {
        // Rust semantics: the shadowed guard is NOT dropped at the rebind;
        // it lives to scope end. Both locks are held.
        let f = only_fn(
            "fn f() {\n  let g = a.lock().unwrap();\n  let g = b.lock().unwrap();\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, ["t:a", "t:b"]);
    }

    #[test]
    fn drop_after_shadowing_releases_only_the_newest_binding() {
        let f = only_fn(
            "fn f() {\n  let g = a.lock().unwrap();\n  let g = b.lock().unwrap();\n  drop(g);\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, ["t:a"]);
    }

    #[test]
    fn unbound_lock_is_a_statement_temporary() {
        let f = only_fn(
            "fn f() {\n  m.lock().unwrap().push(1);\n  x.recv();\n}",
        );
        // The temporary guard died at the `;`, so recv holds nothing.
        assert_eq!(f.blocking[0].held, Vec::<String>::new());
        // But within its own statement it IS held.
        let f = only_fn("fn f() { rx.lock().unwrap().recv(); }");
        assert_eq!(f.blocking[0].held, ["t:rx"]);
    }

    #[test]
    fn chained_past_guard_does_not_bind() {
        // `let n = m.lock().unwrap().len();` — n is a usize, not a guard.
        let f = only_fn(
            "fn f() {\n  let n = m.lock().unwrap().len();\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, Vec::<String>::new());
    }

    #[test]
    fn poison_recovery_match_form_binds_the_guard() {
        let f = only_fn(
            "fn f() {\n  let g = match m.lock() {\n    Ok(g) => g,\n    Err(p) => p.into_inner(),\n  };\n  x.recv();\n}",
        );
        assert_eq!(f.blocking.last().unwrap().held, ["t:m"]);
    }

    #[test]
    fn if_let_guard_binds_into_the_block_only() {
        let f = only_fn(
            "fn f() {\n  if let Ok(mut g) = m.lock() {\n    x.recv();\n  }\n  y.recv();\n}",
        );
        assert_eq!(f.blocking.len(), 2);
        assert_eq!(f.blocking[0].held, ["t:m"]);
        assert_eq!(f.blocking[1].held, Vec::<String>::new());
    }

    #[test]
    fn map_err_question_mark_chain_still_binds() {
        let f = only_fn(
            "fn f() -> Result<(), E> {\n  let mut g = m.lock().map_err(|e| drop_err(e))?;\n  x.recv();\n  Ok(())\n}",
        );
        assert_eq!(f.blocking[0].held, ["t:m"]);
    }

    #[test]
    fn acquire_records_already_held_sites() {
        let f = only_fn(
            "fn f() {\n  let ga = a.lock().unwrap();\n  let gb = b.lock().unwrap();\n}",
        );
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.acquires[0].held, Vec::<String>::new());
        assert_eq!(f.acquires[1].site, "t:b");
        assert_eq!(f.acquires[1].held, ["t:a"]);
    }

    #[test]
    fn condvar_wait_in_loop_on_own_mutex_is_clean() {
        let f = only_fn(
            "fn f() {\n  let mut g = m.lock().unwrap();\n  while !*g {\n    g = cv.wait(g).unwrap();\n  }\n}",
        );
        assert_eq!(f.waits.len(), 1);
        assert!(f.waits[0].in_loop);
        assert_eq!(f.waits[0].held_other, Vec::<String>::new());
    }

    #[test]
    fn condvar_wait_outside_a_loop_is_detected() {
        let f = only_fn(
            "fn f() {\n  let mut g = m.lock().unwrap();\n  if !*g {\n    g = cv.wait(g).unwrap();\n  }\n}",
        );
        assert_eq!(f.waits.len(), 1);
        assert!(!f.waits[0].in_loop);
    }

    #[test]
    fn condvar_wait_with_a_second_guard_reports_it() {
        let f = only_fn(
            "fn f() {\n  let other = n.lock().unwrap();\n  let mut g = m.lock().unwrap();\n  loop {\n    g = cv.wait(g).unwrap();\n  }\n}",
        );
        assert_eq!(f.waits[0].held_other, ["t:n"]);
        assert!(f.waits[0].in_loop);
    }

    #[test]
    fn loop_flag_does_not_leak_across_functions() {
        let fns = analyze_src(
            "fn a() { loop { } }\nfn b() {\n  let mut g = m.lock().unwrap();\n  g = cv.wait(g).unwrap();\n}",
        );
        assert!(!fns[1].waits[0].in_loop);
    }

    #[test]
    fn calls_record_held_guards_for_the_lock_order_union() {
        let f = only_fn(
            "fn f() {\n  let g = m.lock().unwrap();\n  helper(1);\n  self.other(2);\n}",
        );
        let helper = f.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(helper.held, ["t:m"]);
        assert!(f.calls.iter().any(|c| c.callee == "other"));
    }

    #[test]
    fn qualified_path_blocking_forms() {
        let f = only_fn(
            "fn f() {\n  let g = m.lock().unwrap();\n  std::thread::sleep(d);\n  File::open(p);\n  std::fs::write(p, b);\n}",
        );
        let whats: Vec<&str> = f.blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(whats, ["thread::sleep", "File::open", "fs::write"]);
        assert!(f.blocking.iter().all(|b| b.held == ["t:m"]));
    }

    #[test]
    fn slice_join_with_args_is_not_blocking_but_thread_join_is() {
        let f = only_fn(
            "fn f() {\n  let g = m.lock().unwrap();\n  let s = parts.join(\", \");\n  handle.join();\n}",
        );
        let whats: Vec<&str> = f.blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(whats, [".join()"]);
        assert_eq!(f.blocking[0].line, 4);
    }

    #[test]
    fn raw_strings_with_braces_do_not_unbalance_scopes() {
        let f = only_fn(
            "fn f() {\n  let s = r#\"{ \"nested\": { } }\"#;\n  let t = \"}}{{\";\n  let g = m.lock().unwrap();\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, ["t:m"]);
        // The fn closed where it should: a second fn is still parsed.
        let fns = analyze_src("fn a() { let s = r#\"{\"#; }\nfn b() { x.recv(); }");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[1].name, "b");
    }

    #[test]
    fn nested_block_comments_around_braces_are_ignored() {
        let f = only_fn(
            "fn f() {\n  /* { */ /* /* } */ { */\n  let g = m.lock().unwrap();\n  // }\n  x.recv();\n}",
        );
        assert_eq!(f.blocking[0].held, ["t:m"]);
    }

    #[test]
    fn test_regions_produce_no_functions_or_events() {
        let fns = analyze_src(
            "fn live() { x.recv(); }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let g = m.lock().unwrap(); x.recv(); }\n}",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "live");
        assert_eq!(fns[0].blocking.len(), 1);
    }

    #[test]
    fn rwlock_read_and_write_are_acquisitions() {
        let f = only_fn(
            "fn f() {\n  let r = rw.read().unwrap();\n  let w = rw.write().unwrap();\n  x.recv();\n}",
        );
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.blocking[0].held, ["t:rw"]);
    }

    #[test]
    fn io_read_with_arguments_is_not_an_acquisition() {
        let f = only_fn("fn f() { file.read(&mut buf); file.read_exact(&mut buf); }");
        assert!(f.acquires.is_empty());
    }
}
