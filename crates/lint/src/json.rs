//! A minimal JSON layer for the `--format json` output: an escaper the
//! renderer uses and a strict parser the CI step uses to prove the
//! emitted document is well-formed (`--parse-json`).
//!
//! Std-only by design, like the rest of the linter — the workspace
//! takes no external dependencies, so the machine-readable output is
//! validated by the same binary that produces it.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is normalized (sorted) on parse.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A description with a byte offset on malformed input, including
/// trailing garbage after the top-level value.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(JsonValue::Str),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, word: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte {c:#04x} in string"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (1–4 bytes) verbatim.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // past '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // past '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"ok": true, "n": -2.5, "xs": [1, "two", null], "o": {}}"#).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(JsonValue::as_num), Some(-2.5));
        let xs = v.get("xs").and_then(JsonValue::items).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].as_str(), Some("two"));
        assert_eq!(xs[2], JsonValue::Null);
        assert_eq!(v.get("o"), Some(&JsonValue::Obj(BTreeMap::new())));
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let raw = "msg with \"quotes\", a\\path, a\nnewline, tab\t, and unicode ☂";
        let doc = format!("{{\"m\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("m").and_then(JsonValue::as_str), Some(raw));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""guérison ☃""#).unwrap();
        assert_eq!(v.as_str(), Some("guérison ☃"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{a: 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
