//! Workspace discovery and the whole-tree lint run.
//!
//! The walker visits exactly the source the invariants govern: every
//! `.rs` file under `crates/*/src` plus the top-level `examples/*.rs`
//! bins. Integration-test trees (`crates/*/tests`, the repo-level
//! `tests/`), criterion benches, vendored shims, and `target/` are test
//! or third-party code and are skipped wholesale — rules already skip
//! `#[cfg(test)]` regions inside the files they do visit.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline};
use crate::rules::{self, RatchetMap, Violation};

/// Everything one lint run produces.
#[derive(Debug)]
pub struct Outcome {
    /// Deny-class violations (must be zero for the gate to pass).
    pub deny: Vec<Violation>,
    /// Ratchet-class violations grouped per (rule, crate).
    pub ratchet: RatchetMap,
    /// Files scanned.
    pub files: usize,
    /// Well-formed waivers found across the tree.
    pub waivers: usize,
}

impl Outcome {
    /// Ratchet counts per (rule, crate) — the shape the baseline stores.
    pub fn ratchet_counts(&self) -> BTreeMap<(String, String), usize> {
        self.ratchet
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// A description if no ancestor qualifies.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(format!(
        "no workspace root found above {} (looked for a Cargo.toml with [workspace])",
        start.display()
    ))
}

/// Lists the workspace-relative paths of every file the linter governs,
/// sorted for deterministic reports.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn source_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        let entries = std::fs::read_dir(&examples)
            .map_err(|e| format!("cannot list {}: {e}", examples.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "rs") {
                out.push(relative(&p, root));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(relative(&p, root));
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn relative(p: &Path, root: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every rule over the whole workspace.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn run(root: &Path) -> Result<Outcome, String> {
    let files = source_files(root)?;
    // Phase 1: per-file rules + scope analysis.
    let mut lints = Vec::new();
    let mut waivers = 0usize;
    for rel in &files {
        let full = root.join(rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let lint = rules::analyze_file(rel, &src);
        waivers += lint.waiver_count();
        lints.push(lint);
    }
    // Phase 2: the workspace-wide lock-order graph needs every file's
    // scope analysis at once (an AB-BA inversion spans functions and
    // crates); its violations are attributed back to the acquiring line.
    let mut cross: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for v in rules::lock_order(&lints) {
        cross.entry(v.path.clone()).or_default().push(v);
    }
    // Phase 3: waivers apply per file, covering both rule classes.
    let mut all = Vec::new();
    for lint in lints {
        let extra = cross.remove(&lint.path).unwrap_or_default();
        all.extend(rules::finish(lint, extra));
    }
    let (deny, ratchet) = rules::partition(all);
    Ok(Outcome {
        deny,
        ratchet,
        files: files.len(),
        waivers,
    })
}

/// Loads the committed baseline (missing file = empty baseline).
///
/// # Errors
///
/// Malformed baseline contents.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(baseline::BASELINE_PATH);
    match std::fs::read_to_string(&path) {
        Ok(body) => baseline::parse(&body),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Writes the measured counts as the new baseline.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn write_baseline(root: &Path, outcome: &Outcome) -> Result<(), String> {
    let counts = outcome.ratchet_counts();
    let path = root.join(baseline::BASELINE_PATH);
    std::fs::write(&path, baseline::render(&counts))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint → workspace root, two levels up.
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_root(&here).expect("manifest dir sits inside the workspace")
    }

    #[test]
    fn find_root_locates_the_workspace_from_a_nested_dir() {
        let root = repo_root();
        assert!(root.join("crates/lint/Cargo.toml").is_file());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn walker_sees_the_core_sources_and_skips_tests_and_vendor() {
        let files = source_files(&repo_root()).expect("walk");
        assert!(files.iter().any(|f| f == "crates/core/src/serve.rs"));
        assert!(files.iter().any(|f| f == "crates/lint/src/rules.rs"));
        assert!(files.iter().any(|f| f == "examples/serve_demo.rs"));
        assert!(files.iter().all(|f| !f.contains("/tests/")));
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        assert!(files.iter().all(|f| !f.contains("/benches/")));
        // Sorted, deterministic.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
