//! The invariant rules and the engine that applies them.
//!
//! Each rule backstops a runtime guarantee the test suite already proves
//! dynamically (see `RULES.md` for the catalog and the mapping to tests).
//! Rules come in two severities:
//!
//! * **Deny** — zero unwaived violations allowed anywhere in the rule's
//!   scope. These protect the hot-path contracts directly.
//! * **Ratchet** — existing violations are tolerated up to the counts in
//!   the checked-in baseline (`crates/lint/baseline.tsv`); the count per
//!   (rule, crate) may only go *down*, exactly like the CI test-count
//!   floor may only go up.
//!
//! Detection is token-sequence matching over [`crate::lexer`] output:
//! comments, strings, and `#[cfg(test)]` regions can never fire a rule.

use std::collections::BTreeMap;

use crate::lexer::{lex, Tok};
use crate::waiver;

/// Rule: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in hot-path modules.
pub const NO_PANIC_HOT: &str = "no-panic-in-hot-path";
/// Rule: same panic surface, counted (ratcheted) in the rest of the
/// library code.
pub const NO_PANIC_LIB: &str = "no-panic-in-lib";
/// Rule: no wall-clock reads in forward/compute crates.
pub const NO_WALLCLOCK: &str = "no-wallclock-in-forward";
/// Rule: no `HashMap`/`HashSet` in deterministic-output crates.
pub const NO_UNORDERED: &str = "no-unordered-iteration";
/// Rule: no potentially-truncating `as` casts in the artifact codec.
pub const NO_LOSSY_CAST: &str = "no-lossy-cast-in-io";
/// Rule: every crate root must carry `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Meta-rule: a comment that looks like a waiver but does not parse.
pub const INVALID_WAIVER: &str = "invalid-waiver";
/// Meta-rule: a well-formed waiver no violation ever matched.
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Every real (waivable) rule id, in catalog order.
pub const RULES: [&str; 6] = [
    NO_PANIC_HOT,
    NO_PANIC_LIB,
    NO_WALLCLOCK,
    NO_UNORDERED,
    NO_LOSSY_CAST,
    MISSING_FORBID_UNSAFE,
];

/// One rule hit at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of the constants above).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Crate the path belongs to (directory name under `crates/`, or
    /// `examples`).
    pub crate_name: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl Violation {
    /// `path:line rule — msg`, the clickable report form.
    pub fn render(&self) -> String {
        format!("{}:{} {} — {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Whether a rule ratchets against the baseline instead of failing
/// outright: everything except [`NO_PANIC_LIB`] is deny-class.
pub fn is_ratcheted(rule: &str) -> bool {
    rule == NO_PANIC_LIB
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("examples") => "examples".to_string(),
        _ => "unknown".to_string(),
    }
}

/// Hot-path modules: the serving/backend/engine forward files, every
/// `sc-*` kernel crate, the HTTP front-end (`ascend-http` library
/// code — a panic there kills a socket thread or the listener, so it is
/// held to the same deny-class bar; the `loadgen` bin is tooling, like
/// the CLI, and rides the ratchet instead), the model registry
/// (`ascend-registry` — its lock/warm/evict machinery runs on request
/// threads, and a panic while the slot table is mid-update wedges every
/// model behind the poisoned mutex), and the `ascend-obs` observability
/// primitives (they run inside pool workers and connection threads — a
/// panic in a metric update takes the request down with it).
fn in_hot_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/core/src/serve.rs"
            | "crates/core/src/session.rs"
            | "crates/core/src/backend.rs"
            | "crates/core/src/engine.rs"
            | "crates/core/src/instrument.rs"
    ) || rel.starts_with("crates/sc-core/src/")
        || rel.starts_with("crates/sc-nonlinear/src/")
        || rel.starts_with("crates/sc-hw/src/")
        || rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/registry/src/")
        || (rel.starts_with("crates/http/src/") && !rel.starts_with("crates/http/src/bin/"))
}

/// Crates whose outputs must be bit-identical across runs and worker
/// counts — unordered iteration is banned here.
fn in_forward_scope(rel: &str) -> bool {
    matches!(
        crate_of(rel).as_str(),
        "sc-core" | "sc-nonlinear" | "sc-hw" | "tensor" | "vit" | "io" | "core"
    )
}

/// Files where wall-clock reads are deny-class: every library file in the
/// workspace *except* `ascend-obs` (the one sanctioned timing authority —
/// all durations flow through its `StageTimer`/histograms/trace ring),
/// the linter itself, and per-crate tooling bins under `src/bin/`.
/// Serving code is in scope on purpose: its few sanctioned timestamp
/// sites (the ServeReport metrics, the queue-wait/service split, the
/// `/metrics` uptime anchor) each carry an explicit waiver stating why
/// the read can never reach the logits.
fn in_wallclock_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.starts_with("crates/obs/")
        && !rel.starts_with("crates/lint/")
}

/// The artifact codec: parsing paths must fail closed, never truncate.
fn in_io_scope(rel: &str) -> bool {
    rel.starts_with("crates/io/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every `lib.rs`
/// and `main.rs` under `crates/*/src`, every extra binary under
/// `crates/*/src/bin/` (each is its own crate root — the attribute on
/// `lib.rs` does not cover it), and every top-level bin/lib file of the
/// `examples` crate.
fn is_crate_root(rel: &str) -> bool {
    (rel.starts_with("crates/") && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")))
        || (rel.starts_with("crates/") && rel.contains("/src/bin/") && rel.ends_with(".rs"))
        || (rel.starts_with("examples/") && rel.ends_with(".rs") && rel.matches('/').count() == 1)
}

/// Integer targets an `as` cast can truncate into from a wider source.
const NARROW_INTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Macro names whose invocation aborts instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Lints one file's source, returning unwaived violations and consuming
/// waivers from its comments. Malformed and unused waivers surface as
/// meta-violations.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let mut waivers = waiver::extract(&toks);
    let crate_name = crate_of(rel_path);
    let mut raw: Vec<Violation> = Vec::new();
    let mk = |rule: &'static str, line: u32, msg: String| Violation {
        rule,
        path: rel_path.to_string(),
        crate_name: crate_name.clone(),
        line,
        msg,
    };

    let code: Vec<&Tok> = toks.iter().filter(|t| t.is_code() && !t.in_test).collect();

    // --- panic surface (hot-path deny + library ratchet) ------------------
    let panic_rule = if in_hot_path(rel_path) {
        NO_PANIC_HOT
    } else {
        NO_PANIC_LIB
    };
    for (i, t) in code.iter().enumerate() {
        let next_is = |s: &str| matches!(code.get(i + 1), Some(n) if n.is(s));
        let prev_is = |s: &str| i > 0 && code[i - 1].is(s);
        if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
            raw.push(mk(
                panic_rule,
                t.line,
                format!("`{}!` aborts instead of returning an error", t.text),
            ));
        }
        if (t.text == "unwrap" || t.text == "expect") && prev_is(".") && next_is("(") {
            raw.push(mk(
                panic_rule,
                t.line,
                format!(
                    "`.{}()` panics on the error path; return a typed `ScError` instead",
                    t.text
                ),
            ));
        }
    }

    // --- wall-clock reads outside the timing authority --------------------
    if in_wallclock_scope(rel_path) {
        for (i, t) in code.iter().enumerate() {
            if t.is("Instant")
                && matches!(code.get(i + 1), Some(a) if a.is(":"))
                && matches!(code.get(i + 2), Some(b) if b.is(":"))
                && matches!(code.get(i + 3), Some(n) if n.is("now"))
            {
                raw.push(mk(
                    NO_WALLCLOCK,
                    t.line,
                    "`Instant::now()` makes output depend on the clock".to_string(),
                ));
            }
            if t.is("SystemTime") {
                raw.push(mk(
                    NO_WALLCLOCK,
                    t.line,
                    "`SystemTime` makes output depend on the clock".to_string(),
                ));
            }
        }
    }

    // --- unordered containers in deterministic crates ---------------------
    if in_forward_scope(rel_path) {
        for t in &code {
            if t.is("HashMap") || t.is("HashSet") {
                raw.push(mk(
                    NO_UNORDERED,
                    t.line,
                    format!(
                        "`{}` iteration order is unspecified; use `BTreeMap`/`BTreeSet` in \
                         bit-identical-output crates",
                        t.text
                    ),
                ));
            }
        }
    }

    // --- lossy casts in the artifact codec --------------------------------
    if in_io_scope(rel_path) {
        for (i, t) in code.iter().enumerate() {
            if t.is("as") {
                if let Some(target) = code.get(i + 1) {
                    if NARROW_INTS.contains(&target.text.as_str()) {
                        raw.push(mk(
                            NO_LOSSY_CAST,
                            t.line,
                            format!(
                                "`as {}` silently truncates; use `{}::try_from` in codec paths",
                                target.text, target.text
                            ),
                        ));
                    }
                }
            }
        }
    }

    // --- missing #![forbid(unsafe_code)] on crate roots -------------------
    if is_crate_root(rel_path) {
        let all_code: Vec<&Tok> = toks.iter().filter(|t| t.is_code()).collect();
        let has = all_code.windows(8).any(|w| {
            w[0].is("#")
                && w[1].is("!")
                && w[2].is("[")
                && w[3].is("forbid")
                && w[4].is("(")
                && w[5].is("unsafe_code")
                && w[6].is(")")
                && w[7].is("]")
        });
        if !has {
            raw.push(mk(
                MISSING_FORBID_UNSAFE,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }

    // --- apply waivers ----------------------------------------------------
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let matching = waivers.iter_mut().find(|w| {
            w.malformed.is_none()
                && (w.line == v.line || w.covers == v.line)
                && w.rules.iter().any(|r| r == v.rule)
        });
        match matching {
            Some(w) => w.used = true,
            None => out.push(v),
        }
    }
    for w in &waivers {
        if let Some(why) = &w.malformed {
            out.push(Violation {
                rule: INVALID_WAIVER,
                path: rel_path.to_string(),
                crate_name: crate_name.clone(),
                line: w.line,
                msg: format!("malformed waiver: {why}"),
            });
        } else if !w.used {
            out.push(Violation {
                rule: UNUSED_WAIVER,
                path: rel_path.to_string(),
                crate_name: crate_name.clone(),
                line: w.line,
                msg: format!(
                    "waiver for `{}` matched no violation; delete it",
                    w.rules.join(", ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Ratchet-class violations grouped per `(rule, crate)` key.
pub type RatchetMap = BTreeMap<(String, String), Vec<Violation>>;

/// Splits violations into deny-class and ratchet-class, the latter counted
/// per (rule, crate).
pub fn partition(violations: Vec<Violation>) -> (Vec<Violation>, RatchetMap) {
    let mut deny = Vec::new();
    let mut ratchet: RatchetMap = BTreeMap::new();
    for v in violations {
        if is_ratcheted(v.rule) {
            ratchet
                .entry((v.rule.to_string(), v.crate_name.clone()))
                .or_default()
                .push(v);
        } else {
            deny.push(v);
        }
    }
    (deny, ratchet)
}

/// Exposes waiver bookkeeping for reporting: how many waivers a file
/// carries (used by `--report` statistics).
pub fn count_waivers(src: &str) -> usize {
    waiver::extract(&lex(src))
        .iter()
        .filter(|w| w.malformed.is_none())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/serve.rs";
    const LIB: &str = "crates/vit/src/model.rs";
    const IO: &str = "crates/io/src/format.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_hot_path_is_deny_class() {
        let vs = lint_source(HOT, "fn f() { x.unwrap(); }");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, NO_PANIC_HOT);
        assert_eq!(vs[0].line, 1);
        assert!(!is_ratcheted(NO_PANIC_HOT));
    }

    #[test]
    fn http_library_code_is_hot_path_but_loadgen_is_not() {
        // A panic in the HTTP front-end kills a socket thread: the whole
        // `ascend-http` library is deny-class. The loadgen bin is tooling
        // and stays on the ratchet, but — being its own crate root — it
        // must carry `#![forbid(unsafe_code)]` itself.
        let src = "fn f() { x.unwrap(); }";
        for file in ["crates/http/src/server.rs", "crates/http/src/http1.rs"] {
            let vs = lint_source(file, src);
            assert_eq!(vs.len(), 1, "{file}");
            assert_eq!(vs[0].rule, NO_PANIC_HOT, "{file}");
        }
        let vs = lint_source("crates/http/src/bin/loadgen.rs", src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_LIB).count(), 1);
        assert_eq!(vs.iter().filter(|v| v.rule == MISSING_FORBID_UNSAFE).count(), 1);
        let clean = lint_source(
            "crates/http/src/bin/loadgen.rs",
            "#![forbid(unsafe_code)]\nfn f() {}",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn unwrap_in_library_code_is_ratchet_class() {
        let vs = lint_source(LIB, "fn f() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_LIB).count(), 2);
        assert!(is_ratcheted(NO_PANIC_LIB));
    }

    #[test]
    fn panic_macros_fire_but_assert_does_not() {
        let src = "fn f() { assert!(ok); assert_eq!(a, b); panic!(\"boom\"); unreachable!(); }";
        let fired = rules_fired(HOT, src);
        assert_eq!(fired, [NO_PANIC_HOT, NO_PANIC_HOT]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                   r.expect_end(); e.expect_err(\"m\"); }";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn commented_and_quoted_panics_do_not_fire() {
        let src = "// x.unwrap() would panic!\n/* y.expect(\"no\") */\n\
                   let s = \"unwrap() panic!\"; let r = r#\".unwrap()\"#;";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn test_module_panics_do_not_fire() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); panic!(); }\n}";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn instant_now_is_deny_class_everywhere_but_the_timing_authority() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_WALLCLOCK).count(), 1);
        assert_eq!(
            vs.iter().find(|v| v.rule == NO_WALLCLOCK).map(|v| v.line),
            Some(2)
        );
        // The CLI and the HTTP front-end are library-surface code: a
        // clock read there needs a waiver naming why it is sanctioned.
        for file in ["crates/cli/src/main.rs", "crates/http/src/metrics.rs"] {
            assert!(
                lint_source(file, src).iter().any(|v| v.rule == NO_WALLCLOCK),
                "{file} must be in wallclock scope"
            );
        }
        // ascend-obs IS the timing authority: its clock reads are the
        // sanctioned ones every other crate routes through.
        assert!(lint_source("crates/obs/src/stage.rs", src)
            .iter()
            .all(|v| v.rule != NO_WALLCLOCK));
        // Tooling bins (loadgen, bench figures) measure time by nature.
        assert!(lint_source("crates/http/src/bin/loadgen.rs", src)
            .iter()
            .all(|v| v.rule != NO_WALLCLOCK));
    }

    #[test]
    fn obs_primitives_are_hot_path_for_the_panic_rule() {
        // A panic inside a metric update or span record runs on a pool
        // worker or connection thread: deny-class, like the serve layer.
        let vs = lint_source("crates/obs/src/metrics.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
        let vs = lint_source("crates/core/src/instrument.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
    }

    #[test]
    fn importing_instant_without_calling_now_is_fine() {
        let src = "use std::time::Instant;\nfn f(t: Instant) -> Instant { t }";
        assert!(rules_fired(HOT, src).iter().all(|r| *r != NO_WALLCLOCK));
    }

    #[test]
    fn system_time_fires_anywhere_in_forward_scope() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }";
        assert!(rules_fired("crates/tensor/src/tensor.rs", src).contains(&NO_WALLCLOCK));
    }

    #[test]
    fn hashmap_fires_in_deterministic_crates_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let vs = lint_source("crates/sc-core/src/bitstream.rs", src);
        assert!(vs.iter().any(|v| v.rule == NO_UNORDERED));
        assert!(lint_source("crates/bench/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != NO_UNORDERED));
    }

    #[test]
    fn btreemap_is_always_fine() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }";
        assert!(rules_fired("crates/sc-core/src/bitstream.rs", src).is_empty());
    }

    #[test]
    fn narrowing_casts_fire_in_io_only() {
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert!(rules_fired(IO, src).contains(&NO_LOSSY_CAST));
        assert!(rules_fired("crates/core/src/artifact.rs", src)
            .iter()
            .all(|r| *r != NO_LOSSY_CAST));
    }

    #[test]
    fn widening_casts_do_not_fire() {
        let src = "fn f(x: u32) -> u64 { let a = x as u64; let b = x as f64; a }";
        assert!(rules_fired(IO, src).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_fires_on_crate_roots_only() {
        let bare = "pub fn f() {}";
        assert_eq!(
            rules_fired("crates/io/src/lib.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert_eq!(
            rules_fired("crates/cli/src/main.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert_eq!(
            rules_fired("examples/quickstart.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert!(rules_fired("crates/io/src/format.rs", bare).is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(rules_fired("crates/io/src/lib.rs", good).is_empty());
    }

    #[test]
    fn waiver_suppresses_exactly_its_rule_on_its_line() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path) -- clamp makes this total\n\
                   fn f() { x.unwrap(); }";
        assert!(rules_fired(HOT, src).is_empty());
        // Same waiver, wrong rule: violation survives AND the waiver is
        // flagged unused.
        let src = "// ascend-lint: allow(no-wallclock-in-forward) -- wrong rule\n\
                   fn f() { x.unwrap(); }";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&NO_PANIC_HOT));
        assert!(fired.contains(&UNUSED_WAIVER));
    }

    #[test]
    fn trailing_waiver_works_on_the_same_line() {
        let src = "fn f() { x.unwrap() } // ascend-lint: allow(no-panic-in-hot-path) -- total by construction";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn waiver_does_not_leak_past_the_next_code_line() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path) -- only the next line\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
        assert_eq!(
            vs.iter().find(|v| v.rule == NO_PANIC_HOT).map(|v| v.line),
            Some(3)
        );
    }

    #[test]
    fn malformed_waiver_is_a_violation() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path)\nfn f() { x.unwrap(); }";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&INVALID_WAIVER));
        // And it does NOT suppress the violation.
        assert!(fired.contains(&NO_PANIC_HOT));
    }

    #[test]
    fn one_waiver_can_cover_two_rules() {
        let src = "fn f() { let t = Instant::now().elapsed(); t.unwrap() }\
                   // ascend-lint: allow(no-panic-in-hot-path, no-wallclock-in-forward) -- report timing only";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/sc-core/src/bsn.rs"), "sc-core");
        assert_eq!(crate_of("crates/core/src/serve.rs"), "core");
        assert_eq!(crate_of("examples/quickstart.rs"), "examples");
    }

    #[test]
    fn partition_routes_by_severity() {
        let vs = vec![
            Violation {
                rule: NO_PANIC_HOT,
                path: HOT.into(),
                crate_name: "core".into(),
                line: 1,
                msg: String::new(),
            },
            Violation {
                rule: NO_PANIC_LIB,
                path: LIB.into(),
                crate_name: "vit".into(),
                line: 2,
                msg: String::new(),
            },
        ];
        let (deny, ratchet) = partition(vs);
        assert_eq!(deny.len(), 1);
        assert_eq!(
            ratchet
                .get(&(NO_PANIC_LIB.to_string(), "vit".to_string()))
                .map(Vec::len),
            Some(1)
        );
    }
}
