//! The invariant rules and the engine that applies them.
//!
//! Each rule backstops a runtime guarantee the test suite already proves
//! dynamically (see `RULES.md` for the catalog and the mapping to tests).
//! Rules come in two severities:
//!
//! * **Deny** — zero unwaived violations allowed anywhere in the rule's
//!   scope. These protect the hot-path contracts directly.
//! * **Ratchet** — existing violations are tolerated up to the counts in
//!   the checked-in baseline (`crates/lint/baseline.tsv`); the count per
//!   (rule, crate) may only go *down*, exactly like the CI test-count
//!   floor may only go up.
//!
//! Detection is token-sequence matching over [`crate::lexer`] output:
//! comments, strings, and `#[cfg(test)]` regions can never fire a rule.

use std::collections::BTreeMap;

use crate::lexer::{lex, Tok};
use crate::scope;
use crate::waiver;

/// Rule: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in hot-path modules.
pub const NO_PANIC_HOT: &str = "no-panic-in-hot-path";
/// Rule: same panic surface, counted (ratcheted) in the rest of the
/// library code.
pub const NO_PANIC_LIB: &str = "no-panic-in-lib";
/// Rule: no wall-clock reads in forward/compute crates.
pub const NO_WALLCLOCK: &str = "no-wallclock-in-forward";
/// Rule: no `HashMap`/`HashSet` in deterministic-output crates.
pub const NO_UNORDERED: &str = "no-unordered-iteration";
/// Rule: no potentially-truncating `as` casts in the artifact codec.
pub const NO_LOSSY_CAST: &str = "no-lossy-cast-in-io";
/// Rule: every crate root must carry `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Rule: no potentially-blocking operation (channel `recv`/`send`,
/// thread `join`, `ServePool::submit`, file I/O, `thread::sleep`, a
/// `Condvar::wait` on a *different* mutex) while a lock guard is live.
pub const NO_BLOCKING_UNDER_LOCK: &str = "no-blocking-under-lock";
/// Rule: the workspace-wide lock-acquisition graph (unioned through
/// direct callees by name) must stay acyclic — no AB-BA inversions.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule: `Condvar::wait` results must be re-checked in a `while`-style
/// loop, never consumed from a bare `if` or straight-line code.
pub const CONDVAR_WAIT_LOOP: &str = "condvar-wait-loop";
/// Meta-rule: a comment that looks like a waiver but does not parse.
pub const INVALID_WAIVER: &str = "invalid-waiver";
/// Meta-rule: a well-formed waiver no violation ever matched.
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Every real (waivable) rule id, in catalog order.
pub const RULES: [&str; 9] = [
    NO_PANIC_HOT,
    NO_PANIC_LIB,
    NO_WALLCLOCK,
    NO_UNORDERED,
    NO_LOSSY_CAST,
    MISSING_FORBID_UNSAFE,
    NO_BLOCKING_UNDER_LOCK,
    LOCK_ORDER,
    CONDVAR_WAIT_LOOP,
];

/// One rule hit at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of the constants above).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Crate the path belongs to (directory name under `crates/`, or
    /// `examples`).
    pub crate_name: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl Violation {
    /// `path:line rule — msg`, the clickable report form.
    pub fn render(&self) -> String {
        format!("{}:{} {} — {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Whether a rule ratchets against the baseline instead of failing
/// outright: everything except [`NO_PANIC_LIB`] is deny-class.
pub fn is_ratcheted(rule: &str) -> bool {
    rule == NO_PANIC_LIB
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("examples") => "examples".to_string(),
        _ => "unknown".to_string(),
    }
}

/// Hot-path modules: the serving/backend/engine forward files, every
/// `sc-*` kernel crate, the HTTP front-end (`ascend-http` library
/// code — a panic there kills a socket thread or the listener, so it is
/// held to the same deny-class bar; the `loadgen` bin is tooling, like
/// the CLI, and rides the ratchet instead), the model registry
/// (`ascend-registry` — its lock/warm/evict machinery runs on request
/// threads, and a panic while the slot table is mid-update wedges every
/// model behind the poisoned mutex), and the `ascend-obs` observability
/// primitives (they run inside pool workers and connection threads — a
/// panic in a metric update takes the request down with it).
fn in_hot_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/core/src/serve.rs"
            | "crates/core/src/session.rs"
            | "crates/core/src/backend.rs"
            | "crates/core/src/engine.rs"
            | "crates/core/src/instrument.rs"
    ) || rel.starts_with("crates/sc-core/src/")
        || rel.starts_with("crates/sc-nonlinear/src/")
        || rel.starts_with("crates/sc-hw/src/")
        || rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/registry/src/")
        || (rel.starts_with("crates/http/src/") && !rel.starts_with("crates/http/src/bin/"))
}

/// Crates whose outputs must be bit-identical across runs and worker
/// counts — unordered iteration is banned here.
fn in_forward_scope(rel: &str) -> bool {
    matches!(
        crate_of(rel).as_str(),
        "sc-core" | "sc-nonlinear" | "sc-hw" | "tensor" | "vit" | "io" | "core"
    )
}

/// Files where wall-clock reads are deny-class: every library file in the
/// workspace *except* `ascend-obs` (the one sanctioned timing authority —
/// all durations flow through its `StageTimer`/histograms/trace ring),
/// the linter itself, and per-crate tooling bins under `src/bin/`.
/// Serving code is in scope on purpose: its few sanctioned timestamp
/// sites (the ServeReport metrics, the queue-wait/service split, the
/// `/metrics` uptime anchor) each carry an explicit waiver stating why
/// the read can never reach the logits.
fn in_wallclock_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.starts_with("crates/obs/")
        && !rel.starts_with("crates/lint/")
}

/// The artifact codec: parsing paths must fail closed, never truncate.
fn in_io_scope(rel: &str) -> bool {
    rel.starts_with("crates/io/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every `lib.rs`
/// and `main.rs` under `crates/*/src`, every extra binary under
/// `crates/*/src/bin/` (each is its own crate root — the attribute on
/// `lib.rs` does not cover it), and every top-level bin/lib file of the
/// `examples` crate.
fn is_crate_root(rel: &str) -> bool {
    (rel.starts_with("crates/") && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")))
        || (rel.starts_with("crates/") && rel.contains("/src/bin/") && rel.ends_with(".rs"))
        || (rel.starts_with("examples/") && rel.ends_with(".rs") && rel.matches('/').count() == 1)
}

/// Integer targets an `as` cast can truncate into from a wider source.
const NARROW_INTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Macro names whose invocation aborts instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One file's analysis, before waiver application: the per-file
/// violations, the waivers available to consume them, and the scope
/// analysis the workspace-wide [`lock_order`] phase reads.
///
/// The lint pipeline is split in three so cross-file rules stay
/// per-line-waivable: [`analyze_file`] per file → [`lock_order`] over
/// all files → [`finish`] per file (waivers + meta-violations).
/// [`lint_source`] composes all three for the single-file case.
#[derive(Debug)]
pub struct FileLint {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Crate the path belongs to.
    pub crate_name: String,
    /// Per-function scope analysis (lock sites, calls, blocking ops).
    pub fns: Vec<scope::FnScope>,
    /// Pre-waiver violations from the per-file rules.
    raw: Vec<Violation>,
    /// Waivers extracted from the file's comments.
    waivers: Vec<waiver::Waiver>,
}

impl FileLint {
    /// Well-formed waivers the file carries (for `--report` statistics).
    pub fn waiver_count(&self) -> usize {
        self.waivers.iter().filter(|w| w.malformed.is_none()).count()
    }
}

/// Renders a held-site list for a message: `` `a` + `b` ``.
fn site_list(sites: &[String]) -> String {
    sites
        .iter()
        .map(|s| format!("`{s}`"))
        .collect::<Vec<_>>()
        .join(" + ")
}

/// Phase 1: runs every per-file rule over one source file.
pub fn analyze_file(rel_path: &str, src: &str) -> FileLint {
    let toks = lex(src);
    let waivers = waiver::extract(&toks);
    let crate_name = crate_of(rel_path);
    let mut raw: Vec<Violation> = Vec::new();
    let mk = |rule: &'static str, line: u32, msg: String| Violation {
        rule,
        path: rel_path.to_string(),
        crate_name: crate_name.clone(),
        line,
        msg,
    };

    let code: Vec<&Tok> = toks.iter().filter(|t| t.is_code() && !t.in_test).collect();

    // --- panic surface (hot-path deny + library ratchet) ------------------
    let panic_rule = if in_hot_path(rel_path) {
        NO_PANIC_HOT
    } else {
        NO_PANIC_LIB
    };
    for (i, t) in code.iter().enumerate() {
        let next_is = |s: &str| matches!(code.get(i + 1), Some(n) if n.is(s));
        let prev_is = |s: &str| i > 0 && code[i - 1].is(s);
        if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
            raw.push(mk(
                panic_rule,
                t.line,
                format!("`{}!` aborts instead of returning an error", t.text),
            ));
        }
        if (t.text == "unwrap" || t.text == "expect") && prev_is(".") && next_is("(") {
            raw.push(mk(
                panic_rule,
                t.line,
                format!(
                    "`.{}()` panics on the error path; return a typed `ScError` instead",
                    t.text
                ),
            ));
        }
    }

    // --- wall-clock reads outside the timing authority --------------------
    if in_wallclock_scope(rel_path) {
        for (i, t) in code.iter().enumerate() {
            if t.is("Instant")
                && matches!(code.get(i + 1), Some(a) if a.is(":"))
                && matches!(code.get(i + 2), Some(b) if b.is(":"))
                && matches!(code.get(i + 3), Some(n) if n.is("now"))
            {
                raw.push(mk(
                    NO_WALLCLOCK,
                    t.line,
                    "`Instant::now()` makes output depend on the clock".to_string(),
                ));
            }
            if t.is("SystemTime") {
                raw.push(mk(
                    NO_WALLCLOCK,
                    t.line,
                    "`SystemTime` makes output depend on the clock".to_string(),
                ));
            }
        }
    }

    // --- unordered containers in deterministic crates ---------------------
    if in_forward_scope(rel_path) {
        for t in &code {
            if t.is("HashMap") || t.is("HashSet") {
                raw.push(mk(
                    NO_UNORDERED,
                    t.line,
                    format!(
                        "`{}` iteration order is unspecified; use `BTreeMap`/`BTreeSet` in \
                         bit-identical-output crates",
                        t.text
                    ),
                ));
            }
        }
    }

    // --- lossy casts in the artifact codec --------------------------------
    if in_io_scope(rel_path) {
        for (i, t) in code.iter().enumerate() {
            if t.is("as") {
                if let Some(target) = code.get(i + 1) {
                    if NARROW_INTS.contains(&target.text.as_str()) {
                        raw.push(mk(
                            NO_LOSSY_CAST,
                            t.line,
                            format!(
                                "`as {}` silently truncates; use `{}::try_from` in codec paths",
                                target.text, target.text
                            ),
                        ));
                    }
                }
            }
        }
    }

    // --- missing #![forbid(unsafe_code)] on crate roots -------------------
    if is_crate_root(rel_path) {
        let all_code: Vec<&Tok> = toks.iter().filter(|t| t.is_code()).collect();
        let has = all_code.windows(8).any(|w| {
            w[0].is("#")
                && w[1].is("!")
                && w[2].is("[")
                && w[3].is("forbid")
                && w[4].is("(")
                && w[5].is("unsafe_code")
                && w[6].is(")")
                && w[7].is("]")
        });
        if !has {
            raw.push(mk(
                MISSING_FORBID_UNSAFE,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }

    // --- concurrency discipline (scope-aware) -----------------------------
    let fns = scope::analyze(&toks, &format!("{crate_name}:"));
    for f in &fns {
        for b in &f.blocking {
            if !b.held.is_empty() {
                raw.push(mk(
                    NO_BLOCKING_UNDER_LOCK,
                    b.line,
                    format!(
                        "`{}` in `{}` may block while lock guard(s) {} are held — every \
                         thread contending for the lock stalls behind it; drop the guard first",
                        b.what,
                        f.name,
                        site_list(&b.held)
                    ),
                ));
            }
        }
        for w in &f.waits {
            if !w.held_other.is_empty() {
                raw.push(mk(
                    NO_BLOCKING_UNDER_LOCK,
                    w.line,
                    format!(
                        "`Condvar::{}` in `{}` releases only its own mutex; guard(s) {} stay \
                         held across the wait",
                        w.what,
                        f.name,
                        site_list(&w.held_other)
                    ),
                ));
            }
            if !w.in_loop {
                raw.push(mk(
                    CONDVAR_WAIT_LOOP,
                    w.line,
                    format!(
                        "`Condvar::{}` in `{}` outside a loop — spurious wakeups require a \
                         while-style recheck of the condition",
                        w.what, f.name
                    ),
                ));
            }
        }
    }

    FileLint {
        path: rel_path.to_string(),
        crate_name,
        fns,
        raw,
        waivers,
    }
}

/// Phase 2: the workspace-wide lock-order analysis.
///
/// Builds the lock-acquisition graph — a direct edge `A → B` whenever a
/// function acquires site `B` while holding `A`, plus union edges through
/// *direct* callees matched by name (`A → B` when a function holding `A`
/// calls a function that acquires `B`) — and flags every edge that
/// participates in a cycle. An `A → B` / `B → A` pair is exactly an AB-BA
/// inversion; a self-edge is a re-entrant acquisition, which deadlocks
/// `std::sync::Mutex` outright. Violations anchor at the acquiring (or
/// calling) line in the *caller*, so each end of an inversion is
/// individually waivable.
pub fn lock_order(files: &[FileLint]) -> Vec<Violation> {
    use std::collections::BTreeSet;

    // Direct acquisitions per function name, merged workspace-wide. Two
    // crates defining same-named helpers merge — a documented
    // over-approximation that keeps the union O(names).
    let mut fn_sites: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for fl in files {
        for f in &fl.fns {
            let entry = fn_sites.entry(f.name.as_str()).or_default();
            for a in &f.acquires {
                entry.insert(a.site.as_str());
            }
        }
    }

    // Edge instances: (from, to, path, line, via-callee or "").
    let mut edges: BTreeSet<(String, String, String, u32, String)> = BTreeSet::new();
    for fl in files {
        for f in &fl.fns {
            for a in &f.acquires {
                for h in &a.held {
                    edges.insert((h.clone(), a.site.clone(), fl.path.clone(), a.line, String::new()));
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                if let Some(sites) = fn_sites.get(c.callee.as_str()) {
                    for s in sites {
                        for h in &c.held {
                            edges.insert((
                                h.clone(),
                                (*s).to_string(),
                                fl.path.clone(),
                                c.line,
                                c.callee.clone(),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Site-level adjacency for cycle detection.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to, ..) in &edges {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    // BFS: shortest path `from → … → to`, as site names.
    let path_between = |from: &str, to: &str| -> Option<Vec<String>> {
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to && !prev.is_empty() {
                let mut chain = vec![to.to_string()];
                let mut cur = to;
                while let Some(p) = prev.get(cur) {
                    chain.push((*p).to_string());
                    cur = p;
                    if cur == from {
                        break;
                    }
                }
                chain.reverse();
                return Some(chain);
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if !prev.contains_key(m) {
                        prev.insert(m, n);
                        queue.push_back(m);
                    }
                }
            }
        }
        None
    };

    let mut out = Vec::new();
    for (from, to, path, line, via) in &edges {
        let cycle = if from == to {
            Some(vec![from.clone()])
        } else {
            // The edge closes a cycle iff `to` reaches back to `from`.
            path_between(to, from)
        };
        let Some(back) = cycle else { continue };
        let mut chain: Vec<&str> = vec![from.as_str(), to.as_str()];
        chain.extend(back.iter().skip(1).map(String::as_str));
        if chain.last() != Some(&from.as_str()) {
            chain.push(from.as_str());
        }
        let cycle_str = chain.join(" -> ");
        let msg = if from == to {
            format!(
                "re-entrant acquisition of `{from}` (already held) — `std::sync::Mutex` \
                 is not re-entrant, this deadlocks"
            )
        } else if via.is_empty() {
            format!(
                "acquiring `{to}` while holding `{from}` inverts the lock order used \
                 elsewhere (cycle: {cycle_str}) — an AB-BA deadlock window"
            )
        } else {
            format!(
                "call to `{via}` acquires `{to}` while `{from}` is held, inverting the \
                 lock order used elsewhere (cycle: {cycle_str}) — an AB-BA deadlock window"
            )
        };
        out.push(Violation {
            rule: LOCK_ORDER,
            path: path.clone(),
            crate_name: crate_of(path),
            line: *line,
            msg,
        });
    }
    out
}

/// Phase 3: applies the file's waivers to its violations (per-file rules
/// plus any cross-file `cross` violations attributed to this file) and
/// surfaces malformed/unused waivers as meta-violations.
pub fn finish(file: FileLint, cross: Vec<Violation>) -> Vec<Violation> {
    let FileLint {
        path,
        crate_name,
        mut raw,
        mut waivers,
        ..
    } = file;
    raw.extend(cross);
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let matching = waivers.iter_mut().find(|w| {
            w.malformed.is_none()
                && (w.line == v.line || w.covers == v.line)
                && w.rules.iter().any(|r| r == v.rule)
        });
        match matching {
            Some(w) => w.used = true,
            None => out.push(v),
        }
    }
    for w in &waivers {
        if let Some(why) = &w.malformed {
            out.push(Violation {
                rule: INVALID_WAIVER,
                path: path.clone(),
                crate_name: crate_name.clone(),
                line: w.line,
                msg: format!("malformed waiver: {why}"),
            });
        } else if !w.used {
            out.push(Violation {
                rule: UNUSED_WAIVER,
                path: path.clone(),
                crate_name: crate_name.clone(),
                line: w.line,
                msg: format!(
                    "waiver for `{}` matched no violation; delete it",
                    w.rules.join(", ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lints one file's source in isolation: the per-file rules, a
/// single-file lock-order pass, and waiver application. The workspace
/// runner uses the phased API instead so `lock-order` sees every file.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let file = analyze_file(rel_path, src);
    let cross = lock_order(std::slice::from_ref(&file));
    finish(file, cross)
}

/// Ratchet-class violations grouped per `(rule, crate)` key.
pub type RatchetMap = BTreeMap<(String, String), Vec<Violation>>;

/// Splits violations into deny-class and ratchet-class, the latter counted
/// per (rule, crate).
pub fn partition(violations: Vec<Violation>) -> (Vec<Violation>, RatchetMap) {
    let mut deny = Vec::new();
    let mut ratchet: RatchetMap = BTreeMap::new();
    for v in violations {
        if is_ratcheted(v.rule) {
            ratchet
                .entry((v.rule.to_string(), v.crate_name.clone()))
                .or_default()
                .push(v);
        } else {
            deny.push(v);
        }
    }
    (deny, ratchet)
}

/// Exposes waiver bookkeeping for reporting: how many waivers a file
/// carries (used by `--report` statistics).
pub fn count_waivers(src: &str) -> usize {
    waiver::extract(&lex(src))
        .iter()
        .filter(|w| w.malformed.is_none())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/serve.rs";
    const LIB: &str = "crates/vit/src/model.rs";
    const IO: &str = "crates/io/src/format.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_hot_path_is_deny_class() {
        let vs = lint_source(HOT, "fn f() { x.unwrap(); }");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, NO_PANIC_HOT);
        assert_eq!(vs[0].line, 1);
        assert!(!is_ratcheted(NO_PANIC_HOT));
    }

    #[test]
    fn http_library_code_is_hot_path_but_loadgen_is_not() {
        // A panic in the HTTP front-end kills a socket thread: the whole
        // `ascend-http` library is deny-class. The loadgen bin is tooling
        // and stays on the ratchet, but — being its own crate root — it
        // must carry `#![forbid(unsafe_code)]` itself.
        let src = "fn f() { x.unwrap(); }";
        for file in ["crates/http/src/server.rs", "crates/http/src/http1.rs"] {
            let vs = lint_source(file, src);
            assert_eq!(vs.len(), 1, "{file}");
            assert_eq!(vs[0].rule, NO_PANIC_HOT, "{file}");
        }
        let vs = lint_source("crates/http/src/bin/loadgen.rs", src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_LIB).count(), 1);
        assert_eq!(vs.iter().filter(|v| v.rule == MISSING_FORBID_UNSAFE).count(), 1);
        let clean = lint_source(
            "crates/http/src/bin/loadgen.rs",
            "#![forbid(unsafe_code)]\nfn f() {}",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn unwrap_in_library_code_is_ratchet_class() {
        let vs = lint_source(LIB, "fn f() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_LIB).count(), 2);
        assert!(is_ratcheted(NO_PANIC_LIB));
    }

    #[test]
    fn panic_macros_fire_but_assert_does_not() {
        let src = "fn f() { assert!(ok); assert_eq!(a, b); panic!(\"boom\"); unreachable!(); }";
        let fired = rules_fired(HOT, src);
        assert_eq!(fired, [NO_PANIC_HOT, NO_PANIC_HOT]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                   r.expect_end(); e.expect_err(\"m\"); }";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn commented_and_quoted_panics_do_not_fire() {
        let src = "// x.unwrap() would panic!\n/* y.expect(\"no\") */\n\
                   let s = \"unwrap() panic!\"; let r = r#\".unwrap()\"#;";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn test_module_panics_do_not_fire() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); panic!(); }\n}";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn instant_now_is_deny_class_everywhere_but_the_timing_authority() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_WALLCLOCK).count(), 1);
        assert_eq!(
            vs.iter().find(|v| v.rule == NO_WALLCLOCK).map(|v| v.line),
            Some(2)
        );
        // The CLI and the HTTP front-end are library-surface code: a
        // clock read there needs a waiver naming why it is sanctioned.
        for file in ["crates/cli/src/main.rs", "crates/http/src/metrics.rs"] {
            assert!(
                lint_source(file, src).iter().any(|v| v.rule == NO_WALLCLOCK),
                "{file} must be in wallclock scope"
            );
        }
        // ascend-obs IS the timing authority: its clock reads are the
        // sanctioned ones every other crate routes through.
        assert!(lint_source("crates/obs/src/stage.rs", src)
            .iter()
            .all(|v| v.rule != NO_WALLCLOCK));
        // Tooling bins (loadgen, bench figures) measure time by nature.
        assert!(lint_source("crates/http/src/bin/loadgen.rs", src)
            .iter()
            .all(|v| v.rule != NO_WALLCLOCK));
    }

    #[test]
    fn obs_primitives_are_hot_path_for_the_panic_rule() {
        // A panic inside a metric update or span record runs on a pool
        // worker or connection thread: deny-class, like the serve layer.
        let vs = lint_source("crates/obs/src/metrics.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
        let vs = lint_source("crates/core/src/instrument.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
    }

    #[test]
    fn importing_instant_without_calling_now_is_fine() {
        let src = "use std::time::Instant;\nfn f(t: Instant) -> Instant { t }";
        assert!(rules_fired(HOT, src).iter().all(|r| *r != NO_WALLCLOCK));
    }

    #[test]
    fn system_time_fires_anywhere_in_forward_scope() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }";
        assert!(rules_fired("crates/tensor/src/tensor.rs", src).contains(&NO_WALLCLOCK));
    }

    #[test]
    fn hashmap_fires_in_deterministic_crates_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let vs = lint_source("crates/sc-core/src/bitstream.rs", src);
        assert!(vs.iter().any(|v| v.rule == NO_UNORDERED));
        assert!(lint_source("crates/bench/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != NO_UNORDERED));
    }

    #[test]
    fn btreemap_is_always_fine() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }";
        assert!(rules_fired("crates/sc-core/src/bitstream.rs", src).is_empty());
    }

    #[test]
    fn narrowing_casts_fire_in_io_only() {
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert!(rules_fired(IO, src).contains(&NO_LOSSY_CAST));
        assert!(rules_fired("crates/core/src/artifact.rs", src)
            .iter()
            .all(|r| *r != NO_LOSSY_CAST));
    }

    #[test]
    fn widening_casts_do_not_fire() {
        let src = "fn f(x: u32) -> u64 { let a = x as u64; let b = x as f64; a }";
        assert!(rules_fired(IO, src).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_fires_on_crate_roots_only() {
        let bare = "pub fn f() {}";
        assert_eq!(
            rules_fired("crates/io/src/lib.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert_eq!(
            rules_fired("crates/cli/src/main.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert_eq!(
            rules_fired("examples/quickstart.rs", bare),
            [MISSING_FORBID_UNSAFE]
        );
        assert!(rules_fired("crates/io/src/format.rs", bare).is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(rules_fired("crates/io/src/lib.rs", good).is_empty());
    }

    #[test]
    fn waiver_suppresses_exactly_its_rule_on_its_line() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path) -- clamp makes this total\n\
                   fn f() { x.unwrap(); }";
        assert!(rules_fired(HOT, src).is_empty());
        // Same waiver, wrong rule: violation survives AND the waiver is
        // flagged unused.
        let src = "// ascend-lint: allow(no-wallclock-in-forward) -- wrong rule\n\
                   fn f() { x.unwrap(); }";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&NO_PANIC_HOT));
        assert!(fired.contains(&UNUSED_WAIVER));
    }

    #[test]
    fn trailing_waiver_works_on_the_same_line() {
        let src = "fn f() { x.unwrap() } // ascend-lint: allow(no-panic-in-hot-path) -- total by construction";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn waiver_does_not_leak_past_the_next_code_line() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path) -- only the next line\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.iter().filter(|v| v.rule == NO_PANIC_HOT).count(), 1);
        assert_eq!(
            vs.iter().find(|v| v.rule == NO_PANIC_HOT).map(|v| v.line),
            Some(3)
        );
    }

    #[test]
    fn malformed_waiver_is_a_violation() {
        let src = "// ascend-lint: allow(no-panic-in-hot-path)\nfn f() { x.unwrap(); }";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&INVALID_WAIVER));
        // And it does NOT suppress the violation.
        assert!(fired.contains(&NO_PANIC_HOT));
    }

    #[test]
    fn one_waiver_can_cover_two_rules() {
        let src = "fn f() { let t = Instant::now().elapsed(); t.unwrap() }\
                   // ascend-lint: allow(no-panic-in-hot-path, no-wallclock-in-forward) -- report timing only";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/sc-core/src/bsn.rs"), "sc-core");
        assert_eq!(crate_of("crates/core/src/serve.rs"), "core");
        assert_eq!(crate_of("examples/quickstart.rs"), "examples");
    }

    #[test]
    fn partition_routes_by_severity() {
        let vs = vec![
            Violation {
                rule: NO_PANIC_HOT,
                path: HOT.into(),
                crate_name: "core".into(),
                line: 1,
                msg: String::new(),
            },
            Violation {
                rule: NO_PANIC_LIB,
                path: LIB.into(),
                crate_name: "vit".into(),
                line: 2,
                msg: String::new(),
            },
        ];
        let (deny, ratchet) = partition(vs);
        assert_eq!(deny.len(), 1);
        assert_eq!(
            ratchet
                .get(&(NO_PANIC_LIB.to_string(), "vit".to_string()))
                .map(Vec::len),
            Some(1)
        );
    }

    #[test]
    fn recv_under_a_live_guard_is_flagged_at_the_blocking_line() {
        let src = "fn worker(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let guard = rx.lock();\n\
                   \x20   let job = guard.recv();\n\
                   }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, NO_BLOCKING_UNDER_LOCK);
        assert_eq!(vs[0].path, HOT);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].msg.contains("recv"), "{}", vs[0].msg);
        assert!(vs[0].msg.contains("core:rx"), "{}", vs[0].msg);
        assert!(!is_ratcheted(NO_BLOCKING_UNDER_LOCK));
    }

    #[test]
    fn blocking_after_the_guard_scope_closes_is_fine() {
        let src = "fn worker(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let job = {\n\
                   \x20       let guard = rx.lock();\n\
                   \x20       guard.try_recv()\n\
                   \x20   };\n\
                   \x20   other.recv();\n\
                   }";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn ab_ba_inversion_is_flagged_at_both_acquiring_lines() {
        let src = "fn first(x: &S) {\n\
                   \x20   let g1 = x.a.lock();\n\
                   \x20   let g2 = x.b.lock();\n\
                   }\n\
                   fn second(x: &S) {\n\
                   \x20   let g2 = x.b.lock();\n\
                   \x20   let g1 = x.a.lock();\n\
                   }";
        let vs = lint_source(HOT, src);
        let order: Vec<_> = vs.iter().filter(|v| v.rule == LOCK_ORDER).collect();
        assert_eq!(order.len(), 2, "{vs:?}");
        assert_eq!((order[0].path.as_str(), order[0].line), (HOT, 3));
        assert_eq!((order[1].path.as_str(), order[1].line), (HOT, 7));
        assert!(order[0].msg.contains("inverts the lock order"), "{}", order[0].msg);
        assert!(order[0].msg.contains("core:a") && order[0].msg.contains("core:b"));
    }

    #[test]
    fn consistent_lock_order_across_functions_is_fine() {
        let src = "fn first(x: &S) {\n\
                   \x20   let g1 = x.a.lock();\n\
                   \x20   let g2 = x.b.lock();\n\
                   }\n\
                   fn second(x: &S) {\n\
                   \x20   let g1 = x.a.lock();\n\
                   \x20   let g2 = x.b.lock();\n\
                   }";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn reentrant_acquisition_of_the_same_site_is_a_self_deadlock() {
        let src = "fn f(x: &S) {\n\
                   \x20   let g = x.a.lock();\n\
                   \x20   let h = x.a.lock();\n\
                   }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LOCK_ORDER);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].msg.contains("re-entrant"), "{}", vs[0].msg);
    }

    #[test]
    fn lock_order_union_spans_files_through_a_named_callee() {
        let caller = "fn outer(x: &S) {\n\
                      \x20   let g = x.a.lock();\n\
                      \x20   helper(x);\n\
                      }";
        let callee = "fn helper(x: &S) {\n\
                      \x20   let g = x.b.lock();\n\
                      }\n\
                      fn other(x: &S) {\n\
                      \x20   let g = x.b.lock();\n\
                      \x20   let h = x.a.lock();\n\
                      }";
        let f1 = analyze_file("crates/core/src/a.rs", caller);
        let f2 = analyze_file("crates/core/src/b.rs", callee);
        let vs = lock_order(&[f1, f2]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        let via = vs.iter().find(|v| v.path == "crates/core/src/a.rs").unwrap();
        assert_eq!(via.line, 3);
        assert!(via.msg.contains("helper"), "{}", via.msg);
        let direct = vs.iter().find(|v| v.path == "crates/core/src/b.rs").unwrap();
        assert_eq!(direct.line, 6);
    }

    #[test]
    fn condvar_wait_outside_a_loop_is_flagged() {
        let src = "fn f(m: &Mutex<bool>, cv: &Condvar) {\n\
                   \x20   let g = m.lock();\n\
                   \x20   let g2 = cv.wait(g);\n\
                   }";
        let vs = lint_source(HOT, src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, CONDVAR_WAIT_LOOP);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].msg.contains("loop"), "{}", vs[0].msg);
    }

    #[test]
    fn condvar_wait_in_a_while_recheck_loop_is_fine() {
        let src = "fn f(m: &Mutex<bool>, cv: &Condvar) {\n\
                   \x20   let mut g = m.lock();\n\
                   \x20   while !*g {\n\
                   \x20       g = cv.wait(g);\n\
                   \x20   }\n\
                   }";
        assert!(rules_fired(HOT, src).is_empty());
    }

    #[test]
    fn condvar_wait_with_a_second_guard_held_is_blocking() {
        // Waiting releases only its own mutex; any other guard stays
        // held for the whole sleep.
        let src = "fn f(x: &S) {\n\
                   \x20   let other = x.state.lock();\n\
                   \x20   let mut g = x.m.lock();\n\
                   \x20   while !*g {\n\
                   \x20       g = x.cv.wait(g);\n\
                   \x20   }\n\
                   }";
        let vs = lint_source(HOT, src);
        let fired: Vec<_> = vs.iter().map(|v| v.rule).collect();
        assert!(fired.contains(&NO_BLOCKING_UNDER_LOCK), "{vs:?}");
        assert!(!fired.contains(&CONDVAR_WAIT_LOOP), "{vs:?}");
        let v = vs.iter().find(|v| v.rule == NO_BLOCKING_UNDER_LOCK).unwrap();
        assert_eq!(v.line, 5);
        assert!(v.msg.contains("core:state"), "{}", v.msg);
    }

    #[test]
    fn waiver_suppresses_blocking_under_lock() {
        let src = "fn worker(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let guard = rx.lock();\n\
                   \x20   // ascend-lint: allow(no-blocking-under-lock) -- designed pull point\n\
                   \x20   let job = guard.recv();\n\
                   }";
        assert!(rules_fired(HOT, src).is_empty());
        // A waiver for the wrong rule leaves the violation AND goes unused.
        let src = "fn worker(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let guard = rx.lock();\n\
                   \x20   // ascend-lint: allow(lock-order) -- wrong rule\n\
                   \x20   let job = guard.recv();\n\
                   }";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&NO_BLOCKING_UNDER_LOCK));
        assert!(fired.contains(&UNUSED_WAIVER));
    }

    #[test]
    fn waiver_suppresses_a_cross_file_lock_order_violation() {
        // The inversion is computed workspace-wide but lands on a line,
        // so the normal per-line waiver machinery covers it.
        let src = "fn first(x: &S) {\n\
                   \x20   let g1 = x.a.lock();\n\
                   \x20   // ascend-lint: allow(lock-order) -- b is only probed, never held back\n\
                   \x20   let g2 = x.b.lock();\n\
                   }\n\
                   fn second(x: &S) {\n\
                   \x20   let g2 = x.b.lock();\n\
                   \x20   // ascend-lint: allow(lock-order) -- shutdown path, serialized by caller\n\
                   \x20   let g1 = x.a.lock();\n\
                   }";
        assert!(rules_fired(HOT, src).is_empty());
    }
}
