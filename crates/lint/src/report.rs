//! Human-readable renderings of a lint run.

use crate::baseline::{self, Baseline};
use crate::workspace::Outcome;

/// The `--check` result: pass/fail plus the lines to print.
#[derive(Debug)]
pub struct CheckResult {
    /// Lines describing failures (empty = gate passes).
    pub errors: Vec<String>,
    /// Non-fatal notes (ratchet improvements to commit).
    pub notes: Vec<String>,
}

impl CheckResult {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Evaluates the gate: deny violations fail, ratchet growth fails,
/// ratchet shrinkage is a note.
pub fn check(outcome: &Outcome, baseline: &Baseline) -> CheckResult {
    let mut errors: Vec<String> = outcome.deny.iter().map(|v| v.render()).collect();
    let (growth, improvements) = baseline::compare(&outcome.ratchet_counts(), baseline);
    errors.extend(growth);
    CheckResult {
        errors,
        notes: improvements,
    }
}

/// The full `--report` listing: every violation (deny and ratcheted),
/// grouped and counted.
pub fn full_report(outcome: &Outcome, baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ascend-lint: scanned {} files, {} active waivers\n\n",
        outcome.files, outcome.waivers
    ));
    if outcome.deny.is_empty() {
        out.push_str("deny-class violations: none\n");
    } else {
        out.push_str(&format!("deny-class violations: {}\n", outcome.deny.len()));
        for v in &outcome.deny {
            out.push_str(&format!("  {}\n", v.render()));
        }
    }
    out.push('\n');
    if outcome.ratchet.is_empty() {
        out.push_str("ratcheted violations: none\n");
    } else {
        out.push_str("ratcheted violations (baselined, may only decrease):\n");
        for ((rule, krate), vs) in &outcome.ratchet {
            let allowed = baseline
                .get(&(rule.clone(), krate.clone()))
                .copied()
                .unwrap_or(0);
            out.push_str(&format!(
                "  {rule} in `{krate}`: {} (baseline {allowed})\n",
                vs.len()
            ));
            for v in vs {
                out.push_str(&format!("    {}\n", v.render()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Violation, NO_PANIC_HOT, NO_PANIC_LIB};
    use std::collections::BTreeMap;

    fn outcome(deny: Vec<Violation>, ratchet_n: usize) -> Outcome {
        let mut ratchet = BTreeMap::new();
        if ratchet_n > 0 {
            let vs: Vec<Violation> = (0..ratchet_n)
                .map(|i| Violation {
                    rule: NO_PANIC_LIB,
                    path: "crates/vit/src/model.rs".into(),
                    crate_name: "vit".into(),
                    line: i as u32 + 1,
                    msg: "x".into(),
                })
                .collect();
            ratchet.insert((NO_PANIC_LIB.to_string(), "vit".to_string()), vs);
        }
        Outcome {
            deny,
            ratchet,
            files: 3,
            waivers: 1,
        }
    }

    fn hot_violation() -> Violation {
        Violation {
            rule: NO_PANIC_HOT,
            path: "crates/core/src/serve.rs".into(),
            crate_name: "core".into(),
            line: 9,
            msg: "`.unwrap()` panics".into(),
        }
    }

    #[test]
    fn clean_run_passes_and_says_none() {
        let o = outcome(Vec::new(), 0);
        let r = check(&o, &Baseline::new());
        assert!(r.ok());
        let text = full_report(&o, &Baseline::new());
        assert!(text.contains("deny-class violations: none"));
        assert!(text.contains("ratcheted violations: none"));
    }

    #[test]
    fn deny_violation_fails_with_file_line_location() {
        let o = outcome(vec![hot_violation()], 0);
        let r = check(&o, &Baseline::new());
        assert!(!r.ok());
        assert!(r.errors[0].contains("crates/core/src/serve.rs:9"));
        assert!(r.errors[0].contains(NO_PANIC_HOT));
    }

    #[test]
    fn ratchet_within_baseline_passes_and_over_fails() {
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        assert!(check(&outcome(Vec::new(), 2), &baseline).ok());
        let r = check(&outcome(Vec::new(), 3), &baseline);
        assert!(!r.ok());
        assert!(r.errors[0].contains("exceed the baseline"));
        // Shrink: ok but noted.
        let r = check(&outcome(Vec::new(), 1), &baseline);
        assert!(r.ok());
        assert_eq!(r.notes.len(), 1);
    }

    #[test]
    fn report_lists_ratcheted_locations() {
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        let text = full_report(&outcome(Vec::new(), 2), &baseline);
        assert!(text.contains("no-panic-in-lib in `vit`: 2 (baseline 2)"));
        assert!(text.contains("crates/vit/src/model.rs:1"));
    }
}
