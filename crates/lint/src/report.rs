//! Renderings of a lint run: the default text form, GitHub Actions
//! workflow commands (`--format github`, annotations land on the
//! offending line in the PR diff), and a machine-readable JSON document
//! (`--format json`).

use crate::baseline::{self, Baseline};
use crate::json;
use crate::workspace::Outcome;

/// The `--check` result: pass/fail plus the lines to print.
#[derive(Debug)]
pub struct CheckResult {
    /// Lines describing failures (empty = gate passes).
    pub errors: Vec<String>,
    /// Non-fatal notes (ratchet improvements to commit).
    pub notes: Vec<String>,
}

impl CheckResult {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Evaluates the gate: deny violations fail, ratchet growth fails,
/// ratchet shrinkage is a note.
pub fn check(outcome: &Outcome, baseline: &Baseline) -> CheckResult {
    let mut errors: Vec<String> = outcome.deny.iter().map(|v| v.render()).collect();
    let (growth, improvements) = baseline::compare(&outcome.ratchet_counts(), baseline);
    errors.extend(growth);
    CheckResult {
        errors,
        notes: improvements,
    }
}

/// The full `--report` listing: every violation (deny and ratcheted),
/// grouped and counted.
pub fn full_report(outcome: &Outcome, baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ascend-lint: scanned {} files, {} active waivers\n\n",
        outcome.files, outcome.waivers
    ));
    if outcome.deny.is_empty() {
        out.push_str("deny-class violations: none\n");
    } else {
        out.push_str(&format!("deny-class violations: {}\n", outcome.deny.len()));
        for v in &outcome.deny {
            out.push_str(&format!("  {}\n", v.render()));
        }
    }
    out.push('\n');
    if outcome.ratchet.is_empty() {
        out.push_str("ratcheted violations: none\n");
    } else {
        out.push_str("ratcheted violations (baselined, may only decrease):\n");
        for ((rule, krate), vs) in &outcome.ratchet {
            let allowed = baseline
                .get(&(rule.clone(), krate.clone()))
                .copied()
                .unwrap_or(0);
            out.push_str(&format!(
                "  {rule} in `{krate}`: {} (baseline {allowed})\n",
                vs.len()
            ));
            for v in vs {
                out.push_str(&format!("    {}\n", v.render()));
            }
        }
    }
    out
}

/// Escapes message *data* for a GitHub workflow command.
fn gh_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a workflow-command *property* value (file, title), which
/// additionally reserves `:` and `,`.
fn gh_prop(s: &str) -> String {
    gh_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// The `--format github` rendering: one `::error` annotation per deny
/// violation anchored at its file and line, ratchet growth anchored at
/// the baseline file, ratchet improvements as `::notice`, and a final
/// plain summary line for the job log.
pub fn render_github(outcome: &Outcome, baseline: &Baseline) -> String {
    let mut out = String::new();
    for v in &outcome.deny {
        out.push_str(&format!(
            "::error file={},line={},title={}::{}\n",
            gh_prop(&v.path),
            v.line,
            gh_prop(&format!("ascend-lint {}", v.rule)),
            gh_data(&v.msg)
        ));
    }
    let (growth, improvements) = baseline::compare(&outcome.ratchet_counts(), baseline);
    for g in &growth {
        out.push_str(&format!(
            "::error file={},line=1,title=ascend-lint ratchet::{}\n",
            baseline::BASELINE_PATH,
            gh_data(g)
        ));
    }
    for n in &improvements {
        out.push_str(&format!(
            "::notice file={},line=1,title=ascend-lint ratchet::{}\n",
            baseline::BASELINE_PATH,
            gh_data(n)
        ));
    }
    let problems = outcome.deny.len() + growth.len();
    if problems == 0 {
        out.push_str(&format!(
            "ascend-lint: OK — {} files, {} active waivers\n",
            outcome.files, outcome.waivers
        ));
    } else {
        out.push_str(&format!("ascend-lint: FAIL — {problems} problem(s)\n"));
    }
    out
}

/// The `--format json` rendering: a single JSON object with the gate
/// verdict, every deny violation, the per-(rule, crate) ratchet state,
/// and the same error/note strings the text form prints. Guaranteed to
/// round-trip through [`crate::json::parse`] (CI asserts this).
pub fn render_json(outcome: &Outcome, baseline: &Baseline) -> String {
    let result = check(outcome, baseline);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"ok\": {},\n", result.ok()));
    out.push_str(&format!("  \"files\": {},\n", outcome.files));
    out.push_str(&format!("  \"waivers\": {},\n", outcome.waivers));
    out.push_str("  \"deny\": [");
    for (i, v) in outcome.deny.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"crate\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
            json::escape(v.rule),
            json::escape(&v.path),
            json::escape(&v.crate_name),
            v.line,
            json::escape(&v.msg)
        ));
    }
    out.push_str(if outcome.deny.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"ratchet\": [");
    for (i, ((rule, krate), vs)) in outcome.ratchet.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let allowed = baseline
            .get(&(rule.clone(), krate.clone()))
            .copied()
            .unwrap_or(0);
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"count\": {}, \"baseline\": {}}}",
            json::escape(rule),
            json::escape(krate),
            vs.len(),
            allowed
        ));
    }
    out.push_str(if outcome.ratchet.is_empty() { "],\n" } else { "\n  ],\n" });
    for (key, lines) in [("errors", &result.errors), ("notes", &result.notes)] {
        out.push_str(&format!("  \"{key}\": ["));
        for (i, line) in lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\"", json::escape(line)));
        }
        out.push_str(if lines.is_empty() { "]" } else { "\n  ]" });
        out.push_str(if key == "errors" { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::rules::{Violation, NO_PANIC_HOT, NO_PANIC_LIB};
    use std::collections::BTreeMap;

    fn outcome(deny: Vec<Violation>, ratchet_n: usize) -> Outcome {
        let mut ratchet = BTreeMap::new();
        if ratchet_n > 0 {
            let vs: Vec<Violation> = (0..ratchet_n)
                .map(|i| Violation {
                    rule: NO_PANIC_LIB,
                    path: "crates/vit/src/model.rs".into(),
                    crate_name: "vit".into(),
                    line: i as u32 + 1,
                    msg: "x".into(),
                })
                .collect();
            ratchet.insert((NO_PANIC_LIB.to_string(), "vit".to_string()), vs);
        }
        Outcome {
            deny,
            ratchet,
            files: 3,
            waivers: 1,
        }
    }

    fn hot_violation() -> Violation {
        Violation {
            rule: NO_PANIC_HOT,
            path: "crates/core/src/serve.rs".into(),
            crate_name: "core".into(),
            line: 9,
            msg: "`.unwrap()` panics".into(),
        }
    }

    #[test]
    fn clean_run_passes_and_says_none() {
        let o = outcome(Vec::new(), 0);
        let r = check(&o, &Baseline::new());
        assert!(r.ok());
        let text = full_report(&o, &Baseline::new());
        assert!(text.contains("deny-class violations: none"));
        assert!(text.contains("ratcheted violations: none"));
    }

    #[test]
    fn deny_violation_fails_with_file_line_location() {
        let o = outcome(vec![hot_violation()], 0);
        let r = check(&o, &Baseline::new());
        assert!(!r.ok());
        assert!(r.errors[0].contains("crates/core/src/serve.rs:9"));
        assert!(r.errors[0].contains(NO_PANIC_HOT));
    }

    #[test]
    fn ratchet_within_baseline_passes_and_over_fails() {
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        assert!(check(&outcome(Vec::new(), 2), &baseline).ok());
        let r = check(&outcome(Vec::new(), 3), &baseline);
        assert!(!r.ok());
        assert!(r.errors[0].contains("exceed the baseline"));
        // Shrink: ok but noted.
        let r = check(&outcome(Vec::new(), 1), &baseline);
        assert!(r.ok());
        assert_eq!(r.notes.len(), 1);
    }

    #[test]
    fn report_lists_ratcheted_locations() {
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        let text = full_report(&outcome(Vec::new(), 2), &baseline);
        assert!(text.contains("no-panic-in-lib in `vit`: 2 (baseline 2)"));
        assert!(text.contains("crates/vit/src/model.rs:1"));
    }

    #[test]
    fn github_format_annotates_the_offending_line() {
        let text = render_github(&outcome(vec![hot_violation()], 0), &Baseline::new());
        assert!(
            text.contains(
                "::error file=crates/core/src/serve.rs,line=9,title=ascend-lint no-panic-in-hot-path::"
            ),
            "{text}"
        );
        assert!(text.contains("ascend-lint: FAIL — 1 problem(s)"));
    }

    #[test]
    fn github_format_escapes_message_data() {
        let mut v = hot_violation();
        v.msg = "50% done\nsecond line".into();
        let text = render_github(&outcome(vec![v], 0), &Baseline::new());
        assert!(text.contains("50%25 done%0Asecond line"), "{text}");
        // The annotation stays on one physical line.
        let ann = text.lines().next().unwrap();
        assert!(ann.ends_with("second line"), "{ann}");
    }

    #[test]
    fn github_format_anchors_ratchet_growth_at_the_baseline_file() {
        let text = render_github(&outcome(Vec::new(), 3), &Baseline::new());
        assert!(
            text.contains("::error file=crates/lint/baseline.tsv,line=1,title=ascend-lint ratchet::"),
            "{text}"
        );
        // Improvements are notices, and a clean run says OK.
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        let text = render_github(&outcome(Vec::new(), 1), &baseline);
        assert!(text.contains("::notice file=crates/lint/baseline.tsv"), "{text}");
        assert!(text.contains("ascend-lint: OK"), "{text}");
    }

    #[test]
    fn json_format_parses_and_carries_the_verdict() {
        let mut v = hot_violation();
        v.msg = "quote \" backslash \\ newline\n".into();
        let baseline: Baseline = [((NO_PANIC_LIB.to_string(), "vit".to_string()), 2)]
            .into_iter()
            .collect();
        let text = render_json(&outcome(vec![v], 2), &baseline);
        let doc = crate::json::parse(&text).expect("emitted JSON must parse");
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(doc.get("files").and_then(JsonValue::as_num), Some(3.0));
        let deny = doc.get("deny").and_then(JsonValue::items).unwrap();
        assert_eq!(deny.len(), 1);
        assert_eq!(
            deny[0].get("rule").and_then(JsonValue::as_str),
            Some(NO_PANIC_HOT)
        );
        assert_eq!(deny[0].get("line").and_then(JsonValue::as_num), Some(9.0));
        assert_eq!(
            deny[0].get("msg").and_then(JsonValue::as_str),
            Some("quote \" backslash \\ newline\n")
        );
        let ratchet = doc.get("ratchet").and_then(JsonValue::items).unwrap();
        assert_eq!(ratchet[0].get("count").and_then(JsonValue::as_num), Some(2.0));
        assert_eq!(
            ratchet[0].get("baseline").and_then(JsonValue::as_num),
            Some(2.0)
        );
        assert_eq!(
            doc.get("errors").and_then(JsonValue::items).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn json_format_clean_run_is_ok_with_empty_arrays() {
        let text = render_json(&outcome(Vec::new(), 0), &Baseline::new());
        let doc = crate::json::parse(&text).expect("emitted JSON must parse");
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        for key in ["deny", "ratchet", "errors", "notes"] {
            assert_eq!(
                doc.get(key).and_then(JsonValue::items).map(<[_]>::len),
                Some(0),
                "{key}"
            );
        }
    }
}
