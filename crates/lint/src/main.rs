//! `ascend-lint` — CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p ascend-lint -- --check             # the CI gate
//! cargo run -p ascend-lint -- --check --format github   # PR annotations
//! cargo run -p ascend-lint -- --check --format json     # machine-readable
//! cargo run -p ascend-lint -- --report            # every violation, incl. baselined
//! cargo run -p ascend-lint -- --update-baseline   # rewrite crates/lint/baseline.tsv
//! cargo run -p ascend-lint -- --parse-json FILE   # validate emitted JSON
//! ```
//!
//! Exit codes follow the `ascend-cli` convention: 0 clean, 1 violations,
//! 2 usage or I/O problems.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use ascend_lint::{json, report, workspace};

const USAGE: &str = "\
ascend-lint — static workspace invariant checker (see crates/lint/RULES.md)

USAGE:
    ascend-lint <--check|--report|--update-baseline> [--root PATH] [--format FMT]
    ascend-lint --parse-json FILE

MODES:
    --check            Fail (exit 1) on any deny-class violation or any
                       ratchet count above the committed baseline
    --report           Print every violation, including baselined ones
    --update-baseline  Rewrite crates/lint/baseline.tsv from the current
                       tree (counts may only be committed if they shrank)
    --parse-json FILE  Validate that FILE is well-formed JSON (exit 0
                       valid, 1 malformed) — CI uses this to prove the
                       `--format json` output round-trips

OPTIONS:
    --root PATH        Workspace root (default: found from the current dir)
    --format FMT       Output format for --check: text (default), github
                       (workflow-command annotations), or json
";

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(args: &[String]) -> i32 {
    let mut mode: Option<&str> = None;
    let mut root_flag: Option<PathBuf> = None;
    let mut format = "text";
    let mut parse_json_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                return 0;
            }
            m @ ("--check" | "--report" | "--update-baseline") => {
                if let Some(prev) = mode {
                    eprintln!("ascend-lint: `{m}` conflicts with `{prev}`\n{USAGE}");
                    return 2;
                }
                mode = match m {
                    "--check" => Some("--check"),
                    "--report" => Some("--report"),
                    _ => Some("--update-baseline"),
                };
            }
            "--root" => match it.next() {
                Some(p) => root_flag = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ascend-lint: `--root` needs a path\n{USAGE}");
                    return 2;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "github" | "json")) => {
                    format = match f {
                        "github" => "github",
                        "json" => "json",
                        _ => "text",
                    };
                }
                Some(other) => {
                    eprintln!("ascend-lint: unknown format `{other}` (text|github|json)\n{USAGE}");
                    return 2;
                }
                None => {
                    eprintln!("ascend-lint: `--format` needs a value (text|github|json)\n{USAGE}");
                    return 2;
                }
            },
            "--parse-json" => match it.next() {
                Some(p) => parse_json_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ascend-lint: `--parse-json` needs a file\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("ascend-lint: unknown argument `{other}`\n{USAGE}");
                return 2;
            }
        }
    }
    if let Some(file) = parse_json_file {
        if mode.is_some() || format != "text" {
            eprintln!("ascend-lint: `--parse-json` is a standalone mode\n{USAGE}");
            return 2;
        }
        let body = match std::fs::read_to_string(&file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ascend-lint: cannot read {}: {e}", file.display());
                return 2;
            }
        };
        return match json::parse(&body) {
            Ok(_) => {
                println!("ascend-lint: {} is well-formed JSON", file.display());
                0
            }
            Err(e) => {
                eprintln!("ascend-lint: {} is malformed: {e}", file.display());
                1
            }
        };
    }
    let Some(mode) = mode else {
        eprint!("{USAGE}");
        return 2;
    };
    if format != "text" && mode != "--check" {
        eprintln!("ascend-lint: `--format {format}` only applies to `--check`\n{USAGE}");
        return 2;
    }

    let root = match root_flag {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ascend-lint: cannot read the current directory: {e}");
                    return 2;
                }
            };
            match workspace::find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ascend-lint: {e}");
                    return 2;
                }
            }
        }
    };

    let outcome = match workspace::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ascend-lint: {e}");
            return 2;
        }
    };
    let baseline = match workspace::load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ascend-lint: {e}");
            return 2;
        }
    };

    match mode {
        "--report" => {
            print!("{}", report::full_report(&outcome, &baseline));
            0
        }
        "--update-baseline" => {
            if let Err(e) = workspace::write_baseline(&root, &outcome) {
                eprintln!("ascend-lint: {e}");
                return 2;
            }
            println!(
                "ascend-lint: baseline rewritten from {} files ({} ratcheted violations)",
                outcome.files,
                outcome.ratchet.values().map(Vec::len).sum::<usize>()
            );
            if !outcome.deny.is_empty() {
                eprintln!(
                    "ascend-lint: note — {} deny-class violations remain (a baseline never \
                     covers those):",
                    outcome.deny.len()
                );
                for v in &outcome.deny {
                    eprintln!("  {}", v.render());
                }
                return 1;
            }
            0
        }
        _ => {
            let result = report::check(&outcome, &baseline);
            match format {
                "github" => {
                    print!("{}", report::render_github(&outcome, &baseline));
                    return i32::from(!result.ok());
                }
                "json" => {
                    print!("{}", report::render_json(&outcome, &baseline));
                    return i32::from(!result.ok());
                }
                _ => {}
            }
            for note in &result.notes {
                println!("ascend-lint: note — {note}");
            }
            if result.ok() {
                println!(
                    "ascend-lint: OK — {} files, {} active waivers, 0 deny violations, \
                     ratchet within baseline",
                    outcome.files, outcome.waivers
                );
                0
            } else {
                eprintln!("ascend-lint: FAIL — {} problem(s):", result.errors.len());
                for e in &result.errors {
                    eprintln!("  {e}");
                }
                eprintln!(
                    "fix the violations, or waive a line with \
                     `// ascend-lint: allow(<rule>) -- <reason>` (reason mandatory; \
                     see crates/lint/RULES.md)"
                );
                1
            }
        }
    }
}
