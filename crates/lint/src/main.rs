//! `ascend-lint` — CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p ascend-lint -- --check             # the CI gate
//! cargo run -p ascend-lint -- --report            # every violation, incl. baselined
//! cargo run -p ascend-lint -- --update-baseline   # rewrite crates/lint/baseline.tsv
//! ```
//!
//! Exit codes follow the `ascend-cli` convention: 0 clean, 1 violations,
//! 2 usage or I/O problems.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use ascend_lint::{report, workspace};

const USAGE: &str = "\
ascend-lint — static workspace invariant checker (see crates/lint/RULES.md)

USAGE:
    ascend-lint <--check|--report|--update-baseline> [--root PATH]

MODES:
    --check            Fail (exit 1) on any deny-class violation or any
                       ratchet count above the committed baseline
    --report           Print every violation, including baselined ones
    --update-baseline  Rewrite crates/lint/baseline.tsv from the current
                       tree (counts may only be committed if they shrank)

OPTIONS:
    --root PATH        Workspace root (default: found from the current dir)
";

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(args: &[String]) -> i32 {
    let mut mode: Option<&str> = None;
    let mut root_flag: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                return 0;
            }
            m @ ("--check" | "--report" | "--update-baseline") => {
                if let Some(prev) = mode {
                    eprintln!("ascend-lint: `{m}` conflicts with `{prev}`\n{USAGE}");
                    return 2;
                }
                mode = match m {
                    "--check" => Some("--check"),
                    "--report" => Some("--report"),
                    _ => Some("--update-baseline"),
                };
            }
            "--root" => match it.next() {
                Some(p) => root_flag = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ascend-lint: `--root` needs a path\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("ascend-lint: unknown argument `{other}`\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(mode) = mode else {
        eprint!("{USAGE}");
        return 2;
    };

    let root = match root_flag {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ascend-lint: cannot read the current directory: {e}");
                    return 2;
                }
            };
            match workspace::find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ascend-lint: {e}");
                    return 2;
                }
            }
        }
    };

    let outcome = match workspace::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ascend-lint: {e}");
            return 2;
        }
    };
    let baseline = match workspace::load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ascend-lint: {e}");
            return 2;
        }
    };

    match mode {
        "--report" => {
            print!("{}", report::full_report(&outcome, &baseline));
            0
        }
        "--update-baseline" => {
            if let Err(e) = workspace::write_baseline(&root, &outcome) {
                eprintln!("ascend-lint: {e}");
                return 2;
            }
            println!(
                "ascend-lint: baseline rewritten from {} files ({} ratcheted violations)",
                outcome.files,
                outcome.ratchet.values().map(Vec::len).sum::<usize>()
            );
            if !outcome.deny.is_empty() {
                eprintln!(
                    "ascend-lint: note — {} deny-class violations remain (a baseline never \
                     covers those):",
                    outcome.deny.len()
                );
                for v in &outcome.deny {
                    eprintln!("  {}", v.render());
                }
                return 1;
            }
            0
        }
        _ => {
            let result = report::check(&outcome, &baseline);
            for note in &result.notes {
                println!("ascend-lint: note — {note}");
            }
            if result.ok() {
                println!(
                    "ascend-lint: OK — {} files, {} active waivers, 0 deny violations, \
                     ratchet within baseline",
                    outcome.files, outcome.waivers
                );
                0
            } else {
                eprintln!("ascend-lint: FAIL — {} problem(s):", result.errors.len());
                for e in &result.errors {
                    eprintln!("  {e}");
                }
                eprintln!(
                    "fix the violations, or waive a line with \
                     `// ascend-lint: allow(<rule>) -- <reason>` (reason mandatory; \
                     see crates/lint/RULES.md)"
                );
                1
            }
        }
    }
}
