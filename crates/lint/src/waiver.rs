//! Waiver comments: the only way to silence a rule.
//!
//! A violation is waived by a comment of the exact shape
//!
//! ```text
//! // ascend-lint: allow(rule-id[, rule-id…]) -- reason the invariant holds
//! ```
//!
//! either trailing on the offending line or on the line(s) immediately
//! above it. The `-- reason` clause is **mandatory**: a waiver without a
//! justification is itself a violation ([`crate::rules::INVALID_WAIVER`]),
//! as is a waiver that no violation ever matched
//! ([`crate::rules::UNUSED_WAIVER`]) — stale waivers must not accumulate.

use crate::lexer::Tok;

/// One parsed (or rejected) waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ids the waiver names.
    pub rules: Vec<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// Line the waiver covers in addition to its own: the next line that
    /// holds code (for the comment-above style).
    pub covers: u32,
    /// `None` if well-formed; `Some(why)` if the comment looked like a
    /// waiver but is malformed (missing reason, bad syntax).
    pub malformed: Option<String>,
    /// Set by the engine when a violation consumed the waiver.
    pub used: bool,
}

/// The marker every waiver comment carries.
pub const MARKER: &str = "ascend-lint:";

/// Extracts waivers from a token stream.
///
/// Only plain comments (`//`, `/* */`) can carry waivers: doc comments
/// (`///`, `//!`, `/**`, `/*!`) are documentation — a rule example quoted
/// in docs must never act as (or be flagged as) a live waiver.
pub fn extract(toks: &[Tok]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        if tok.is_code() || !tok.text.contains(MARKER) || is_doc_comment(&tok.text) {
            continue;
        }
        let covers = toks[idx + 1..]
            .iter()
            .find(|t| t.is_code() && t.line > tok.line)
            .map(|t| t.line)
            .unwrap_or(tok.line);
        match parse(&tok.text) {
            Ok(rules) => waivers.push(Waiver {
                rules,
                line: tok.line,
                covers,
                malformed: None,
                used: false,
            }),
            Err(why) => waivers.push(Waiver {
                rules: Vec::new(),
                line: tok.line,
                covers,
                malformed: Some(why),
                used: false,
            }),
        }
    }
    waivers
}

/// Whether a comment is a doc comment (`///`, `//!`, `/**`, `/*!`).
/// `////…` banner lines and bare `/**/` are plain comments per Rust's
/// grammar, but treating them as docs is fine here — no one writes a
/// waiver in either form.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Parses the body of a waiver comment, returning the rule ids.
fn parse(comment: &str) -> Result<Vec<String>, String> {
    let Some(at) = comment.find(MARKER) else {
        return Err("missing `ascend-lint:` marker".to_string());
    };
    let body = comment[at + MARKER.len()..].trim();
    let Some(rest) = body.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(rule) -- reason` after `{MARKER}`, got `{body}`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".to_string());
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing mandatory `-- reason` clause".to_string());
    };
    if reason.trim().is_empty() {
        return Err("empty `-- reason` clause; justify the waiver".to_string());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_waiver_parses_rules_and_coverage() {
        let toks = lex(
            "// ascend-lint: allow(no-panic-in-hot-path) -- guarded by the loop above\n\
             let x = y.unwrap();",
        );
        let ws = extract(&toks);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].malformed.is_none());
        assert_eq!(ws[0].rules, ["no-panic-in-hot-path"]);
        assert_eq!(ws[0].line, 1);
        assert_eq!(ws[0].covers, 2);
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let toks = lex(
            "let x = y.unwrap(); // ascend-lint: allow(no-panic-in-hot-path) -- total by clamp",
        );
        let ws = extract(&toks);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].line, 1);
    }

    #[test]
    fn multiple_rules_split_on_commas() {
        let ws = extract(&lex(
            "// ascend-lint: allow(no-wallclock-in-forward, no-panic-in-hot-path) -- report timing\nf();",
        ));
        assert_eq!(
            ws[0].rules,
            ["no-wallclock-in-forward", "no-panic-in-hot-path"]
        );
    }

    #[test]
    fn missing_reason_is_malformed() {
        for bad in [
            "// ascend-lint: allow(no-panic-in-hot-path)",
            "// ascend-lint: allow(no-panic-in-hot-path) --",
            "// ascend-lint: allow(no-panic-in-hot-path) --   ",
        ] {
            let ws = extract(&lex(bad));
            assert_eq!(ws.len(), 1, "{bad}");
            assert!(ws[0].malformed.is_some(), "{bad}");
        }
    }

    #[test]
    fn bad_syntax_is_malformed_not_ignored() {
        for bad in [
            "// ascend-lint: deny(x) -- nope",
            "// ascend-lint: allow() -- empty",
            "// ascend-lint: allow(unclosed -- reason",
            "// ascend-lint: something else",
        ] {
            let ws = extract(&lex(bad));
            assert_eq!(ws.len(), 1, "{bad}");
            assert!(ws[0].malformed.is_some(), "{bad}");
        }
    }

    #[test]
    fn marker_inside_a_string_is_not_a_waiver() {
        let ws = extract(&lex(r#"let s = "ascend-lint: allow(x) -- fake";"#));
        assert!(ws.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        for doc in [
            "/// ascend-lint: allow(no-panic-in-hot-path) -- doc example\nf();",
            "//! ascend-lint: allow(no-panic-in-hot-path) -- module docs\nf();",
            "/** ascend-lint: allow(no-panic-in-hot-path) -- block docs */\nf();",
        ] {
            assert!(extract(&lex(doc)).is_empty(), "{doc}");
        }
    }

    #[test]
    fn unrelated_comments_are_not_waivers() {
        let ws = extract(&lex("// plain comment about linting in general\nf();"));
        assert!(ws.is_empty());
    }
}
