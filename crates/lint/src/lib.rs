//! `ascend-lint` — the workspace invariant checker.
//!
//! The runtime suite proves ASCEND's core guarantees dynamically: parallel
//! `ServePool` output is bit-identical to serial, artifacts fail closed on
//! corruption, serving errors are typed `ScError`s. Nothing *static*
//! stopped a future change from sneaking a panicking `unwrap()`, a
//! wall-clock read, or a `HashMap` iteration into a forward path the tests
//! happen not to cover. This crate is that static gate: a hand-rolled,
//! std-only token-level analysis over the workspace's own sources,
//! enforcing the invariants on every push.
//!
//! * [`lexer`] — a real Rust surface lexer (comments, strings, raw
//!   strings, char literals, `#[cfg(test)]` regions), so rules never fire
//!   on commented-out or test code.
//! * [`scope`] — brace/scope structure over the token stream: function
//!   boundaries, lock-guard binding lifetimes, blocking/wait/call events
//!   — the substrate for the concurrency-discipline rules.
//! * [`rules`] — the invariant catalog (see `RULES.md`).
//! * [`waiver`] — `// ascend-lint: allow(rule) -- reason` escape hatch
//!   with a mandatory justification; unused and malformed waivers are
//!   themselves violations.
//! * [`baseline`] — the per-rule/per-crate ratchet (counts may only go
//!   down), mirroring the CI test-count floor.
//! * [`workspace`] — file discovery and the whole-tree run.
//! * [`report`] — the `--check` / `--report` renderings.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod waiver;
pub mod workspace;
