//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is an append-only arena of nodes; construction order is a
//! topological order, so backpropagation is a single reverse sweep. Each
//! operator pushes a node whose backward closure captures (clones of) the
//! values it needs — no lifetimes or borrows escape into user code, and a
//! [`Var`] is just `(graph, index)`.

use std::cell::RefCell;

use crate::tensor::Tensor;

type BackFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackFn>,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a leaf (parameter or input) and returns its handle.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None)
    }

    /// Alias of [`Graph::leaf`] for values that only need forward flow;
    /// gradients still accumulate but are typically not queried.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.leaf(value)
    }

    fn push(&self, value: Tensor, parents: Vec<usize>, backward: Option<BackFn>) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, parents, backward });
        Var { g: self, id: nodes.len() - 1 }
    }

    /// The forward value of a node (cloned).
    pub fn value(&self, v: Var<'_>) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Runs backpropagation from `root` (which must be a scalar).
    ///
    /// # Panics
    ///
    /// Panics if `root` has more than one element.
    pub fn backward(&self, root: Var<'_>) {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[root.id].value.numel(),
            1,
            "backward root must be scalar, got shape {:?}",
            nodes[root.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[root.id] = Some(Tensor::ones(nodes[root.id].value.shape()));
        for id in (0..=root.id).rev() {
            let Some(gout) = grads[id].clone() else { continue };
            let node = &nodes[id];
            if let Some(back) = &node.backward {
                let pgrads = back(&gout);
                assert_eq!(pgrads.len(), node.parents.len(), "backward arity mismatch");
                for (pid, pg) in node.parents.iter().zip(pgrads) {
                    match &mut grads[*pid] {
                        Some(acc) => *acc = acc.add(&pg),
                        slot => *slot = Some(pg),
                    }
                }
            }
        }
        *self.grads.borrow_mut() = grads;
    }

    /// The gradient of the last [`Graph::backward`] call w.r.t. `v`, if it
    /// received any.
    pub fn grad(&self, v: Var<'_>) -> Option<Tensor> {
        self.grads.borrow().get(v.id).and_then(|g| g.clone())
    }
}

/// A handle to a node in a [`Graph`]. Cheap to copy.
#[derive(Clone, Copy)]
pub struct Var<'g> {
    g: &'g Graph,
    id: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(#{}, shape={:?})", self.id, self.value().shape())
    }
}

impl<'g> Var<'g> {
    /// The forward value (cloned).
    pub fn value(&self) -> Tensor {
        self.g.value(*self)
    }

    /// The graph this variable belongs to.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// 2-D matrix product with a constant right-hand side (no gradient flows
    /// into the constant).
    pub fn matmul_const(self, rhs: &Tensor) -> Var<'g> {
        let b = rhs.clone();
        let out = self.value().matmul(&b);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| vec![go.matmul(&b.transpose2())])),
        )
    }

    /// Batched 3-D matrix product with a constant right-hand side.
    pub fn batched_matmul_const(self, rhs: &Tensor) -> Var<'g> {
        let b = rhs.clone();
        let out = self.value().batched_matmul(&b);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.batched_matmul(&b.batched_transpose())]
            })),
        )
    }

    /// Shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Elementwise addition (same shape).
    // Method-call style is this API's idiom; `Var` handles are consumed by
    // value, which std operator traits on references would obscure.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Var<'g>) -> Var<'g> {
        let out = self.value().add(&o.value());
        self.g.push(
            out,
            vec![self.id, o.id],
            Some(Box::new(|go: &Tensor| vec![go.clone(), go.clone()])),
        )
    }

    /// Elementwise subtraction (same shape).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Var<'g>) -> Var<'g> {
        let out = self.value().sub(&o.value());
        self.g.push(
            out,
            vec![self.id, o.id],
            Some(Box::new(|go: &Tensor| vec![go.clone(), go.scale(-1.0)])),
        )
    }

    /// Elementwise multiplication (same shape).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Var<'g>) -> Var<'g> {
        let a = self.value();
        let b = o.value();
        let out = a.mul(&b);
        self.g.push(
            out,
            vec![self.id, o.id],
            Some(Box::new(move |go: &Tensor| vec![go.mul(&b), go.mul(&a)])),
        )
    }

    /// Scalar multiply.
    pub fn scale(self, s: f32) -> Var<'g> {
        let out = self.value().scale(s);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| vec![go.scale(s)])),
        )
    }

    /// Adds a scalar constant.
    pub fn add_scalar(self, s: f32) -> Var<'g> {
        let out = self.value().map(|v| v + s);
        self.g
            .push(out, vec![self.id], Some(Box::new(|go: &Tensor| vec![go.clone()])))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Var<'g> {
        self.scale(-1.0)
    }

    /// 2-D matrix product.
    pub fn matmul(self, o: Var<'g>) -> Var<'g> {
        let a = self.value();
        let b = o.value();
        let out = a.matmul(&b);
        self.g.push(
            out,
            vec![self.id, o.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.matmul(&b.transpose2()), a.transpose2().matmul(go)]
            })),
        )
    }

    /// Batched 3-D matrix product.
    pub fn batched_matmul(self, o: Var<'g>) -> Var<'g> {
        let a = self.value();
        let b = o.value();
        let out = a.batched_matmul(&b);
        self.g.push(
            out,
            vec![self.id, o.id],
            Some(Box::new(move |go: &Tensor| {
                vec![
                    go.batched_matmul(&b.batched_transpose()),
                    a.batched_transpose().batched_matmul(go),
                ]
            })),
        )
    }

    /// Axis permutation; gradient applies the inverse permutation.
    pub fn permute(self, perm: &[usize]) -> Var<'g> {
        let out = self.value().permute(perm);
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| vec![go.permute(&inverse)])),
        )
    }

    /// Reshape; gradient reshapes back.
    pub fn reshape(self, shape: &[usize]) -> Var<'g> {
        let old = self.shape();
        let out = self.value().reshape(shape);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| vec![go.reshape(&old)])),
        )
    }

    /// GELU (tanh approximation — the form quantized ViTs train against).
    pub fn gelu(self) -> Var<'g> {
        let x = self.value();
        let out = x.map(gelu_f);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.zip_map(&x, |g, v| g * gelu_grad_f(v))]
            })),
        )
    }

    /// ReLU.
    pub fn relu(self) -> Var<'g> {
        let x = self.value();
        let out = x.map(|v| v.max(0.0));
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.zip_map(&x, |g, v| if v > 0.0 { g } else { 0.0 })]
            })),
        )
    }

    /// Elementwise square.
    pub fn square(self) -> Var<'g> {
        let x = self.value();
        let out = x.map(|v| v * v);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.zip_map(&x, |g, v| 2.0 * g * v)]
            })),
        )
    }

    /// `1/√(x + eps)` — the normalization kernel.
    pub fn rsqrt_eps(self, eps: f32) -> Var<'g> {
        let x = self.value();
        let out = x.map(|v| 1.0 / (v + eps).sqrt());
        let saved = out.clone();
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![go.zip_map(&saved, |g, y| -0.5 * g * y * y * y)]
            })),
        )
    }

    /// Row-wise softmax over the last axis.
    pub fn softmax_last(self) -> Var<'g> {
        let out = self.value().softmax_last();
        let s = out.clone();
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                // gx = s ∘ (go − rowsum(go ∘ s))
                let m = *s.shape().last().expect("rank ≥ 1");
                let rows = s.numel() / m;
                let mut gx = vec![0.0f32; s.numel()];
                for i in 0..rows {
                    let srow = &s.data()[i * m..(i + 1) * m];
                    let grow = &go.data()[i * m..(i + 1) * m];
                    let dot: f32 = srow.iter().zip(grow.iter()).map(|(a, b)| a * b).sum();
                    for j in 0..m {
                        gx[i * m + j] = srow[j] * (grow[j] - dot);
                    }
                }
                vec![Tensor::from_vec(gx, s.shape())]
            })),
        )
    }

    /// Column means `[n,m] → [m]`.
    pub fn mean_axis0(self) -> Var<'g> {
        let x = self.value();
        let n = x.shape()[0];
        let out = x.mean_axis0();
        let shape = x.shape().to_vec();
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let (rows, cols) = (shape[0], shape[1]);
                let mut gx = vec![0.0f32; rows * cols];
                for i in 0..rows {
                    for j in 0..cols {
                        gx[i * cols + j] = go.data()[j] / n as f32;
                    }
                }
                vec![Tensor::from_vec(gx, &shape)]
            })),
        )
    }

    /// Row means `[n,m] → [n]`.
    pub fn mean_axis1(self) -> Var<'g> {
        let x = self.value();
        let m = x.shape()[1];
        let out = x.mean_axis1();
        let shape = x.shape().to_vec();
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let (rows, cols) = (shape[0], shape[1]);
                let mut gx = vec![0.0f32; rows * cols];
                for i in 0..rows {
                    for j in 0..cols {
                        gx[i * cols + j] = go.data()[i] / m as f32;
                    }
                }
                vec![Tensor::from_vec(gx, &shape)]
            })),
        )
    }

    /// Adds a `[m]` vector to every row of a `[n,m]` matrix.
    pub fn broadcast_row_add(self, bias: Var<'g>) -> Var<'g> {
        let x = self.value();
        let b = bias.value();
        let (n, m) = (x.shape()[0], x.shape()[1]);
        assert_eq!(b.numel(), m, "bias length mismatch");
        let mut out = x.clone();
        for i in 0..n {
            for j in 0..m {
                out.data_mut()[i * m + j] += b.data()[j];
            }
        }
        self.g.push(
            out,
            vec![self.id, bias.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gb = vec![0.0f32; m];
                for i in 0..n {
                    for j in 0..m {
                        gb[j] += go.data()[i * m + j];
                    }
                }
                vec![go.clone(), Tensor::from_vec(gb, &[m])]
            })),
        )
    }

    /// Multiplies every row of a `[n,m]` matrix by a `[m]` vector.
    pub fn broadcast_row_mul(self, gamma: Var<'g>) -> Var<'g> {
        let x = self.value();
        let gm = gamma.value();
        let (n, m) = (x.shape()[0], x.shape()[1]);
        assert_eq!(gm.numel(), m, "gamma length mismatch");
        let mut out = x.clone();
        for i in 0..n {
            for j in 0..m {
                out.data_mut()[i * m + j] *= gm.data()[j];
            }
        }
        self.g.push(
            out,
            vec![self.id, gamma.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gx = vec![0.0f32; n * m];
                let mut gg = vec![0.0f32; m];
                for i in 0..n {
                    for j in 0..m {
                        gx[i * m + j] = go.data()[i * m + j] * gm.data()[j];
                        gg[j] += go.data()[i * m + j] * x.data()[i * m + j];
                    }
                }
                vec![Tensor::from_vec(gx, x.shape()), Tensor::from_vec(gg, &[m])]
            })),
        )
    }

    /// Adds a `[n]` vector to every column of a `[n,m]` matrix.
    pub fn broadcast_col_add(self, col: Var<'g>) -> Var<'g> {
        let x = self.value();
        let c = col.value();
        let (n, m) = (x.shape()[0], x.shape()[1]);
        assert_eq!(c.numel(), n, "column vector length mismatch");
        let mut out = x.clone();
        for i in 0..n {
            for j in 0..m {
                out.data_mut()[i * m + j] += c.data()[i];
            }
        }
        self.g.push(
            out,
            vec![self.id, col.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gc = vec![0.0f32; n];
                for i in 0..n {
                    for j in 0..m {
                        gc[i] += go.data()[i * m + j];
                    }
                }
                vec![go.clone(), Tensor::from_vec(gc, &[n])]
            })),
        )
    }

    /// Multiplies every column of a `[n,m]` matrix by a `[n]` vector.
    pub fn broadcast_col_mul(self, col: Var<'g>) -> Var<'g> {
        let x = self.value();
        let c = col.value();
        let (n, m) = (x.shape()[0], x.shape()[1]);
        assert_eq!(c.numel(), n, "column vector length mismatch");
        let mut out = x.clone();
        for i in 0..n {
            for j in 0..m {
                out.data_mut()[i * m + j] *= c.data()[i];
            }
        }
        self.g.push(
            out,
            vec![self.id, col.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gx = vec![0.0f32; n * m];
                let mut gc = vec![0.0f32; n];
                for i in 0..n {
                    for j in 0..m {
                        gx[i * m + j] = go.data()[i * m + j] * c.data()[i];
                        gc[i] += go.data()[i * m + j] * x.data()[i * m + j];
                    }
                }
                vec![Tensor::from_vec(gx, x.shape()), Tensor::from_vec(gc, &[n])]
            })),
        )
    }

    /// Extracts `x[:, index, :]` from a 3-D tensor; gradient scatters back.
    pub fn select_axis1(self, index: usize) -> Var<'g> {
        let x = self.value();
        let shape = x.shape().to_vec();
        let out = x.select_axis1(index);
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let (b, s, d) = (shape[0], shape[1], shape[2]);
                let mut gx = vec![0.0f32; b * s * d];
                for bi in 0..b {
                    let dst = bi * s * d + index * d;
                    gx[dst..dst + d].copy_from_slice(&go.data()[bi * d..(bi + 1) * d]);
                }
                vec![Tensor::from_vec(gx, &shape)]
            })),
        )
    }

    /// Repeats a `[d]` vector into `[n, d]` rows; the gradient sums over
    /// rows. Used to broadcast the class token across a batch.
    pub fn repeat_as_rows(self, n: usize) -> Var<'g> {
        let x = self.value();
        let d = x.numel();
        let mut out = vec![0.0f32; n * d];
        for i in 0..n {
            out[i * d..(i + 1) * d].copy_from_slice(x.data());
        }
        self.g.push(
            Tensor::from_vec(out, &[n, d]),
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gx = vec![0.0f32; d];
                for i in 0..n {
                    for j in 0..d {
                        gx[j] += go.data()[i * d + j];
                    }
                }
                vec![Tensor::from_vec(gx, &[d])]
            })),
        )
    }

    /// Concatenates two 3-D tensors along axis 1 (`[b,s1,d] ⧺ [b,s2,d]`).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are 3-D with matching batch and feature
    /// dimensions.
    pub fn concat_axis1(self, other: Var<'g>) -> Var<'g> {
        let a = self.value();
        let b = other.value();
        assert_eq!(a.shape().len(), 3, "concat_axis1 needs 3-D lhs");
        assert_eq!(b.shape().len(), 3, "concat_axis1 needs 3-D rhs");
        let (ba, s1, d) = (a.shape()[0], a.shape()[1], a.shape()[2]);
        let (bb, s2, d2) = (b.shape()[0], b.shape()[1], b.shape()[2]);
        assert_eq!(ba, bb, "batch mismatch");
        assert_eq!(d, d2, "feature mismatch");
        let s = s1 + s2;
        let mut out = vec![0.0f32; ba * s * d];
        for bi in 0..ba {
            out[bi * s * d..bi * s * d + s1 * d]
                .copy_from_slice(&a.data()[bi * s1 * d..(bi + 1) * s1 * d]);
            out[bi * s * d + s1 * d..(bi + 1) * s * d]
                .copy_from_slice(&b.data()[bi * s2 * d..(bi + 1) * s2 * d]);
        }
        self.g.push(
            Tensor::from_vec(out, &[ba, s, d]),
            vec![self.id, other.id],
            Some(Box::new(move |go: &Tensor| {
                let mut ga = vec![0.0f32; ba * s1 * d];
                let mut gb = vec![0.0f32; ba * s2 * d];
                for bi in 0..ba {
                    ga[bi * s1 * d..(bi + 1) * s1 * d]
                        .copy_from_slice(&go.data()[bi * s * d..bi * s * d + s1 * d]);
                    gb[bi * s2 * d..(bi + 1) * s2 * d]
                        .copy_from_slice(&go.data()[bi * s * d + s1 * d..(bi + 1) * s * d]);
                }
                vec![
                    Tensor::from_vec(ga, &[ba, s1, d]),
                    Tensor::from_vec(gb, &[ba, s2, d]),
                ]
            })),
        )
    }

    /// Sums over the last axis and broadcasts back to the input shape
    /// (`out[.., j] = Σ_j x[.., j]`). Self-adjoint: the gradient applies the
    /// same reduction to the upstream gradient. This is the building block
    /// of the in-graph iterative approximate softmax.
    pub fn row_sum_bcast(self) -> Var<'g> {
        let x = self.value();
        let m = *x.shape().last().expect("rank ≥ 1");
        let rows = x.numel() / m;
        let mut out = vec![0.0f32; x.numel()];
        for i in 0..rows {
            let s: f32 = x.data()[i * m..(i + 1) * m].iter().sum();
            for o in out[i * m..(i + 1) * m].iter_mut() {
                *o = s;
            }
        }
        let shape = x.shape().to_vec();
        self.g.push(
            Tensor::from_vec(out, &shape),
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gx = vec![0.0f32; go.numel()];
                for i in 0..rows {
                    let s: f32 = go.data()[i * m..(i + 1) * m].iter().sum();
                    for o in gx[i * m..(i + 1) * m].iter_mut() {
                        *o = s;
                    }
                }
                vec![Tensor::from_vec(gx, &shape)]
            })),
        )
    }

    /// Sum of all elements → scalar.
    pub fn sum_all(self) -> Var<'g> {
        let x = self.value();
        let shape = x.shape().to_vec();
        let out = Tensor::scalar(x.sum_all());
        self.g.push(
            out,
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                vec![Tensor::full(&shape, go.item())]
            })),
        )
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(self) -> Var<'g> {
        let n = self.value().numel() as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// LSQ fake quantization (\[25\]): `y = round(clamp(x/s, qn, qp))·s` with
    /// the straight-through estimator for `x` and the LSQ gradient for the
    /// learned step `s` (a scalar leaf), scaled by `grad_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not scalar-shaped.
    pub fn lsq_quantize(self, step: Var<'g>, qn: f32, qp: f32, grad_scale: f32) -> Var<'g> {
        let x = self.value();
        let s_t = step.value();
        assert_eq!(s_t.numel(), 1, "LSQ step must be a scalar");
        let s = s_t.item().abs().max(1e-8);
        let out = x.map(|v| (v / s).clamp(qn, qp).round() * s);
        self.g.push(
            out,
            vec![self.id, step.id],
            Some(Box::new(move |go: &Tensor| {
                let mut gs = 0.0f32;
                let mut gx = vec![0.0f32; x.numel()];
                for ((gxi, &g), &v) in gx.iter_mut().zip(go.data().iter()).zip(x.data().iter()) {
                    let r = v / s;
                    if r <= qn {
                        gs += g * qn;
                    } else if r >= qp {
                        gs += g * qp;
                    } else {
                        gs += g * (r.round() - r);
                        *gxi = g;
                    }
                }
                vec![Tensor::from_vec(gx, x.shape()), Tensor::scalar(gs * grad_scale)]
            })),
        )
    }

    /// Mean cross-entropy of logits `[n,c]` against integer labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the row count or any label is
    /// out of range.
    pub fn cross_entropy(self, labels: &[usize]) -> Var<'g> {
        let logits = self.value();
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(labels.len(), n, "label count mismatch");
        assert!(labels.iter().all(|&l| l < c), "label out of range");
        let probs = logits.softmax_last();
        let mut loss = 0.0f32;
        for (i, &l) in labels.iter().enumerate() {
            loss -= probs.data()[i * c + l].max(1e-12).ln();
        }
        loss /= n as f32;
        let labels = labels.to_vec();
        self.g.push(
            Tensor::scalar(loss),
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let g = go.item() / n as f32;
                let mut gx = probs.clone();
                for (i, &l) in labels.iter().enumerate() {
                    gx.data_mut()[i * c + l] -= 1.0;
                }
                vec![gx.scale(g)]
            })),
        )
    }

    /// Mean KL divergence `KL(teacher ‖ student)` where `self` is the
    /// student's logits and `teacher_logits` a constant — the distillation
    /// objective `ℓ_KL(Z_s, Z_t)` of paper §V.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn kl_from_teacher(self, teacher_logits: &Tensor) -> Var<'g> {
        let logits = self.value();
        assert_eq!(logits.shape(), teacher_logits.shape(), "teacher/student shape mismatch");
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        let ps = logits.softmax_last();
        let pt = teacher_logits.softmax_last();
        let mut loss = 0.0f32;
        for i in 0..n * c {
            let t = pt.data()[i];
            if t > 0.0 {
                loss += t * (t.max(1e-12).ln() - ps.data()[i].max(1e-12).ln());
            }
        }
        loss /= n as f32;
        self.g.push(
            Tensor::scalar(loss),
            vec![self.id],
            Some(Box::new(move |go: &Tensor| {
                let g = go.item() / n as f32;
                vec![ps.sub(&pt).scale(g)]
            })),
        )
    }

    /// Mean squared error against another variable (both receive grads) —
    /// the per-layer distillation term `ℓ_MSE(S_i, T_i)`.
    pub fn mse(self, other: Var<'g>) -> Var<'g> {
        let a = self.value();
        let b = other.value();
        assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
        let n = a.numel() as f32;
        let diff = a.sub(&b);
        let loss = diff.data().iter().map(|v| v * v).sum::<f32>() / n;
        self.g.push(
            Tensor::scalar(loss),
            vec![self.id, other.id],
            Some(Box::new(move |go: &Tensor| {
                let g = 2.0 * go.item() / n;
                vec![diff.scale(g), diff.scale(-g)]
            })),
        )
    }
}

/// GELU, tanh approximation (f32).
pub fn gelu_f(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_f`].
pub fn gelu_grad_f(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let y = a.mul(b).sum_all();
        g.backward(y);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_backward_shapes() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[3, 4]));
        let b = g.leaf(Tensor::ones(&[4, 5]));
        let y = a.matmul(b).sum_all();
        g.backward(y);
        assert_eq!(g.grad(a).unwrap().shape(), &[3, 4]);
        assert_eq!(g.grad(b).unwrap().shape(), &[4, 5]);
        // d/dA sum(AB) = B·1ᵀ summed: every entry = 5 (cols of B).
        assert!(g.grad(a).unwrap().data().iter().all(|&v| (v - 5.0).abs() < 1e-6));
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let y = a.add(a).sum_all(); // y = 2a
        g.backward(y);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0]);
    }

    #[test]
    fn softmax_backward_zero_for_uniform_upstream() {
        // Softmax is shift-invariant: with uniform upstream grad the input
        // gradient must vanish.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.3, -0.7, 1.1], &[1, 3]));
        let y = x.softmax_last().sum_all();
        g.backward(y);
        for v in g.grad(x).unwrap().data() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 0.5, 0.1, 0.1, 3.0], &[2, 3]));
        let loss = x.cross_entropy(&[1, 2]);
        g.backward(loss);
        let probs = x.value().softmax_last();
        let gx = g.grad(x).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                let onehot = if (i == 0 && j == 1) || (i == 1 && j == 2) { 1.0 } else { 0.0 };
                let want = (probs.data()[i * 3 + j] - onehot) / 2.0;
                assert!((gx.data()[i * 3 + j] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn kl_is_zero_when_student_equals_teacher() {
        let g = Graph::new();
        let t = Tensor::from_vec(vec![0.5, 1.5, -0.3, 0.2, 0.2, 0.2], &[2, 3]);
        let s = g.leaf(t.clone());
        let loss = s.kl_from_teacher(&t);
        assert!(loss.value().item().abs() < 1e-6);
        g.backward(loss);
        for v in g.grad(s).unwrap().data() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn mse_backward_symmetric() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = g.leaf(Tensor::from_vec(vec![0.0, 0.0], &[2]));
        let loss = a.mse(b);
        assert!((loss.value().item() - 2.5).abs() < 1e-6);
        g.backward(loss);
        let ga = g.grad(a).unwrap();
        let gb = g.grad(b).unwrap();
        for (x, y) in ga.data().iter().zip(gb.data().iter()) {
            assert!((x + y).abs() < 1e-6, "grads must be opposite");
        }
    }

    #[test]
    fn lsq_straight_through_and_step_grad() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.3, 5.0, -5.0], &[3]));
        let s = g.leaf(Tensor::scalar(1.0));
        let q = x.lsq_quantize(s, -1.0, 1.0, 1.0);
        // Forward: round(clamp(x)) = [0, 1, −1].
        assert_eq!(q.value().data(), &[0.0, 1.0, -1.0]);
        let y = q.sum_all();
        g.backward(y);
        // STE: in-range element passes grad, clipped ones don't.
        assert_eq!(g.grad(x).unwrap().data(), &[1.0, 0.0, 0.0]);
        // Step grad: (round(r)−r) for in-range + qp + qn = (0−0.3) + 1 − 1.
        assert!((g.grad(s).unwrap().item() - (-0.3)).abs() < 1e-6);
    }

    #[test]
    fn permute_and_reshape_roundtrip_grads() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]));
        let y = x.permute(&[1, 0]).reshape(&[6]).sum_all();
        g.backward(y);
        assert!(g.grad(x).unwrap().data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_requires_scalar_root() {
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2]));
        g.backward(x);
    }

    #[test]
    fn select_axis1_scatters_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]));
        let y = x.select_axis1(1).sum_all();
        g.backward(y);
        let gx = g.grad(x).unwrap();
        // Only token 1 positions receive gradient 1.
        let want = [0., 0., 1., 1., 0., 0., 0., 0., 1., 1., 0., 0.];
        for (got, want) in gx.data().iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-6);
        }
    }
}
