//! The raw tensor type: row-major f32 storage with shape metadata.

use std::fmt;

/// A dense row-major f32 tensor.
///
/// ```
/// use ascend_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.transpose2();
/// assert_eq!(b.data(), &[1.0, 3.0, 2.0, 4.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), &[2, 2]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { data: vec![0.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// All-one tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { data: vec![value; shape.iter().product()], shape: shape.to_vec() }
    }

    /// A 0-dimensional-like scalar, stored as shape `\[1\]`.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: vec![1] }
    }

    /// Builds from data and shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape: shape.to_vec() }
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrows the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes into the flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Consumes into `(data, shape)` — the serialization-friendly raw parts.
    pub fn into_parts(self) -> (Vec<f32>, Vec<usize>) {
        (self.data, self.shape)
    }

    /// Rebuilds a tensor from raw parts without panicking, for
    /// deserializers that must surface malformed inputs as errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `data.len()` is not the
    /// shape product (computed with overflow checks).
    pub fn try_from_parts(data: Vec<f32>, shape: Vec<usize>) -> Result<Self, String> {
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| format!("shape {shape:?} overflows the element count"))?;
        if data.len() != numel {
            return Err(format!(
                "data length {} does not match shape {:?} ({} elements)",
                data.len(),
                shape,
                numel
            ));
        }
        Ok(Tensor { data, shape })
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Reshapes (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} into {:?}",
            self.shape,
            shape
        );
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// 2-D matrix product `[n,k]·[k,m] → [n,m]` (ikj loop order).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are 2-D with matching inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * m..(i + 1) * m];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * m..(p + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    /// Batched matrix product `[b,n,k]·[b,k,m] → [b,n,m]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are 3-D with matching batch and inner
    /// dimensions.
    pub fn batched_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 3, "batched matmul lhs must be 3-D");
        assert_eq!(other.shape.len(), 3, "batched matmul rhs must be 3-D");
        assert_eq!(self.shape[0], other.shape[0], "batch dims differ");
        let (b, n, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let m = other.shape[2];
        assert_eq!(k, other.shape[1], "inner dimensions differ");
        let mut out = vec![0.0f32; b * n * m];
        for bi in 0..b {
            for i in 0..n {
                let arow = &self.data[bi * n * k + i * k..bi * n * k + (i + 1) * k];
                let orow = &mut out[bi * n * m + i * m..bi * n * m + (i + 1) * m];
                for (p, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &other.data[bi * k * m + p * m..bi * k * m + (p + 1) * m];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * bv;
                    }
                }
            }
        }
        Tensor { data: out, shape: vec![b, n, m] }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 needs a 2-D tensor");
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                out[j * n + i] = self.data[i * m + j];
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Swaps the last two axes of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 3-D.
    pub fn batched_transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 3, "batched_transpose needs a 3-D tensor");
        let (b, n, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * n * m];
        for bi in 0..b {
            for i in 0..n {
                for j in 0..m {
                    out[bi * n * m + j * n + i] = self.data[bi * n * m + i * m + j];
                }
            }
        }
        Tensor { data: out, shape: vec![b, m, n] }
    }

    /// General axis permutation.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.shape.len();
        assert_eq!(perm.len(), rank, "permutation length mismatch");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let old_strides = strides(&self.shape);
        let new_strides_in_old: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let mut out = vec![0.0f32; self.numel()];
        let mut idx = vec![0usize; rank];
        for o in out.iter_mut() {
            let mut src = 0;
            for (d, &i) in idx.iter().enumerate() {
                src += i * new_strides_in_old[d];
            }
            *o = self.data[src];
            // Increment the multi-index in new-shape order.
            for d in (0..rank).rev() {
                idx[d] += 1;
                if idx[d] < new_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor { data: out, shape: new_shape }
    }

    /// Elementwise combine with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_map");
        Tensor {
            data: self.data.iter().zip(other.data.iter()).map(|(a, b)| f(*a, *b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise map.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { data: self.data.iter().map(|v| f(*v)).collect(), shape: self.shape.clone() }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scalar multiply.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.numel() as f32
        }
    }

    /// Column means of a 2-D tensor: `[n,m] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics unless 2-D with at least one row.
    pub fn mean_axis0(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "mean_axis0 needs 2-D");
        let (n, m) = (self.shape[0], self.shape[1]);
        assert!(n > 0, "mean over zero rows");
        let mut out = vec![0.0f32; m];
        for i in 0..n {
            for j in 0..m {
                out[j] += self.data[i * m + j];
            }
        }
        for o in out.iter_mut() {
            *o /= n as f32;
        }
        Tensor { data: out, shape: vec![m] }
    }

    /// Row means of a 2-D tensor: `[n,m] → [n]`.
    ///
    /// # Panics
    ///
    /// Panics unless 2-D with at least one column.
    pub fn mean_axis1(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "mean_axis1 needs 2-D");
        let (n, m) = (self.shape[0], self.shape[1]);
        assert!(m > 0, "mean over zero columns");
        let out: Vec<f32> = (0..n)
            .map(|i| self.data[i * m..(i + 1) * m].iter().sum::<f32>() / m as f32)
            .collect();
        Tensor { data: out, shape: vec![n] }
    }

    /// Per-row argmax of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless 2-D with at least one column.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows needs 2-D");
        let (n, m) = (self.shape[0], self.shape[1]);
        assert!(m > 0, "argmax over zero columns");
        (0..n)
            .map(|i| {
                let row = &self.data[i * m..(i + 1) * m];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .expect("non-empty row")
                    .0
            })
            .collect()
    }

    /// Extracts `x[:, index, :]` from a 3-D tensor → `[b, d]`.
    ///
    /// # Panics
    ///
    /// Panics unless 3-D and `index` in range.
    pub fn select_axis1(&self, index: usize) -> Tensor {
        assert_eq!(self.shape.len(), 3, "select_axis1 needs 3-D");
        let (b, s, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(index < s, "index {index} out of range for axis of {s}");
        let mut out = vec![0.0f32; b * d];
        for bi in 0..b {
            let src = bi * s * d + index * d;
            out[bi * d..(bi + 1) * d].copy_from_slice(&self.data[src..src + d]);
        }
        Tensor { data: out, shape: vec![b, d] }
    }

    /// Row-wise softmax over the last axis (any rank ≥ 1), numerically
    /// stable.
    pub fn softmax_last(&self) -> Tensor {
        let m = *self.shape.last().expect("rank ≥ 1");
        let rows = self.numel() / m;
        let mut out = vec![0.0f32; self.numel()];
        for i in 0..rows {
            let row = &self.data[i * m..(i + 1) * m];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &v) in out[i * m..(i + 1) * m].iter_mut().zip(row.iter()) {
                *o = (v - max).exp();
                sum += *o;
            }
            for o in out[i * m..(i + 1) * m].iter_mut() {
                *o /= sum;
            }
        }
        Tensor { data: out, shape: self.shape.clone() }
    }
}

/// Row-major strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(f, ", data=[{} elements]", self.numel())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(Tensor::ones(&[3]).sum_all(), 3.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn batched_matmul_matches_loop_of_matmuls() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.5).collect(), &[2, 3, 2]);
        let c = a.batched_matmul(&b);
        for bi in 0..2 {
            let a2 = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]);
            let b2 = Tensor::from_vec(b.data()[bi * 6..(bi + 1) * 6].to_vec(), &[3, 2]);
            let want = a2.matmul(&b2);
            assert_eq!(&c.data()[bi * 4..(bi + 1) * 4], want.data());
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(a.transpose2().transpose2(), a);
        let b = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        assert_eq!(b.batched_transpose().batched_transpose(), b);
    }

    #[test]
    fn permute_matches_specialized_transposes() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(a.permute(&[1, 0]), a.transpose2());
        let b = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        assert_eq!(b.permute(&[0, 2, 1]), b.batched_transpose());
        // Identity permutation.
        assert_eq!(b.permute(&[0, 1, 2]), b);
    }

    #[test]
    fn permute_4d_head_split() {
        // [B,S,H,D] → [B,H,S,D], the attention reshape.
        let t = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[2, 2, 2, 2]);
        let p = t.permute(&[0, 2, 1, 3]);
        assert_eq!(p.shape(), &[2, 2, 2, 2]);
        // Element [b=0,s=1,h=0,d=1] (= index 0*8+1*4+0*2+1 = 5) must appear
        // at [b=0,h=0,s=1,d=1] (= index 0*8+0*4+1*2+1 = 3).
        assert_eq!(p.data()[3], t.data()[5]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_all(), 10.0);
        assert_eq!(a.mean_all(), 2.5);
        assert_eq!(a.mean_axis0().data(), &[2.0, 3.0]);
        assert_eq!(a.mean_axis1().data(), &[1.5, 3.5]);
    }

    #[test]
    fn argmax_and_select() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let b = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let cls = b.select_axis1(0);
        assert_eq!(cls.data(), &[0.0, 1.0, 6.0, 7.0]);
        assert_eq!(cls.shape(), &[2, 2]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_handle_extremes() {
        let a = Tensor::from_vec(vec![1000.0, 0.0, 1.0, 1.0], &[2, 2]);
        let s = a.softmax_last();
        assert!((s.data()[0] - 1.0).abs() < 1e-6);
        assert!((s.data()[2] - 0.5).abs() < 1e-6);
        for row in 0..2 {
            let sum: f32 = s.data()[row * 2..(row + 1) * 2].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert!(strides(&[]).is_empty());
    }

    #[test]
    fn zip_map_and_scalar_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(-2.0).data(), &[-2.0, -4.0]);
    }

    #[test]
    fn parts_roundtrip_is_exact() {
        let a = Tensor::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], &[2, 2]);
        let (data, shape) = a.clone().into_parts();
        let b = Tensor::try_from_parts(data, shape).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn try_from_parts_rejects_mismatch_and_overflow() {
        assert!(Tensor::try_from_parts(vec![0.0; 3], vec![2, 2]).is_err());
        assert!(Tensor::try_from_parts(vec![], vec![usize::MAX, usize::MAX]).is_err());
    }
}
