//! Parameter initialization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tensor::Tensor;

/// A seeded initializer handing out tensors.
///
/// ```
/// use ascend_tensor::init::Initializer;
///
/// let mut init = Initializer::new(42);
/// let w = init.xavier_uniform(&[16, 32]);
/// assert_eq!(w.shape(), &[16, 32]);
/// // Bound = sqrt(6/(16+32)) ≈ 0.353.
/// assert!(w.data().iter().all(|v| v.abs() <= 0.36));
/// ```
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates a seeded initializer.
    pub fn new(seed: u64) -> Self {
        Initializer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform in `[-bound, bound]`.
    pub fn uniform(&mut self, shape: &[usize], bound: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| self.rng.random_range(-bound..=bound)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Xavier/Glorot uniform for `[fan_out, fan_in]`-shaped weights (or any
    /// 2-D shape; higher ranks use the trailing two dims).
    pub fn xavier_uniform(&mut self, shape: &[usize]) -> Tensor {
        let (fan_in, fan_out) = fans(shape);
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(shape, bound)
    }

    /// Truncated normal (±2σ) with the given σ — ViT embedding convention.
    pub fn trunc_normal(&mut self, shape: &[usize], sigma: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| loop {
                let u1: f32 = self.rng.random::<f32>().max(1e-12);
                let u2: f32 = self.rng.random();
                let z =
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * sigma;
                if z.abs() <= 2.0 * sigma {
                    break z;
                }
            })
            .collect();
        Tensor::from_vec(data, shape)
    }
}

fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        _ => (shape[shape.len() - 1], shape[shape.len() - 2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Initializer::new(7).xavier_uniform(&[4, 4]);
        let b = Initializer::new(7).xavier_uniform(&[4, 4]);
        assert_eq!(a, b);
        let c = Initializer::new(8).xavier_uniform(&[4, 4]);
        assert_ne!(a, c);
    }

    #[test]
    fn trunc_normal_respects_bounds() {
        let t = Initializer::new(1).trunc_normal(&[1000], 0.5);
        assert!(t.data().iter().all(|v| v.abs() <= 1.0));
        let mean = t.mean_all();
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fans_of_shapes() {
        assert_eq!(fans(&[10, 20]), (20, 10));
        assert_eq!(fans(&[5]), (5, 5));
        assert_eq!(fans(&[]), (1, 1));
    }
}
