//! # ascend-tensor — minimal f32 tensors with reverse-mode autodiff
//!
//! The training substrate for the ASCEND reproduction: a row-major f32
//! [`Tensor`], a tape-based autodiff [`Graph`] whose [`Var`] handles carry
//! the operator set a ViT needs (matmul, batched matmul, permute, softmax,
//! GELU, normalization statistics, LSQ fake-quantization, distillation
//! losses), and [`optim`] with AdamW and LR schedules.
//!
//! The design goal is *correctness you can check*: every operator's gradient
//! is property-tested against central differences (`tests/gradcheck.rs`).
//!
//! ```
//! use ascend_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let w = g.leaf(Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], &[2, 2]));
//! let y = x.matmul(w).sum_all();
//! g.backward(y);
//! let gx = g.grad(x).expect("leaf gradient");
//! // d(sum(xW))/dx = row sums of Wᵀ = [0.5 − 1.0, 0.25 + 2.0]
//! assert!((gx.data()[0] - (-0.5)).abs() < 1e-6);
//! assert!((gx.data()[1] - 2.25).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod init;
pub mod optim;
pub mod tensor;

pub use graph::{Graph, Var};
pub use tensor::Tensor;
