//! Optimizers and learning-rate schedules.
//!
//! The paper trains with AdamW (momentum 0.9) and fine-tunes at a reduced
//! LR (§VI-A); [`AdamW`] implements the decoupled-weight-decay update of
//! \[26\] over a flat parameter list.

use crate::tensor::Tensor;

/// AdamW over an externally owned parameter list.
///
/// The optimizer holds per-parameter moment buffers indexed by position, so
/// callers must pass parameters (and their grads) in a stable order.
///
/// ```
/// use ascend_tensor::optim::AdamW;
/// use ascend_tensor::Tensor;
///
/// let mut opt = AdamW::new(0.1, 0.9, 0.999, 0.0);
/// let mut p = Tensor::scalar(1.0);
/// for _ in 0..100 {
///     let g = Tensor::scalar(2.0 * p.item()); // d(p²)/dp
///     opt.step(&mut [&mut p], &[&g]);
/// }
/// assert!(p.item().abs() < 0.1, "p should approach the minimum of p²");
/// ```
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    weight_decay: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl AdamW {
    /// Creates the optimizer.
    pub fn new(lr: f32, beta1: f32, beta2: f32, weight_decay: f32) -> Self {
        AdamW { lr, beta1, beta2, weight_decay, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or if shapes drift
    /// between calls.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            assert_eq!(p.numel(), g.numel(), "param/grad shape mismatch at {i}");
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((pv, gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                // Decoupled weight decay (the W in AdamW).
                *pv -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *pv);
            }
        }
    }
}

/// SGD with classical momentum, for baselines and ablations.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates the optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            let vel = &mut self.velocity[i];
            for ((pv, gv), vv) in
                p.data_mut().iter_mut().zip(g.data().iter()).zip(vel.iter_mut())
            {
                *vv = self.momentum * *vv - self.lr * gv;
                *pv += *vv;
            }
        }
    }
}

/// Cosine decay with linear warmup — the standard ViT schedule.
///
/// ```
/// use ascend_tensor::optim::cosine_lr;
///
/// assert!(cosine_lr(0, 10, 100, 1.0) < 0.2);        // warming up
/// assert!((cosine_lr(10, 10, 100, 1.0) - 1.0).abs() < 1e-6);
/// assert!(cosine_lr(99, 10, 100, 1.0) < 0.01);      // decayed
/// ```
pub fn cosine_lr(step: usize, warmup: usize, total: usize, base: f32) -> f32 {
    if total == 0 {
        return base;
    }
    if step < warmup {
        return base * (step as f32 + 1.0) / warmup.max(1) as f32;
    }
    let progress = (step - warmup) as f32 / (total - warmup).max(1) as f32;
    let progress = progress.clamp(0.0, 1.0);
    base * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adamw_minimizes_quadratic() {
        let mut opt = AdamW::new(0.05, 0.9, 0.999, 0.0);
        let mut p = Tensor::from_vec(vec![3.0, -2.0], &[2]);
        for _ in 0..500 {
            let g = p.scale(2.0);
            opt.step(&mut [&mut p], &[&g]);
        }
        assert!(p.data().iter().all(|v| v.abs() < 0.05), "{p:?}");
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut opt = AdamW::new(0.1, 0.9, 0.999, 0.1);
        let mut p = Tensor::scalar(1.0);
        let zero = Tensor::scalar(0.0);
        for _ in 0..50 {
            opt.step(&mut [&mut p], &[&zero]);
        }
        assert!(p.item() < 0.7, "decay should shrink weights, got {}", p.item());
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let mut p = Tensor::scalar(4.0);
        for _ in 0..200 {
            let g = Tensor::scalar(2.0 * p.item());
            opt.step(&mut [&mut p], &[&g]);
        }
        assert!(p.item().abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_validates_lengths() {
        let mut opt = AdamW::new(0.1, 0.9, 0.999, 0.0);
        let mut p = Tensor::scalar(1.0);
        opt.step(&mut [&mut p], &[]);
    }

    #[test]
    fn cosine_schedule_is_monotone_after_warmup() {
        let lrs: Vec<f32> = (10..100).map(|s| cosine_lr(s, 10, 100, 1.0)).collect();
        for w in lrs.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(cosine_lr(5, 0, 0, 0.3), 0.3);
    }
}
