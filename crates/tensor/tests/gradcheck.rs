//! Gradient checking: every operator's analytic gradient is verified
//! against central differences on randomized inputs.

use ascend_tensor::{Graph, Tensor, Var};
use proptest::prelude::*;

/// Central-difference gradient of `f` (as a scalar function of the leaf
/// tensor `x`) compared against the autograd gradient.
fn check_grad<F>(x0: Tensor, f: F, tol: f32)
where
    F: Fn(Var<'_>) -> Var<'_>,
{
    // Analytic gradient.
    let g = Graph::new();
    let x = g.leaf(x0.clone());
    let y = f(x);
    g.backward(y);
    let analytic = g.grad(x).expect("leaf must receive gradient");

    // Numeric gradient, one coordinate at a time.
    let eps = 1e-2f32;
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;

        let gp = Graph::new();
        let yp = f(gp.leaf(plus)).value().item();
        let gm = Graph::new();
        let ym = f(gm.leaf(minus)).value().item();
        let numeric = (yp - ym) / (2.0 * eps);
        let got = analytic.data()[i];
        assert!(
            (got - numeric).abs() < tol * (1.0 + numeric.abs()),
            "coordinate {i}: analytic {got} vs numeric {numeric}"
        );
    }
}

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, n).prop_map(move |v| Tensor::from_vec(v, shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_mul_sum(x in arb_tensor(&[2, 3])) {
        check_grad(x, |v| v.mul(v).sum_all(), 5e-2);
    }

    #[test]
    fn grad_matmul(x in arb_tensor(&[2, 3])) {
        let b = Tensor::from_vec(vec![0.5, -1.0, 0.3, 2.0, 0.7, -0.2], &[3, 2]);
        check_grad(x, move |v| v.matmul_const(&b).sum_all(), 5e-2);
    }

    #[test]
    fn grad_gelu(x in arb_tensor(&[2, 3])) {
        check_grad(x, |v| v.gelu().sum_all(), 5e-2);
    }

    #[test]
    fn grad_softmax_weighted(x in arb_tensor(&[2, 3])) {
        // Weighted sum to make the objective sensitive to each coordinate.
        let w = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.7, 0.1, -0.4], &[2, 3]);
        check_grad(x, move |v| {
            let wv = v.graph().constant(w.clone());
            v.softmax_last().mul(wv).sum_all()
        }, 8e-2);
    }

    #[test]
    fn grad_norm_pipeline(x in arb_tensor(&[3, 4])) {
        // The layer-norm composition: (x − mean)·rsqrt(var + eps).
        check_grad(x, |v| {
            let mu = v.mean_axis1();
            let centered = v.broadcast_col_add(mu.neg());
            let var = centered.square().mean_axis1();
            let inv = var.rsqrt_eps(1e-3);
            centered.broadcast_col_mul(inv).square().sum_all()
        }, 1e-1);
    }

    #[test]
    fn grad_bn_pipeline(x in arb_tensor(&[4, 3])) {
        // The batch-norm composition over axis 0.
        check_grad(x, |v| {
            let mu = v.mean_axis0();
            let centered = v.broadcast_row_add(mu.neg());
            let var = centered.square().mean_axis0();
            let inv = var.rsqrt_eps(1e-3);
            centered.broadcast_row_mul(inv).square().sum_all()
        }, 1e-1);
    }

    #[test]
    fn grad_cross_entropy(x in arb_tensor(&[2, 3])) {
        check_grad(x, |v| v.cross_entropy(&[0, 2]), 5e-2);
    }

    #[test]
    fn grad_kl(x in arb_tensor(&[2, 3])) {
        let teacher = Tensor::from_vec(vec![0.5, 0.1, -0.2, 1.0, -1.0, 0.0], &[2, 3]);
        check_grad(x, move |v| v.kl_from_teacher(&teacher), 5e-2);
    }

    #[test]
    fn grad_batched_matmul(x in arb_tensor(&[2, 2, 3])) {
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.2 - 1.0).collect(), &[2, 3, 2]);
        check_grad(x, move |v| v.batched_matmul_const(&b).sum_all(), 8e-2);
    }

    #[test]
    fn grad_permute_reshape_select(x in arb_tensor(&[2, 3, 2])) {
        check_grad(x, |v| v.permute(&[0, 2, 1]).reshape(&[2, 2, 3]).select_axis1(1).sum_all(), 5e-2);
    }

    #[test]
    fn grad_repeat_as_rows(x in arb_tensor(&[3])) {
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.3, 1.1, -0.7], &[2, 3]);
        check_grad(x, move |v| {
            let wv = v.graph().constant(w.clone());
            v.repeat_as_rows(2).mul(wv).sum_all()
        }, 5e-2);
    }

    #[test]
    fn grad_concat_axis1(x in arb_tensor(&[2, 2, 2])) {
        check_grad(x, |v| {
            let other = v.graph().constant(Tensor::ones(&[2, 1, 2]));
            v.concat_axis1(other).square().sum_all()
        }, 5e-2);
    }

    #[test]
    fn grad_row_sum_bcast(x in arb_tensor(&[2, 3])) {
        let w = Tensor::from_vec(vec![0.2, -0.9, 1.3, 0.4, 0.8, -0.1], &[2, 3]);
        check_grad(x, move |v| {
            let wv = v.graph().constant(w.clone());
            v.row_sum_bcast().mul(wv).square().sum_all()
        }, 1e-1);
    }

    #[test]
    fn grad_iterative_softmax_composition(x in arb_tensor(&[2, 4])) {
        // The in-graph Algorithm 1 must be differentiable end to end.
        let w = Tensor::from_vec(
            vec![0.3, -1.0, 2.0, 0.7, 0.1, -0.4, 0.9, -0.2],
            &[2, 4],
        );
        check_grad(x, move |v| {
            let g = v.graph();
            let k = 4usize;
            let mut y = g.constant(Tensor::full(&[2, 4], 0.25));
            for _ in 0..k {
                let z = v.mul(y);
                let sum_z = z.row_sum_bcast();
                y = y.add(z.sub(y.mul(sum_z)).scale(1.0 / k as f32));
            }
            let wv = g.constant(w.clone());
            y.mul(wv).sum_all()
        }, 1.5e-1);
    }
}
