//! Property-based tests for the SC substrate invariants.

use proptest::prelude::*;
use sc_core::bsn::{self, BitonicNetwork};
use sc_core::rescale::{rescale, RescaleMode};
use sc_core::sng::{Lfsr, RandomSource, VanDerCorput};
use sc_core::{arith, ttmul, Bitstream, ThermStream};

fn arb_bits(max_len: usize) -> impl Strategy<Value = Bitstream> {
    proptest::collection::vec(any::<bool>(), 0..max_len).prop_map(Bitstream::from_bits)
}

/// Lengths straddling the packed-word boundaries: one under, at, and one
/// over a whole `u64`, for one and two words.
fn word_boundary_lengths() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![63usize, 64, 65, 127, 128, 129])
}

/// Arbitrary bit vectors exactly at the word-boundary lengths.
fn arb_boundary_bits() -> impl Strategy<Value = Vec<bool>> {
    word_boundary_lengths()
        .prop_flat_map(|len| proptest::collection::vec(any::<bool>(), len..=len))
}

fn arb_therm(max_half: i64) -> impl Strategy<Value = ThermStream> {
    (1..=max_half, 0.01f64..4.0).prop_flat_map(|(half, scale)| {
        (-half..=half).prop_map(move |q| {
            ThermStream::from_level(q, (half * 2) as usize, scale).expect("valid level")
        })
    })
}

proptest! {
    #[test]
    fn bitstream_not_is_involution(s in arb_bits(200)) {
        prop_assert_eq!(s.not().not(), s);
    }

    #[test]
    fn bitstream_popcount_plus_zeros_is_len(s in arb_bits(200)) {
        prop_assert_eq!(s.count_ones() + s.not().count_ones(), s.len());
    }

    #[test]
    fn xor_with_self_is_zero(s in arb_bits(200)) {
        prop_assert_eq!(s.xor(&s).unwrap().count_ones(), 0);
    }

    #[test]
    fn and_or_counts_are_inclusion_exclusion(a in arb_bits(128), b in arb_bits(128)) {
        if a.len() == b.len() {
            let and = a.and(&b).unwrap().count_ones();
            let or = a.or(&b).unwrap().count_ones();
            prop_assert_eq!(and + or, a.count_ones() + b.count_ones());
        }
    }

    #[test]
    fn concat_count_is_sum(a in arb_bits(100), b in arb_bits(100)) {
        let c = a.concat(&b);
        prop_assert_eq!(c.count_ones(), a.count_ones() + b.count_ones());
        prop_assert_eq!(c.len(), a.len() + b.len());
    }

    #[test]
    fn bsn_sorts_and_preserves_popcount(s in arb_bits(130)) {
        if !s.is_empty() {
            let net = BitonicNetwork::new(s.len());
            let sorted = net.sort(&s);
            prop_assert!(sorted.is_sorted_ones_first());
            prop_assert_eq!(sorted.count_ones(), s.count_ones());
        }
    }

    /// Sorting networks must sort every 0/1 input; by the 0-1 principle this
    /// certifies the comparator schedule sorts arbitrary keys.
    #[test]
    fn bsn_output_equals_behavioural_sort(s in arb_bits(64)) {
        if !s.is_empty() {
            let net = BitonicNetwork::new(s.len());
            prop_assert_eq!(net.sort(&s), s.sort_ones_first());
        }
    }

    #[test]
    fn therm_negate_is_involution(x in arb_therm(16)) {
        let n = x.negate().negate();
        prop_assert_eq!(n.level(), x.level());
    }

    #[test]
    fn bsn_add_matches_integer_addition(a in arb_therm(16), b in -8i64..=8) {
        let y = ThermStream::from_level(b, 16, a.scale()).unwrap();
        let sum = bsn::add(&[&a, &y]).unwrap();
        prop_assert_eq!(sum.level(), a.level() + b);
        prop_assert!((sum.value() - (a.value() + y.value())).abs() < 1e-9);
    }

    #[test]
    fn ttmul_matches_integer_multiplication(a in arb_therm(8), b in arb_therm(8)) {
        let p = ttmul::mul(&a, &b).unwrap();
        prop_assert_eq!(p.level(), a.level() * b.level());
        prop_assert!((p.value() - a.value() * b.value()).abs() < 1e-9);
    }

    #[test]
    fn rescale_error_bounded_by_one_lsb(
        q in -32i64..=32,
        s in prop::sample::select(vec![2usize, 4, 8, 16]),
        mode in prop::sample::select(vec![RescaleMode::Floor, RescaleMode::Round, RescaleMode::Ceil]),
    ) {
        let x = ThermStream::from_level(q, 64, 0.25).unwrap();
        let y = rescale(&x, s, mode).unwrap();
        prop_assert!((y.value() - x.value()).abs() <= y.scale() + 1e-12);
        prop_assert_eq!(y.len(), 64 / s);
    }

    #[test]
    fn scc_is_bounded(a in arb_bits(100), b in arb_bits(100)) {
        if a.len() == b.len() && !a.is_empty() {
            let c = arith::scc(&a, &b).unwrap();
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }

    #[test]
    fn lfsr_streams_hit_probability_within_tolerance(
        seed in 1u32..5000,
        p in 0.0f64..=1.0,
    ) {
        let mut l = Lfsr::new(12, seed).unwrap();
        let s = l.bitstream(p, 4095).unwrap();
        prop_assert!((s.frac_ones() - p).abs() < 0.03);
    }

    #[test]
    fn vdc_streams_hit_probability_tightly(p in 0.0f64..=1.0) {
        let mut v = VanDerCorput::new(16).unwrap();
        let s = v.bitstream(p, 256).unwrap();
        prop_assert!((s.frac_ones() - p).abs() <= 1.0 / 256.0 + 1e-9);
    }

    /// `ones` at word-boundary lengths: the popcount is exactly the length,
    /// every materialized bit is set, and the complement is empty — i.e.
    /// the packed tail past `len` stays masked to zero.
    #[test]
    fn ones_is_exact_at_word_boundaries(len in word_boundary_lengths()) {
        let s = Bitstream::ones(len);
        prop_assert_eq!(s.len(), len);
        prop_assert_eq!(s.count_ones(), len);
        prop_assert!(s.to_vec().iter().all(|&b| b));
        prop_assert_eq!(s.not().count_ones(), 0);
    }

    /// `from_bits` round-trips through `to_vec`, `count_ones`, and
    /// `FromIterator` at word-boundary lengths.
    #[test]
    fn from_bits_round_trips_at_word_boundaries(bits in arb_boundary_bits()) {
        let s = Bitstream::from_bits(bits.clone());
        prop_assert_eq!(s.len(), bits.len());
        prop_assert_eq!(s.count_ones(), bits.iter().filter(|&&b| b).count());
        prop_assert_eq!(s.to_vec(), bits.clone());
        let collected: Bitstream = bits.into_iter().collect();
        prop_assert_eq!(collected, s);
    }

    /// Iterator round-trips at word-boundary lengths, forward and reversed,
    /// and the masked-tail invariant keeps complement popcounts exact.
    #[test]
    fn iterator_round_trips_at_word_boundaries(bits in arb_boundary_bits()) {
        let s = Bitstream::from_bits(bits);
        let rebuilt = Bitstream::from_bits(s.iter());
        prop_assert_eq!(&rebuilt, &s);
        let mut reversed: Vec<bool> = s.iter().rev().collect();
        reversed.reverse();
        prop_assert_eq!(reversed, s.to_vec());
        prop_assert_eq!(s.iter().len(), s.len());
        prop_assert_eq!(s.not().count_ones(), s.len() - s.count_ones());
    }
}
