//! # sc-core — stochastic computing substrate
//!
//! This crate implements the stochastic-computing (SC) foundation used by the
//! ASCEND reproduction: bitstreams, value encodings, stochastic number
//! generators, arithmetic primitives, bitonic sorting networks, deterministic
//! thermometer arithmetic and re-scaling blocks.
//!
//! ## Representations
//!
//! SC represents a number by a *bitstream*; the fraction of 1-bits carries the
//! value. Three encodings are supported (paper §II-A):
//!
//! * [`encoding::Unipolar`] — value `p ∈ [0, 1]` is the probability of 1s.
//! * [`encoding::Bipolar`] — value `v ∈ [−1, 1]` is `2p − 1`.
//! * [`encoding::Thermometer`] — *deterministic* encoding where all 1s appear
//!   at the head of the stream: a data `x` is represented with an `L`-bit
//!   sequence as `x = α·x_q` with `x_q = Σᵢ x[i] − L/2 ∈ [−L/2, L/2]`.
//!
//! The thermometer encoding underpins ASCEND's end-to-end deterministic
//! pipeline: multiplication becomes a truth table ([`ttmul`]), addition
//! becomes bitstream concatenation plus a bitonic sorting network ([`bsn`]),
//! and scale alignment becomes bit sub-sampling ([`rescale`]).
//!
//! ## Quickstart
//!
//! ```
//! use sc_core::encoding::Thermometer;
//! use sc_core::therm::ThermStream;
//!
//! // Encode 0.75 with an 8-bit thermometer code at scale 0.25.
//! let enc = Thermometer::new(8, 0.25)?;
//! let x: ThermStream = enc.encode(0.75);
//! assert_eq!(x.level(), 3);              // 0.75 / 0.25
//! assert!((x.value() - 0.75).abs() < 1e-9);
//! # Ok::<(), sc_core::ScError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arith;
pub mod bitstream;
pub mod bsn;
pub mod encoding;
pub mod error;
pub mod rescale;
pub mod sng;
pub mod therm;
pub mod ttmul;

pub use bitstream::Bitstream;
pub use error::ScError;
pub use therm::ThermStream;
