//! Value ⇄ bitstream codecs for the three SC encodings (paper §II-A).

use crate::sng::RandomSource;
use crate::therm::ThermStream;
use crate::{Bitstream, ScError};

/// Unipolar encoding: value `p ∈ [0, 1]` is the probability of 1s.
///
/// ```
/// use sc_core::encoding::Unipolar;
/// use sc_core::sng::Lfsr;
///
/// let enc = Unipolar::new(256);
/// let mut sng = Lfsr::new(8, 1)?;
/// let s = enc.encode(0.25, &mut sng)?;
/// assert!((enc.decode(&s) - 0.25).abs() < 0.05);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unipolar {
    len: usize,
}

impl Unipolar {
    /// Creates a codec producing `len`-bit streams.
    pub fn new(len: usize) -> Self {
        Unipolar { len }
    }

    /// Stream length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the codec produces empty streams.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encodes probability `p` using the supplied random source.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `p ∉ [0, 1]`.
    pub fn encode<R: RandomSource>(&self, p: f64, source: &mut R) -> Result<Bitstream, ScError> {
        source.bitstream(p, self.len)
    }

    /// Decodes a stream to its fraction of ones.
    pub fn decode(&self, s: &Bitstream) -> f64 {
        s.frac_ones()
    }
}

/// Bipolar encoding: value `v ∈ [−1, 1]` is `2p − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bipolar {
    len: usize,
}

impl Bipolar {
    /// Creates a codec producing `len`-bit streams.
    pub fn new(len: usize) -> Self {
        Bipolar { len }
    }

    /// Stream length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the codec produces empty streams.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encodes value `v` using the supplied random source.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `v ∉ [−1, 1]`.
    pub fn encode<R: RandomSource>(&self, v: f64, source: &mut R) -> Result<Bitstream, ScError> {
        if !(-1.0..=1.0).contains(&v) {
            return Err(ScError::ValueOutOfRange { value: v, min: -1.0, max: 1.0 });
        }
        source.bitstream((v + 1.0) / 2.0, self.len)
    }

    /// Decodes a stream to `2·frac_ones − 1`.
    pub fn decode(&self, s: &Bitstream) -> f64 {
        2.0 * s.frac_ones() - 1.0
    }
}

/// Deterministic thermometer encoding: `x = α·x_q`, `x_q ∈ [−L/2, L/2]`.
///
/// This is the encoding ASCEND's end-to-end pipeline uses. Encoding is
/// deterministic (no SNG): the quantized level sets the run of leading 1s.
///
/// ```
/// use sc_core::encoding::Thermometer;
///
/// let enc = Thermometer::new(16, 0.125)?;
/// let x = enc.encode(-0.5);
/// assert_eq!(x.level(), -4);
/// assert!((enc.decode(&x) + 0.5).abs() < 1e-12);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thermometer {
    len: usize,
    scale: f64,
}

impl Thermometer {
    /// Creates a codec for `len`-bit streams (even, non-zero) at scale `α`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] for odd/zero `len` or a scale that
    /// is not finite and positive.
    pub fn new(len: usize, scale: f64) -> Result<Self, ScError> {
        if len == 0 || !len.is_multiple_of(2) {
            return Err(ScError::InvalidParam {
                name: "len",
                reason: format!("thermometer length must be even and non-zero, got {len}"),
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ScError::InvalidParam {
                name: "scale",
                reason: format!("scale must be finite and positive, got {scale}"),
            });
        }
        Ok(Thermometer { len, scale })
    }

    /// Builds the codec that covers `[−max_abs, max_abs]` with a given BSL.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Thermometer::new`].
    pub fn with_range(len: usize, max_abs: f64) -> Result<Self, ScError> {
        if len == 0 || !len.is_multiple_of(2) {
            return Err(ScError::InvalidParam {
                name: "len",
                reason: format!("thermometer length must be even and non-zero, got {len}"),
            });
        }
        Self::new(len, max_abs / (len as f64 / 2.0))
    }

    /// Stream length (BSL).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the codec produces empty streams (never true; kept for the
    /// `len`/`is_empty` API pairing).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scaling factor `α`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Largest representable magnitude `α·L/2`.
    pub fn max_abs(&self) -> f64 {
        self.scale * (self.len / 2) as f64
    }

    /// Number of representable levels (`L + 1`).
    pub fn levels(&self) -> usize {
        self.len + 1
    }

    /// Encodes `x`, rounding to the nearest level and clamping to range.
    pub fn encode(&self, x: f64) -> ThermStream {
        ThermStream::encode_clamped(x, self.len, self.scale)
    }

    /// Encodes `x` exactly if it is on-grid and in range.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `|x| > max_abs`, and
    /// [`ScError::InvalidParam`] if `x` is not an integer multiple of `α`.
    pub fn encode_exact(&self, x: f64) -> Result<ThermStream, ScError> {
        let q = x / self.scale;
        if (q - q.round()).abs() > 1e-9 {
            return Err(ScError::InvalidParam {
                name: "x",
                reason: format!("{x} is not a multiple of scale {}", self.scale),
            });
        }
        ThermStream::from_level(q.round() as i64, self.len, self.scale)
    }

    /// Decodes a stream produced by (any codec compatible with) this one.
    pub fn decode(&self, s: &ThermStream) -> f64 {
        s.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sng::{Lfsr, VanDerCorput};

    #[test]
    fn unipolar_roundtrip_statistics() {
        let enc = Unipolar::new(1023);
        let mut sng = Lfsr::new(10, 5).unwrap();
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let s = enc.encode(p, &mut sng).unwrap();
            assert!((enc.decode(&s) - p).abs() < 0.02, "p={p}");
        }
    }

    #[test]
    fn bipolar_roundtrip_statistics() {
        let enc = Bipolar::new(2048);
        let mut sng = VanDerCorput::new(16).unwrap();
        for &v in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let s = enc.encode(v, &mut sng).unwrap();
            assert!((enc.decode(&s) - v).abs() < 0.01, "v={v}");
        }
        assert!(enc.encode(1.5, &mut sng).is_err());
    }

    #[test]
    fn thermometer_validation() {
        assert!(Thermometer::new(0, 1.0).is_err());
        assert!(Thermometer::new(3, 1.0).is_err());
        assert!(Thermometer::new(4, 0.0).is_err());
        assert!(Thermometer::new(4, f64::INFINITY).is_err());
    }

    #[test]
    fn thermometer_with_range() {
        let enc = Thermometer::with_range(8, 2.0).unwrap();
        assert!((enc.scale() - 0.5).abs() < 1e-12);
        assert!((enc.max_abs() - 2.0).abs() < 1e-12);
        assert_eq!(enc.levels(), 9);
    }

    #[test]
    fn thermometer_exact_encode_rejects_off_grid() {
        let enc = Thermometer::new(8, 0.5).unwrap();
        assert!(enc.encode_exact(0.75).is_err());
        assert!(enc.encode_exact(3.0).is_err()); // out of range (max 2.0)
        let s = enc.encode_exact(1.5).unwrap();
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn thermometer_encode_decode_grid() {
        let enc = Thermometer::new(16, 0.25).unwrap();
        for q in -8..=8i64 {
            let x = q as f64 * 0.25;
            let s = enc.encode(x);
            assert_eq!(s.level(), q);
            assert!((enc.decode(&s) - x).abs() < 1e-12);
        }
    }
}
