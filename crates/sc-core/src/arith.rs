//! Stochastic arithmetic over unipolar/bipolar bitstreams.
//!
//! These are the classic single-gate SC operators used by the *baseline*
//! circuit families (FSM, Bernstein): AND multiplies unipolar streams, XNOR
//! multiplies bipolar streams, a MUX performs scaled addition. They assume
//! statistically independent operands; [`scc`] quantifies how far a pair of
//! streams is from that assumption.

use crate::{Bitstream, ScError};

/// Unipolar multiplication: `P(a ∧ b) = P(a)·P(b)` for independent streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if lengths differ.
///
/// ```
/// use sc_core::arith::and_mul;
/// use sc_core::sng::{Lfsr, RandomSource};
///
/// let mut s1 = Lfsr::new(10, 17)?;
/// let mut s2 = Lfsr::new(10, 91)?;
/// let a = s1.bitstream(0.5, 1023)?;
/// let b = s2.bitstream(0.5, 1023)?;
/// let p = and_mul(&a, &b)?;
/// assert!((p.frac_ones() - 0.25).abs() < 0.05);
/// # Ok::<(), sc_core::ScError>(())
/// ```
pub fn and_mul(a: &Bitstream, b: &Bitstream) -> Result<Bitstream, ScError> {
    a.and(b)
}

/// Bipolar multiplication: an XNOR gate computes `v(a)·v(b)` for independent
/// bipolar streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if lengths differ.
pub fn xnor_mul(a: &Bitstream, b: &Bitstream) -> Result<Bitstream, ScError> {
    a.xnor(b)
}

/// MUX scaled addition: with a select stream of probability `0.5`, the output
/// value is `(v(a) + v(b)) / 2` in either encoding.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if any two lengths differ.
pub fn mux_add(a: &Bitstream, b: &Bitstream, select: &Bitstream) -> Result<Bitstream, ScError> {
    if a.len() != b.len() {
        return Err(ScError::LengthMismatch { left: a.len(), right: b.len() });
    }
    if a.len() != select.len() {
        return Err(ScError::LengthMismatch { left: a.len(), right: select.len() });
    }
    Ok(Bitstream::from_fn(a.len(), |i| if select.get(i) { a.get(i) } else { b.get(i) }))
}

/// Stochastic cross-correlation (SCC) of two equal-length streams.
///
/// SCC is `+1` for maximally overlapping streams, `0` for independent ones
/// and `−1` for maximally anti-overlapping ones. SC multipliers are exact at
/// SCC = 0; thermometer streams deliberately run at SCC = +1 and use
/// position-based operators instead.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if lengths differ.
pub fn scc(a: &Bitstream, b: &Bitstream) -> Result<f64, ScError> {
    if a.len() != b.len() {
        return Err(ScError::LengthMismatch { left: a.len(), right: b.len() });
    }
    let n = a.len() as f64;
    if a.is_empty() {
        return Ok(0.0);
    }
    let p1 = a.frac_ones();
    let p2 = b.frac_ones();
    let p11 = a.and(b)?.count_ones() as f64 / n;
    let delta = p11 - p1 * p2;
    let denom = if delta > 0.0 {
        p1.min(p2) - p1 * p2
    } else {
        p1 * p2 - (p1 + p2 - 1.0).max(0.0)
    };
    if denom.abs() < 1e-15 {
        Ok(0.0)
    } else {
        Ok(delta / denom)
    }
}

/// Accumulates unipolar streams with a parallel counter: output value is the
/// *sum* of the input fractions (a real number, since the count exceeds one
/// bit per cycle). This models the APC used by FSM-based softmax baselines.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ, and
/// [`ScError::InvalidParam`] if `streams` is empty.
pub fn parallel_count(streams: &[&Bitstream]) -> Result<Vec<u32>, ScError> {
    let first = streams.first().ok_or(ScError::InvalidParam {
        name: "streams",
        reason: "at least one stream required".into(),
    })?;
    let len = first.len();
    for s in streams {
        if s.len() != len {
            return Err(ScError::LengthMismatch { left: len, right: s.len() });
        }
    }
    Ok((0..len)
        .map(|i| streams.iter().filter(|s| s.get(i)).count() as u32)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sng::{Lfsr, RandomSource};

    fn stream(p: f64, len: usize, seed: u32) -> Bitstream {
        Lfsr::new(12, seed).unwrap().bitstream(p, len).unwrap()
    }

    #[test]
    fn and_mul_approximates_product() {
        let a = stream(0.6, 4095, 3);
        let b = stream(0.7, 4095, 1771);
        let p = and_mul(&a, &b).unwrap();
        assert!((p.frac_ones() - 0.42).abs() < 0.03);
    }

    #[test]
    fn xnor_mul_approximates_bipolar_product() {
        // v = 0.4 and v = -0.5 → product -0.2
        let a = stream(0.7, 4095, 9);
        let b = stream(0.25, 4095, 3333);
        let p = xnor_mul(&a, &b).unwrap();
        let v = 2.0 * p.frac_ones() - 1.0;
        assert!((v + 0.2).abs() < 0.05, "got {v}");
    }

    #[test]
    fn mux_add_halves_sum() {
        let a = stream(0.8, 4095, 21);
        let b = stream(0.2, 4095, 1234);
        let sel = stream(0.5, 4095, 777);
        let out = mux_add(&a, &b, &sel).unwrap();
        assert!((out.frac_ones() - 0.5).abs() < 0.05);
    }

    #[test]
    fn mux_add_length_checks() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(8);
        let sel = Bitstream::zeros(4);
        assert!(mux_add(&a, &b, &sel).is_err());
    }

    #[test]
    fn scc_extremes() {
        let a = Bitstream::from_str_binary("11110000").unwrap();
        assert!((scc(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let b = a.not();
        assert!((scc(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn scc_independent_streams_near_zero() {
        let a = stream(0.5, 4095, 5);
        let b = stream(0.5, 4095, 4242);
        assert!(scc(&a, &b).unwrap().abs() < 0.1);
    }

    #[test]
    fn scc_empty_is_zero() {
        let a = Bitstream::zeros(0);
        assert_eq!(scc(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn parallel_count_sums_columns() {
        let a = Bitstream::from_str_binary("110").unwrap();
        let b = Bitstream::from_str_binary("011").unwrap();
        let c = Bitstream::from_str_binary("111").unwrap();
        let counts = parallel_count(&[&a, &b, &c]).unwrap();
        assert_eq!(counts, vec![2, 3, 2]);
        assert!(parallel_count(&[]).is_err());
    }
}
