//! Re-scaling blocks: scale-factor alignment by bit sub-sampling (\[15\]).
//!
//! A thermometer value `α·q` with BSL `L` can be converted to scale `α·s`
//! with BSL `L/s` by keeping one bit out of every `s` — on a *sorted* stream
//! this divides the level by `s` with a rounding behaviour set by which bit
//! of each group is kept ([`RescaleMode`]). This is the only lossy step in
//! the deterministic pipeline, and the knob the iterative-softmax design
//! space sweeps (`s1`, `s2` in paper Table II).

use crate::therm::ThermStream;
use crate::ScError;

/// Which bit of each `s`-group the sub-sampler taps, fixing the rounding of
/// the implied division by `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RescaleMode {
    /// Tap the last bit (phase `s−1`): `count' = ⌊ones/s⌋` — floors.
    Floor,
    /// Tap the middle bit (phase `⌈s/2⌉−1`): rounds to nearest.
    #[default]
    Round,
    /// Tap the first bit (phase `0`): `count' = ⌈ones/s⌉` — ceils.
    Ceil,
}

impl RescaleMode {
    /// The tap phase within each group of `s` bits.
    pub fn phase(self, s: usize) -> usize {
        match self {
            RescaleMode::Floor => s - 1,
            RescaleMode::Round => s.div_ceil(2) - 1,
            RescaleMode::Ceil => 0,
        }
    }
}

/// Sub-samples a thermometer stream by `s`, multiplying the scale by `s`.
///
/// The input is normalized (sorted) first, as the hardware block sits behind
/// a BSN. The output length is `L/s` and the output level approximates
/// `q/s`; the *value* is approximately preserved with a quantization error
/// bounded by one output LSB (`α·s`).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `s` is zero, does not divide `L`, or
/// leaves an odd output length.
///
/// ```
/// use sc_core::rescale::{rescale, RescaleMode};
/// use sc_core::ThermStream;
///
/// let x = ThermStream::from_level(6, 16, 0.25)?;           // value 1.5
/// let y = rescale(&x, 4, RescaleMode::Round)?;             // BSL 16 → 4
/// assert_eq!(y.len(), 4);
/// assert!((y.scale() - 1.0).abs() < 1e-12);
/// assert!((y.value() - 1.5).abs() <= 1.0);                 // within 1 LSB
/// # Ok::<(), sc_core::ScError>(())
/// ```
pub fn rescale(x: &ThermStream, s: usize, mode: RescaleMode) -> Result<ThermStream, ScError> {
    if s == 0 {
        return Err(ScError::InvalidParam { name: "s", reason: "sub-sample rate must be non-zero".into() });
    }
    if s == 1 {
        return Ok(x.clone());
    }
    if !x.len().is_multiple_of(s) {
        return Err(ScError::InvalidParam {
            name: "s",
            reason: format!("rate {s} does not divide BSL {}", x.len()),
        });
    }
    let out_len = x.len() / s;
    if out_len == 0 || !out_len.is_multiple_of(2) {
        return Err(ScError::InvalidParam {
            name: "s",
            reason: format!("rate {s} leaves an odd/zero output BSL {out_len}"),
        });
    }
    let sorted = x.normalized();
    let bits = sorted.bits().subsample(s, mode.phase(s));
    ThermStream::new(bits, x.scale() * s as f64)
}

/// Re-scales by a rational factor `v/u`: replicate each bit `u` times (wire
/// fan-out, value-preserving once the scale is divided by `u`), then
/// sub-sample by `v`.
///
/// Net effect: scale × `v/u`, length × `u/v`, value preserved to within one
/// output LSB. This is how the iterative-softmax datapath aligns the
/// `z_i/k` and `y·sum(z)/k` terms onto the `α_y` grid before BSN② (paper
/// Fig. 5's re-scaling blocks, generalized to non-integer ratios).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `u` or `v` is zero, if `v` does not
/// divide `len·u`, or if the output length would be odd or zero.
pub fn rescale_rational(
    x: &ThermStream,
    u: usize,
    v: usize,
    mode: RescaleMode,
) -> Result<ThermStream, ScError> {
    if u == 0 || v == 0 {
        return Err(ScError::InvalidParam {
            name: "u/v",
            reason: "rational rescale factors must be non-zero".into(),
        });
    }
    // Replicate: level ×u and length ×u at constant scale, then divide the
    // scale by u so the value is preserved.
    let replicated = if u == 1 {
        x.clone()
    } else {
        crate::ttmul::mul_const(x, u as u32)?.with_scale(x.scale() / u as f64)?
    };
    rescale(&replicated, v, mode)
}

/// Saturating truncation: keeps the central `out_len` bits of the sorted
/// stream, clamping the level to `[−out_len/2, out_len/2]` at constant scale.
///
/// On a sorted stream of length `N` with `c` ones, the window starting at
/// `(N − out_len)/2` has popcount `clamp(c − (N−out_len)/2, 0, out_len)`,
/// which is exactly level saturation — the hardware is pure wiring.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `out_len` is zero, odd, larger than
/// the input, or of different parity than the input length.
pub fn truncate_center(x: &ThermStream, out_len: usize) -> Result<ThermStream, ScError> {
    if out_len == 0 || !out_len.is_multiple_of(2) {
        return Err(ScError::InvalidParam {
            name: "out_len",
            reason: format!("output length must be even and non-zero, got {out_len}"),
        });
    }
    if out_len > x.len() || !(x.len() - out_len).is_multiple_of(2) {
        return Err(ScError::InvalidParam {
            name: "out_len",
            reason: format!("cannot center a {out_len}-bit window in a {}-bit stream", x.len()),
        });
    }
    let sorted = x.normalized();
    let start = (x.len() - out_len) / 2;
    let bits =
        crate::Bitstream::from_fn(out_len, |i| sorted.bits().get(start + i));
    ThermStream::new(bits, x.scale())
}

/// General tap resampler: re-expresses a sorted thermometer stream with
/// `out_len` output taps, each wired to one input bit position.
///
/// The output scale is `α·L/L'` (value preserved up to tap quantization).
/// Unlike [`rescale`], `out_len` need not divide the input length, and may
/// even exceed it (taps then duplicate input bits — replication by wiring).
/// This is the fully general form of the re-scaling block of \[15\].
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `out_len` is zero or odd, or the
/// input is empty.
pub fn resample(x: &ThermStream, out_len: usize, mode: RescaleMode) -> Result<ThermStream, ScError> {
    if out_len == 0 || !out_len.is_multiple_of(2) {
        return Err(ScError::InvalidParam {
            name: "out_len",
            reason: format!("output length must be even and non-zero, got {out_len}"),
        });
    }
    let l = x.len();
    if l == 0 {
        return Err(ScError::InvalidParam {
            name: "x",
            reason: "cannot resample an empty stream".into(),
        });
    }
    let sorted = x.normalized();
    let bits =
        crate::Bitstream::from_fn(out_len, |j| sorted.bits().get(resample_tap(j, l, out_len, mode)));
    ThermStream::new(bits, x.scale() * l as f64 / out_len as f64)
}

/// Input-bit position tapped by output bit `j` of a [`resample`] block with
/// `l` input bits and `out_len` output taps.
///
/// Exposed so level-domain twins of the hardware (e.g. the iterative-softmax
/// simulator in `sc-nonlinear`) stay bit-identical to the resampler without
/// duplicating the tap schedule.
///
/// # Panics
///
/// Panics if `l` or `out_len` is zero.
pub fn resample_tap(j: usize, l: usize, out_len: usize, mode: RescaleMode) -> usize {
    assert!(l > 0 && out_len > 0, "resample_tap requires non-empty streams");
    // Tap position inside group j of out_len equal real-width groups.
    match mode {
        RescaleMode::Floor => ((j + 1) * l - 1) / out_len,
        RescaleMode::Round => ((2 * j + 1) * l) / (2 * out_len),
        RescaleMode::Ceil => (j * l).div_ceil(out_len),
    }
    .min(l - 1)
}

/// Aligns a stream onto an exact `target` scale with the nearest feasible
/// tap count, absorbing any residual into a *gain error*.
///
/// The feasible output scales of a resampler are `α·L/L'` for even `L'`;
/// when `α·L/target` is not an even integer the nearest one is used and the
/// output is re-labelled with `target`, distorting values by the ratio
/// `(α·L/L')/target` (at most ~`1/L'` relative). This mirrors what the
/// hardware does when the scale grids of two datapath legs do not divide
/// evenly (e.g. `k = 3` against power-of-two `α`s) and is part of the
/// design-space error the DSE explores.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `target` is not finite and positive
/// or the input is empty.
pub fn align_scale(
    x: &ThermStream,
    target: f64,
    mode: RescaleMode,
) -> Result<ThermStream, ScError> {
    if !(target.is_finite() && target > 0.0) {
        return Err(ScError::InvalidParam {
            name: "target",
            reason: format!("target scale must be finite and positive, got {target}"),
        });
    }
    let ideal = x.scale() * x.len() as f64 / target;
    let mut out_len = (ideal / 2.0).round() as usize * 2;
    if out_len < 2 {
        out_len = 2;
    }
    let resampled = resample(x, out_len, mode)?;
    resampled.with_scale(target)
}

/// Aligns a stream to a target `(len, scale)` pair, sub-sampling when the
/// stream is longer and erroring when alignment is impossible.
///
/// The target scale must equal `x.scale() · (x.len() / len)` (re-scaling
/// cannot change the represented range, only the resolution).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] when `len` does not divide `x.len()` or
/// the implied scale disagrees with `scale` by more than 1 part in 10⁶.
pub fn align_to(
    x: &ThermStream,
    len: usize,
    scale: f64,
    mode: RescaleMode,
) -> Result<ThermStream, ScError> {
    if len == 0 || !x.len().is_multiple_of(len) {
        return Err(ScError::InvalidParam {
            name: "len",
            reason: format!("target BSL {len} does not divide source BSL {}", x.len()),
        });
    }
    let s = x.len() / len;
    let implied = x.scale() * s as f64;
    if (implied - scale).abs() > 1e-6 * scale.abs().max(1.0) {
        return Err(ScError::InvalidParam {
            name: "scale",
            reason: format!("target scale {scale} incompatible with implied scale {implied}"),
        });
    }
    rescale(x, s, mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_mode_floors_division() {
        // ones = L/2 + q; floor mode keeps count' = floor(ones / s).
        for q in -8..=8i64 {
            let x = ThermStream::from_level(q, 16, 1.0).unwrap();
            let y = rescale(&x, 4, RescaleMode::Floor).unwrap();
            let ones = (q + 8) as usize;
            let expect = (ones / 4) as i64 - 2;
            assert_eq!(y.level(), expect, "q={q}");
        }
    }

    #[test]
    fn ceil_mode_ceils_division() {
        for q in -8..=8i64 {
            let x = ThermStream::from_level(q, 16, 1.0).unwrap();
            let y = rescale(&x, 4, RescaleMode::Ceil).unwrap();
            let ones = (q + 8) as usize;
            let expect = (ones as f64 / 4.0).ceil() as i64 - 2;
            assert_eq!(y.level(), expect, "q={q}");
        }
    }

    #[test]
    fn value_preserved_within_one_output_lsb() {
        for mode in [RescaleMode::Floor, RescaleMode::Round, RescaleMode::Ceil] {
            for q in -32..=32i64 {
                let x = ThermStream::from_level(q, 64, 0.125).unwrap();
                let y = rescale(&x, 8, mode).unwrap();
                assert!(
                    (y.value() - x.value()).abs() <= y.scale() + 1e-12,
                    "mode {mode:?} q {q}: {} vs {}",
                    y.value(),
                    x.value()
                );
            }
        }
    }

    #[test]
    fn round_mode_has_smallest_worst_case_error() {
        let worst = |mode: RescaleMode| -> f64 {
            (-32..=32i64)
                .map(|q| {
                    let x = ThermStream::from_level(q, 64, 1.0).unwrap();
                    let y = rescale(&x, 8, mode).unwrap();
                    (y.value() - x.value()).abs()
                })
                .fold(0.0, f64::max)
        };
        assert!(worst(RescaleMode::Round) <= worst(RescaleMode::Floor));
        assert!(worst(RescaleMode::Round) <= worst(RescaleMode::Ceil));
    }

    #[test]
    fn s_equal_one_is_identity() {
        let x = ThermStream::from_level(3, 8, 0.5).unwrap();
        let y = rescale(&x, 1, RescaleMode::Round).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn invalid_rates_rejected() {
        let x = ThermStream::from_level(3, 8, 0.5).unwrap();
        assert!(rescale(&x, 0, RescaleMode::Round).is_err());
        assert!(rescale(&x, 3, RescaleMode::Round).is_err()); // 3 ∤ 8
        assert!(rescale(&x, 8, RescaleMode::Round).is_err()); // odd output (1)
    }

    #[test]
    fn align_to_checks_scale_compat() {
        let x = ThermStream::from_level(6, 16, 0.25).unwrap();
        assert!(align_to(&x, 4, 1.0, RescaleMode::Round).is_ok());
        assert!(align_to(&x, 4, 2.0, RescaleMode::Round).is_err());
        assert!(align_to(&x, 5, 0.8, RescaleMode::Round).is_err());
    }

    #[test]
    fn rational_rescale_preserves_value_within_lsb() {
        // ×(4/3): scale 1.0 → 4/3, length 16 → 12.
        for q in -8..=8i64 {
            let x = ThermStream::from_level(q, 16, 1.0).unwrap();
            let y = rescale_rational(&x, 3, 4, RescaleMode::Round).unwrap();
            assert!((y.scale() - 4.0 / 3.0).abs() < 1e-12);
            assert_eq!(y.len(), 12);
            assert!((y.value() - x.value()).abs() <= y.scale() + 1e-12, "q={q}");
        }
    }

    #[test]
    fn rational_rescale_validation() {
        let x = ThermStream::from_level(0, 16, 1.0).unwrap();
        assert!(rescale_rational(&x, 0, 2, RescaleMode::Round).is_err());
        assert!(rescale_rational(&x, 2, 0, RescaleMode::Round).is_err());
        // 16·3 = 48, v = 5 does not divide 48.
        assert!(rescale_rational(&x, 3, 5, RescaleMode::Round).is_err());
    }

    #[test]
    fn rational_rescale_identity() {
        let x = ThermStream::from_level(5, 16, 0.5).unwrap();
        let y = rescale_rational(&x, 1, 1, RescaleMode::Round).unwrap();
        assert_eq!(y.level(), 5);
        assert_eq!(y.len(), 16);
    }

    #[test]
    fn truncate_center_is_exact_saturation() {
        for q in -8..=8i64 {
            let x = ThermStream::from_level(q, 16, 0.5).unwrap();
            let y = truncate_center(&x, 4).unwrap();
            assert_eq!(y.level(), q.clamp(-2, 2), "q={q}");
            assert!((y.scale() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn truncate_center_validation() {
        let x = ThermStream::from_level(0, 16, 1.0).unwrap();
        assert!(truncate_center(&x, 0).is_err());
        assert!(truncate_center(&x, 5).is_err());
        assert!(truncate_center(&x, 18).is_err());
        let odd_gap = ThermStream::from_level(0, 14, 1.0).unwrap();
        // 14 − 4 = 10, even — fine; 14 − 12 = 2, even — fine. Same parity
        // always holds for even/even, so this must succeed.
        assert!(truncate_center(&odd_gap, 12).is_ok());
    }

    #[test]
    fn unsorted_inputs_are_normalized_first() {
        let bits = crate::Bitstream::from_str_binary("0101101001011010").unwrap();
        let x = ThermStream::new(bits, 1.0).unwrap();
        let y = rescale(&x, 4, RescaleMode::Round).unwrap();
        // 8 ones of 16 → level 0; subsampled level should be 0 too.
        assert_eq!(y.level(), 0);
    }
}
