//! Error type shared by all fallible `sc-core` APIs.

use std::error::Error;
use std::fmt;

/// Errors produced by stochastic-computing primitives.
///
/// ```
/// use sc_core::encoding::Thermometer;
/// use sc_core::ScError;
///
/// let err = Thermometer::new(0, 1.0).unwrap_err();
/// assert!(matches!(err, ScError::InvalidParam { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ScError {
    /// Two bitstreams that must have equal length do not.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A value does not fit the representable range of an encoding.
    ValueOutOfRange {
        /// The offending value.
        value: f64,
        /// Lower bound of the representable range.
        min: f64,
        /// Upper bound of the representable range.
        max: f64,
    },
    /// A constructor or operation parameter is invalid.
    InvalidParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A persisted artifact is malformed: bad magic, unsupported version,
    /// CRC mismatch, truncation, or an out-of-bounds section.
    CorruptArtifact {
        /// What failed to validate.
        reason: String,
    },
    /// A filesystem operation on an artifact path failed.
    Io {
        /// The path the operation was attempted on.
        path: String,
        /// The underlying OS error, rendered to text (kept as a string so
        /// the error type stays `Clone + PartialEq`).
        reason: String,
        /// `true` when the failure is specifically that the path does not
        /// exist (`ErrorKind::NotFound`). A serving front-end maps this to
        /// `404` while every other i/o failure stays a `500`.
        not_found: bool,
    },
    /// A registry lookup named a model that was never registered.
    UnknownModel {
        /// The model id the caller asked for.
        model: String,
    },
    /// Warming a model would exceed the registry memory budget even after
    /// evicting every idle model. The request was refused; an HTTP
    /// front-end maps this to `503` + `Retry-After`.
    BudgetExceeded {
        /// Resident bytes the registry would need to admit the model.
        needed: usize,
        /// The configured budget, in bytes.
        budget: usize,
    },
    /// A bounded admission queue is at capacity and the caller asked not
    /// to block (`try_submit`). The request was **not** enqueued; retry
    /// later or shed the load (an HTTP front-end maps this to `503`).
    QueueFull {
        /// The queue's configured capacity, in requests.
        depth: usize,
    },
    /// The serving pool has no live workers: every worker exited (pool
    /// shut down) or panicked. Submissions can never complete.
    PoolGone,
}

impl fmt::Display for ScError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScError::LengthMismatch { left, right } => {
                write!(f, "bitstream length mismatch: {left} vs {right}")
            }
            ScError::ValueOutOfRange { value, min, max } => {
                write!(f, "value {value} outside representable range [{min}, {max}]")
            }
            ScError::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ScError::CorruptArtifact { reason } => {
                write!(f, "corrupt artifact: {reason}")
            }
            ScError::Io { path, reason, not_found } => {
                if *not_found {
                    write!(f, "no such file `{path}`: {reason}")
                } else {
                    write!(f, "i/o failure on `{path}`: {reason}")
                }
            }
            ScError::UnknownModel { model } => {
                write!(f, "unknown model `{model}`: not registered")
            }
            ScError::BudgetExceeded { needed, budget } => {
                write!(
                    f,
                    "memory budget exceeded: warming needs {needed} resident bytes \
                     but the budget is {budget}; retry later"
                )
            }
            ScError::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} requests waiting); retry later")
            }
            ScError::PoolGone => {
                write!(f, "serve pool has no live workers (worker thread panicked or pool shut down)")
            }
        }
    }
}

impl Error for ScError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            ScError::LengthMismatch { left: 4, right: 8 },
            ScError::ValueOutOfRange { value: 2.0, min: -1.0, max: 1.0 },
            ScError::InvalidParam { name: "len", reason: "must be even".into() },
            ScError::CorruptArtifact { reason: "crc mismatch".into() },
            ScError::Io {
                path: "model.ckpt".into(),
                reason: "permission denied".into(),
                not_found: false,
            },
            ScError::Io {
                path: "missing.sceng".into(),
                reason: "no such file or directory".into(),
                not_found: true,
            },
            ScError::QueueFull { depth: 8 },
            ScError::PoolGone,
            ScError::UnknownModel { model: "alpha".into() },
            ScError::BudgetExceeded { needed: 4096, budget: 1024 },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn not_found_io_and_plain_io_render_differently() {
        let missing = ScError::Io {
            path: "m.sceng".into(),
            reason: "gone".into(),
            not_found: true,
        };
        let denied = ScError::Io {
            path: "m.sceng".into(),
            reason: "denied".into(),
            not_found: false,
        };
        assert!(missing.to_string().starts_with("no such file"));
        assert!(denied.to_string().starts_with("i/o failure"));
        assert_ne!(missing, denied);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScError>();
    }
}
