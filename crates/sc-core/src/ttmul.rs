//! Truth-table multiplication of thermometer streams (paper §II-A, \[10\]).
//!
//! For the short BSLs ASCEND quantizes to (2-bit weights/activations), a
//! thermometer multiplier is a lookup table over the two input levels. The
//! product of levels `q_a ∈ [−L_a/2, L_a/2]` and `q_b ∈ [−L_b/2, L_b/2]`
//! lies in `[−L_aL_b/4, L_aL_b/4]`, so an output BSL of `L_aL_b/2` is exact.

use crate::therm::ThermStream;
use crate::ScError;

/// Exact output BSL for multiplying streams of lengths `la` and `lb`.
pub fn exact_output_len(la: usize, lb: usize) -> usize {
    (la * lb) / 2
}

/// Multiplies two thermometer streams exactly.
///
/// Output: level `q_a·q_b`, scale `α_a·α_b`, length [`exact_output_len`],
/// in sorted normal form (a hardware truth table emits a fixed pattern per
/// input level pair; sorted form is the canonical choice).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if either input has zero length.
///
/// ```
/// use sc_core::{ttmul, ThermStream};
///
/// let a = ThermStream::from_level(-1, 2, 0.7)?;  // ternary −0.7
/// let b = ThermStream::from_level(1, 2, 0.5)?;   // ternary +0.5
/// let p = ttmul::mul(&a, &b)?;
/// assert_eq!(p.level(), -1);
/// assert!((p.value() + 0.35).abs() < 1e-12);
/// assert_eq!(p.len(), 2);
/// # Ok::<(), sc_core::ScError>(())
/// ```
pub fn mul(a: &ThermStream, b: &ThermStream) -> Result<ThermStream, ScError> {
    if a.is_empty() || b.is_empty() {
        return Err(ScError::InvalidParam {
            name: "stream",
            reason: "cannot multiply zero-length thermometer streams".into(),
        });
    }
    let out_len = exact_output_len(a.len(), b.len());
    ThermStream::from_level(a.level() * b.level(), out_len, a.scale() * b.scale())
}

/// Multiplies into a caller-chosen output BSL, saturating the level to
/// `[−out_len/2, out_len/2]`.
///
/// This models a truth table with a narrower output than the exact product
/// requires — the form used inside the iterative softmax datapath, where
/// `B_y` bounds every operand.
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `out_len` is zero or odd, or if
/// either input has zero length.
pub fn mul_saturating(
    a: &ThermStream,
    b: &ThermStream,
    out_len: usize,
) -> Result<ThermStream, ScError> {
    if a.is_empty() || b.is_empty() {
        return Err(ScError::InvalidParam {
            name: "stream",
            reason: "cannot multiply zero-length thermometer streams".into(),
        });
    }
    if out_len == 0 || !out_len.is_multiple_of(2) {
        return Err(ScError::InvalidParam {
            name: "out_len",
            reason: format!("output length must be even and non-zero, got {out_len}"),
        });
    }
    let half = (out_len / 2) as i64;
    let q = (a.level() * b.level()).clamp(-half, half);
    ThermStream::from_level(q, out_len, a.scale() * b.scale())
}

/// Multiplies a stream by a small non-negative integer constant by repeated
/// BSN addition semantics (level scales, bit-length scales).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `k == 0`.
pub fn mul_const(a: &ThermStream, k: u32) -> Result<ThermStream, ScError> {
    if k == 0 {
        return Err(ScError::InvalidParam {
            name: "k",
            reason: "constant must be non-zero (encode zero as an empty sum instead)".into(),
        });
    }
    ThermStream::from_level(a.level() * k as i64, a.len() * k as usize, a.scale())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_ternary_times_ternary() {
        // The 2b × 2b truth table: all nine level pairs.
        for qa in -1..=1i64 {
            for qb in -1..=1i64 {
                let a = ThermStream::from_level(qa, 2, 0.5).unwrap();
                let b = ThermStream::from_level(qb, 2, 2.0).unwrap();
                let p = mul(&a, &b).unwrap();
                assert_eq!(p.level(), qa * qb);
                assert!((p.value() - (qa as f64 * 0.5) * (qb as f64 * 2.0)).abs() < 1e-12);
                assert_eq!(p.len(), 2);
            }
        }
    }

    #[test]
    fn exhaustive_ternary_times_16b() {
        // The 2b × 16b table used for residual fusion (W2-A2-R16).
        for qa in -1..=1i64 {
            for qb in -8..=8i64 {
                let a = ThermStream::from_level(qa, 2, 1.0).unwrap();
                let b = ThermStream::from_level(qb, 16, 0.125).unwrap();
                let p = mul(&a, &b).unwrap();
                assert_eq!(p.level(), qa * qb);
                assert_eq!(p.len(), 16);
            }
        }
    }

    #[test]
    fn saturating_mul_clamps() {
        let a = ThermStream::from_level(4, 8, 1.0).unwrap();
        let b = ThermStream::from_level(4, 8, 1.0).unwrap();
        let p = mul_saturating(&a, &b, 8).unwrap();
        assert_eq!(p.level(), 4); // 16 clamped to 8/2
        assert!(mul_saturating(&a, &b, 7).is_err());
        assert!(mul_saturating(&a, &b, 0).is_err());
    }

    #[test]
    fn mul_const_scales_level_and_length() {
        let a = ThermStream::from_level(-2, 8, 0.25).unwrap();
        let p = mul_const(&a, 3).unwrap();
        assert_eq!(p.level(), -6);
        assert_eq!(p.len(), 24);
        assert!((p.value() + 1.5).abs() < 1e-12);
        assert!(mul_const(&a, 0).is_err());
    }

    #[test]
    fn rejects_empty_operands() {
        let a = ThermStream::from_level(0, 2, 1.0).unwrap();
        let empty = ThermStream::new(crate::Bitstream::zeros(0), 1.0).unwrap();
        assert!(mul(&a, &empty).is_err());
        assert!(mul(&empty, &a).is_err());
    }
}
