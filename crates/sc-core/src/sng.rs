//! Stochastic number generators (SNGs).
//!
//! An SNG turns a target probability into a bitstream whose fraction of 1s
//! approaches that probability. Hardware SNGs pair a pseudo-random source
//! (classically an LFSR) with a comparator; low-discrepancy sources such as
//! the van der Corput sequence trade randomness for faster convergence.

use crate::{Bitstream, ScError};

/// A source of pseudo-random fractions in `[0, 1)` used by comparator SNGs.
///
/// The trait is object-safe so heterogeneous generator banks (as needed by
/// Bernstein-polynomial blocks, which require many independent SNGs) can be
/// stored together.
pub trait RandomSource {
    /// Produces the next fraction in `[0, 1)`.
    fn next_fraction(&mut self) -> f64;

    /// Generates a bitstream of `len` bits with 1-probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `p` is outside `[0, 1]`.
    fn bitstream(&mut self, p: f64, len: usize) -> Result<Bitstream, ScError>
    where
        Self: Sized,
    {
        if !(0.0..=1.0).contains(&p) {
            return Err(ScError::ValueOutOfRange { value: p, min: 0.0, max: 1.0 });
        }
        Ok(Bitstream::from_fn(len, |_| self.next_fraction() < p))
    }
}

/// Fibonacci linear-feedback shift register with maximal-length taps.
///
/// The standard hardware pseudo-random source for SC. Supports widths
/// 3..=32; the tap sets give maximal period `2^width − 1`.
///
/// ```
/// use sc_core::sng::{Lfsr, RandomSource};
///
/// let mut lfsr = Lfsr::new(8, 1)?;
/// let s = lfsr.bitstream(0.5, 256)?;
/// // An 8-bit maximal LFSR is almost perfectly balanced over a full period.
/// let ones = s.count_ones() as f64;
/// assert!((ones / 256.0 - 0.5).abs() < 0.05);
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    width: u32,
    taps: u32,
}

/// Maximal-length tap masks for Fibonacci LFSRs of width 3..=32.
///
/// Index `w - 3` holds the tap mask for width `w`; bit `i` of the mask means
/// "bit position i+1 (1-indexed from the LSB end) feeds the XOR".
const MAX_LEN_TAPS: [u32; 30] = [
    0b110,                                // 3: taps 3,2
    0b1100,                               // 4: taps 4,3
    0b10100,                              // 5: taps 5,3
    0b110000,                             // 6: taps 6,5
    0b1100000,                            // 7: taps 7,6
    0b10111000,                           // 8: taps 8,6,5,4
    0b100010000,                          // 9: taps 9,5
    0b1001000000,                         // 10: taps 10,7
    0b10100000000,                        // 11: taps 11,9
    0b111000001000,                       // 12: taps 12,11,10,4
    0b1110010000000,                      // 13: taps 13,12,11,8
    0b11100000000010,                     // 14: taps 14,13,12,2
    0b110000000000000,                    // 15: taps 15,14
    0b1101000000001000,                   // 16: taps 16,15,13,4
    0b10010000000000000,                  // 17: taps 17,14
    0b100000010000000000,                 // 18: taps 18,11
    0b1110010000000000000,                // 19: taps 19,18,17,14
    0b10010000000000000000,               // 20: taps 20,17
    0b101000000000000000000,              // 21: taps 21,19
    0b1100000000000000000000,             // 22: taps 22,21
    0b10000100000000000000000,            // 23: taps 23,18
    0b111000010000000000000000,           // 24: taps 24,23,22,17
    0b1001000000000000000000000,          // 25: taps 25,22
    0b11100010000000000000000000,         // 26: taps 26,25,24,20
    0b111001000000000000000000000,        // 27: taps 27,26,25,22
    0b1001000000000000000000000000,       // 28: taps 28,25
    0b10100000000000000000000000000,      // 29: taps 29,27
    0b1110000000000000000000001000000,    // 30: taps 30,29,28,7
    0b1001000000000000000000000000000,    // 31: taps 31,28
    0b11100000000000000000001000000000,   // 32: taps 32,31,30,10
];

impl Lfsr {
    /// Creates an LFSR of the given `width` (3..=32) seeded with `seed`.
    ///
    /// The seed is masked to the register width; a zero seed (the lock-up
    /// state) is replaced by 1.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if `width` is outside 3..=32.
    pub fn new(width: u32, seed: u32) -> Result<Self, ScError> {
        if !(3..=32).contains(&width) {
            return Err(ScError::InvalidParam {
                name: "width",
                reason: format!("LFSR width must be in 3..=32, got {width}"),
            });
        }
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Ok(Lfsr { state, width, taps: MAX_LEN_TAPS[(width - 3) as usize] })
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances one clock and returns the new register contents.
    pub fn step(&mut self) -> u32 {
        let fb = (self.state & self.taps).count_ones() & 1;
        let mask = if self.width == 32 { u32::MAX } else { (1u32 << self.width) - 1 };
        self.state = ((self.state << 1) | fb) & mask;
        self.state
    }

    /// Full period of the register (`2^width − 1`).
    pub fn period(&self) -> u64 {
        (1u64 << self.width) - 1
    }
}

impl RandomSource for Lfsr {
    fn next_fraction(&mut self) -> f64 {
        let v = self.step();
        // States are in 1..=2^w − 1; map to [0, 1).
        (v - 1) as f64 / self.period() as f64
    }
}

/// Van der Corput low-discrepancy sequence (bit-reversed binary counter).
///
/// In SC hardware this is a plain counter whose output wires are reversed —
/// far cheaper than an LFSR per stream, and with O(1/L) convergence instead
/// of O(1/√L). Used by the deterministic baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VanDerCorput {
    counter: u64,
    bits: u32,
}

impl VanDerCorput {
    /// Creates a generator with `bits` of resolution (1..=63).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if `bits` is outside 1..=63.
    pub fn new(bits: u32) -> Result<Self, ScError> {
        if !(1..=63).contains(&bits) {
            return Err(ScError::InvalidParam {
                name: "bits",
                reason: format!("resolution must be in 1..=63, got {bits}"),
            });
        }
        Ok(VanDerCorput { counter: 0, bits })
    }
}

impl RandomSource for VanDerCorput {
    fn next_fraction(&mut self) -> f64 {
        let n = self.counter;
        self.counter = (self.counter + 1) & ((1 << self.bits) - 1);
        let rev = n.reverse_bits() >> (64 - self.bits);
        rev as f64 / (1u64 << self.bits) as f64
    }
}

/// A comparator-based SNG: pseudo-random source + threshold comparator.
///
/// This mirrors the classic hardware structure: the source drives one
/// comparator input, the binary-coded probability the other.
#[derive(Debug, Clone)]
pub struct ComparatorSng<R> {
    source: R,
}

impl<R: RandomSource> ComparatorSng<R> {
    /// Wraps a random source.
    pub fn new(source: R) -> Self {
        ComparatorSng { source }
    }

    /// Generates a unipolar bitstream for probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `p ∉ [0, 1]`.
    pub fn unipolar(&mut self, p: f64, len: usize) -> Result<Bitstream, ScError> {
        self.source.bitstream(p, len)
    }

    /// Generates a bipolar bitstream for value `v ∈ [−1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `v ∉ [−1, 1]`.
    pub fn bipolar(&mut self, v: f64, len: usize) -> Result<Bitstream, ScError> {
        if !(-1.0..=1.0).contains(&v) {
            return Err(ScError::ValueOutOfRange { value: v, min: -1.0, max: 1.0 });
        }
        self.source.bitstream((v + 1.0) / 2.0, len)
    }

    /// Consumes the SNG and returns the underlying source.
    pub fn into_inner(self) -> R {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_rejects_bad_width() {
        assert!(Lfsr::new(2, 1).is_err());
        assert!(Lfsr::new(33, 1).is_err());
        assert!(Lfsr::new(3, 1).is_ok());
    }

    #[test]
    fn lfsr_zero_seed_is_fixed() {
        let l = Lfsr::new(8, 0).unwrap();
        assert_ne!(l.state(), 0);
    }

    /// Every supported width must actually be maximal-length: the register
    /// must visit all 2^w − 1 non-zero states before repeating.
    #[test]
    fn lfsr_maximal_period_small_widths() {
        for width in 3..=16 {
            let mut l = Lfsr::new(width, 1).unwrap();
            let start = l.state();
            let mut count = 0u64;
            loop {
                l.step();
                count += 1;
                if l.state() == start {
                    break;
                }
                assert!(count <= l.period(), "width {width} exceeded period without cycling");
            }
            assert_eq!(count, l.period(), "width {width} is not maximal-length");
        }
    }

    /// Spot-check the wide registers too (walk a sample, ensure no zero state).
    #[test]
    fn lfsr_wide_widths_never_hit_zero() {
        for width in [17, 20, 24, 28, 32] {
            let mut l = Lfsr::new(width, 12345).unwrap();
            for _ in 0..10_000 {
                assert_ne!(l.step(), 0, "width {width} reached the lock-up state");
            }
        }
    }

    #[test]
    fn lfsr_bitstream_probability_converges() {
        let mut l = Lfsr::new(10, 7).unwrap();
        for &p in &[0.1, 0.3, 0.5, 0.9] {
            let s = l.bitstream(p, 1023).unwrap();
            assert!(
                (s.frac_ones() - p).abs() < 0.02,
                "p={p}, got {}",
                s.frac_ones()
            );
        }
    }

    #[test]
    fn bitstream_rejects_bad_probability() {
        let mut l = Lfsr::new(8, 1).unwrap();
        assert!(l.bitstream(1.5, 16).is_err());
        assert!(l.bitstream(-0.1, 16).is_err());
    }

    #[test]
    fn vdc_low_discrepancy_beats_lfsr_short_streams() {
        // The whole point of low-discrepancy SNGs: for short streams the
        // empirical fraction is closer to p than a typical LFSR draw.
        let p = 0.3;
        let mut vdc = VanDerCorput::new(16).unwrap();
        let s = vdc.bitstream(p, 64).unwrap();
        assert!((s.frac_ones() - p).abs() <= 1.0 / 64.0 + 1e-9);
    }

    #[test]
    fn vdc_first_fractions_are_bit_reversed_counter() {
        let mut vdc = VanDerCorput::new(4).unwrap();
        let got: Vec<f64> = (0..4).map(|_| vdc.next_fraction()).collect();
        assert_eq!(got, vec![0.0, 0.5, 0.25, 0.75]);
    }

    #[test]
    fn comparator_sng_bipolar_range_check() {
        let mut sng = ComparatorSng::new(Lfsr::new(8, 3).unwrap());
        assert!(sng.bipolar(1.2, 8).is_err());
        let s = sng.bipolar(0.0, 255).unwrap();
        assert!((s.frac_ones() - 0.5).abs() < 0.06);
    }
}
