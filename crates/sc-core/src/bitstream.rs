//! Packed bitstreams: the raw carrier of every SC value.
//!
//! A [`Bitstream`] stores bits packed into `u64` words. All SC encodings in
//! this crate ([`crate::encoding`]) are views interpreting a `Bitstream`.

use std::fmt;

use crate::ScError;

const WORD_BITS: usize = 64;

/// A fixed-length sequence of bits, packed 64 per word.
///
/// Bit `0` is the head of the stream (for thermometer codes, the end where
/// the 1s live). Out-of-range trailing bits in the last word are kept zero as
/// an internal invariant, so [`Bitstream::count_ones`] is a straight popcount.
///
/// ```
/// use sc_core::Bitstream;
///
/// let s = Bitstream::from_bits([true, true, false, true]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.count_ones(), 3);
/// assert!(s.get(0) && !s.get(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an all-zero stream of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitstream { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates an all-one stream of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut s = Self::zeros(len);
        for i in 0..s.words.len() {
            s.words[i] = u64::MAX;
        }
        s.mask_tail();
        s
    }

    /// Creates a stream from an iterator of bits; the first item is bit 0.
    ///
    /// Streams straight into packed words — no intermediate `Vec<bool>`, no
    /// per-bit bounds checks. Tail bits of the last word stay zero, so the
    /// masked-tail invariant holds by construction.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits = bits.into_iter();
        let mut words = Vec::with_capacity(bits.size_hint().0.div_ceil(WORD_BITS));
        let mut current = 0u64;
        let mut fill = 0usize;
        let mut len = 0usize;
        for b in bits {
            if b {
                current |= 1u64 << fill;
            }
            fill += 1;
            len += 1;
            if fill == WORD_BITS {
                words.push(current);
                current = 0;
                fill = 0;
            }
        }
        if fill > 0 {
            words.push(current);
        }
        Bitstream { words, len }
    }

    /// Creates a stream of `len` bits where bit `i` is `f(i)`.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut s = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                s.set(i, true);
            }
        }
        s
    }

    /// Parses a stream from a string of `'0'`/`'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if any character is not `0` or `1`.
    pub fn from_str_binary(text: &str) -> Result<Self, ScError> {
        let mut bits = Vec::with_capacity(text.len());
        for c in text.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                other => {
                    return Err(ScError::InvalidParam {
                        name: "text",
                        reason: format!("unexpected character {other:?}, expected 0 or 1"),
                    })
                }
            }
        }
        Ok(Self::from_bits(bits))
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for length {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range for length {}", self.len);
        let w = i / WORD_BITS;
        let b = i % WORD_BITS;
        if v {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Flips bit `i`, returning its new value. Used by fault-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of 1-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of 1-bits, i.e. the unipolar value of the stream.
    ///
    /// Returns `0.0` for an empty stream.
    pub fn frac_ones(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Iterates over the bits, head first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { stream: self, idx: 0, back: self.len }
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_vec(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Concatenates `self` and `other` into a new stream (`self` first).
    pub fn concat(&self, other: &Bitstream) -> Bitstream {
        let mut bits = Vec::with_capacity(self.len + other.len);
        bits.extend(self.iter());
        bits.extend(other.iter());
        Bitstream::from_bits(bits)
    }

    /// Concatenates many streams in order.
    pub fn concat_all<'a, I: IntoIterator<Item = &'a Bitstream>>(streams: I) -> Bitstream {
        let mut bits = Vec::new();
        for s in streams {
            bits.extend(s.iter());
        }
        Bitstream::from_bits(bits)
    }

    /// Bitwise AND.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn and(&self, other: &Bitstream) -> Result<Bitstream, ScError> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn or(&self, other: &Bitstream) -> Result<Bitstream, ScError> {
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn xor(&self, other: &Bitstream) -> Result<Bitstream, ScError> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise XNOR (the bipolar SC multiplier gate).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn xnor(&self, other: &Bitstream) -> Result<Bitstream, ScError> {
        let mut out = self.zip_words(other, |a, b| !(a ^ b))?;
        out.mask_tail();
        Ok(out)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bitstream {
        let mut out = Bitstream {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Sorts the bits so all 1s come first (thermometer normal form).
    ///
    /// This is the *behavioural* equivalent of pushing the stream through a
    /// bitonic sorting network; [`crate::bsn`] provides the structural model.
    pub fn sort_ones_first(&self) -> Bitstream {
        let ones = self.count_ones();
        Bitstream::from_fn(self.len, |i| i < ones)
    }

    /// True if all 1s precede all 0s.
    pub fn is_sorted_ones_first(&self) -> bool {
        let ones = self.count_ones();
        (0..self.len).all(|i| self.get(i) == (i < ones))
    }

    /// Keeps every `stride`-th bit starting at `phase` (`phase < stride`).
    ///
    /// This is the raw mechanism of the re-scaling blocks; see
    /// [`crate::rescale`] for the value-level semantics.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `phase >= stride`.
    pub fn subsample(&self, stride: usize, phase: usize) -> Bitstream {
        assert!(stride > 0, "stride must be positive");
        assert!(phase < stride, "phase {phase} must be < stride {stride}");
        let bits: Vec<bool> =
            (0..self.len).filter(|i| i % stride == phase).map(|i| self.get(i)).collect();
        Bitstream::from_bits(bits)
    }

    fn zip_words<F: Fn(u64, u64) -> u64>(
        &self,
        other: &Bitstream,
        f: F,
    ) -> Result<Bitstream, ScError> {
        if self.len != other.len {
            return Err(ScError::LengthMismatch { left: self.len, right: other.len });
        }
        Ok(Bitstream {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| f(*a, *b))
                .collect(),
            len: self.len,
        })
    }

    fn mask_tail(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl fmt::Debug for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitstream({self})")
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Bitstream::from_bits(iter)
    }
}

/// Iterator over the bits of a [`Bitstream`], head first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a Bitstream,
    idx: usize,
    back: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.idx < self.back {
            let b = self.stream.get(self.idx);
            self.idx += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.idx;
        (rem, Some(rem))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<bool> {
        if self.idx < self.back {
            self.back -= 1;
            Some(self.stream.get(self.back))
        } else {
            None
        }
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitstream::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = Bitstream::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!((o.frac_ones() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_flip() {
        let mut s = Bitstream::zeros(130);
        s.set(0, true);
        s.set(64, true);
        s.set(129, true);
        assert_eq!(s.count_ones(), 3);
        assert!(s.get(64));
        assert!(!s.flip(64));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitstream::zeros(4).get(4);
    }

    #[test]
    fn from_str_binary_roundtrip() {
        let s = Bitstream::from_str_binary("1101001").unwrap();
        assert_eq!(s.to_string(), "1101001");
        assert_eq!(s.count_ones(), 4);
        assert!(Bitstream::from_str_binary("10x1").is_err());
    }

    #[test]
    fn logic_ops() {
        let a = Bitstream::from_str_binary("1100").unwrap();
        let b = Bitstream::from_str_binary("1010").unwrap();
        assert_eq!(a.and(&b).unwrap().to_string(), "1000");
        assert_eq!(a.or(&b).unwrap().to_string(), "1110");
        assert_eq!(a.xor(&b).unwrap().to_string(), "0110");
        assert_eq!(a.xnor(&b).unwrap().to_string(), "1001");
        assert_eq!(a.not().to_string(), "0011");
    }

    #[test]
    fn xnor_masks_tail_bits() {
        // XNOR of equal streams is all ones; the packed tail must stay masked
        // so popcount remains exact.
        let a = Bitstream::from_bits(vec![true; 65]);
        let x = a.xnor(&a).unwrap();
        assert_eq!(x.count_ones(), 65);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = Bitstream::zeros(4);
        let b = Bitstream::zeros(5);
        assert_eq!(
            a.and(&b).unwrap_err(),
            ScError::LengthMismatch { left: 4, right: 5 }
        );
    }

    #[test]
    fn concat_preserves_order_and_count() {
        let a = Bitstream::from_str_binary("110").unwrap();
        let b = Bitstream::from_str_binary("01").unwrap();
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "11001");
        let all = Bitstream::concat_all([&a, &b, &a]);
        assert_eq!(all.len(), 8);
        assert_eq!(all.count_ones(), 5);
    }

    #[test]
    fn sort_ones_first_works() {
        let s = Bitstream::from_str_binary("010110").unwrap();
        let sorted = s.sort_ones_first();
        assert_eq!(sorted.to_string(), "111000");
        assert!(sorted.is_sorted_ones_first());
        assert!(!s.is_sorted_ones_first());
        assert_eq!(sorted.count_ones(), s.count_ones());
    }

    #[test]
    fn subsample_takes_strided_bits() {
        let s = Bitstream::from_str_binary("10110100").unwrap();
        assert_eq!(s.subsample(2, 0).to_string(), "1100");
        assert_eq!(s.subsample(2, 1).to_string(), "0110");
        assert_eq!(s.subsample(4, 3).to_string(), "10");
    }

    #[test]
    fn iterator_yields_all_bits() {
        let s = Bitstream::from_str_binary("1010").unwrap();
        let v: Vec<bool> = s.iter().collect();
        assert_eq!(v, vec![true, false, true, false]);
        assert_eq!(s.iter().len(), 4);
        let collected: Bitstream = v.into_iter().collect();
        assert_eq!(collected, s);
    }

    #[test]
    fn display_debug_nonempty() {
        let s = Bitstream::zeros(0);
        assert_eq!(format!("{s:?}"), "Bitstream()");
    }
}
