//! Bitonic sorting networks (BSNs) over bits.
//!
//! The deterministic SC pipeline adds thermometer streams by *concatenating*
//! them and re-sorting the bits so all 1s come first (paper §II-A, \[5\]).
//! For single bits a compare-and-swap (CAS) element is just an OR gate (max)
//! plus an AND gate (min), so a BSN is cheap combinational logic; its size is
//! what the [`sc-hw`](../sc_hw) cost model counts.
//!
//! [`BitonicNetwork`] builds the explicit CAS schedule (also consumed by the
//! hardware model), applies it to bitstreams, and [`add`] implements the BSN
//! adder over [`ThermStream`]s.

use crate::therm::ThermStream;
use crate::{Bitstream, ScError};

/// An explicit bitonic sorting network for `n` inputs (padded to a power of
/// two internally), sorting 1s to the front.
///
/// ```
/// use sc_core::bsn::BitonicNetwork;
/// use sc_core::Bitstream;
///
/// let net = BitonicNetwork::new(8);
/// let sorted = net.sort(&Bitstream::from_str_binary("01011010")?);
/// assert_eq!(sorted.to_string(), "11110000");
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitonicNetwork {
    n: usize,
    padded: usize,
    /// `stages[s]` is the list of CAS pairs `(i, j)` with `i < j` executed in
    /// parallel at stage `s`; the max lands on `i` (1s first).
    stages: Vec<Vec<(usize, usize)>>,
}

impl BitonicNetwork {
    /// Builds the network for `n` inputs.
    ///
    /// `n` is padded up to the next power of two; the padding wires carry
    /// constant 0s and sort to the tail, so the first `n` outputs are the
    /// sorted inputs.
    pub fn new(n: usize) -> Self {
        let padded = n.next_power_of_two().max(1);
        let mut stages = Vec::new();
        // Standard iterative bitonic sort. `k` is the size of the bitonic
        // sequences being merged, `j` the comparison distance.
        let mut k = 2;
        while k <= padded {
            let mut j = k / 2;
            while j >= 1 {
                let mut stage = Vec::new();
                for i in 0..padded {
                    let l = i ^ j;
                    if l > i {
                        // Ascending blocks become descending (1s first) by
                        // flipping the direction test.
                        if (i & k) == 0 {
                            stage.push((i, l));
                        } else {
                            stage.push((l, i));
                        }
                    }
                }
                // Normalize pairs to (min_index, max_index, direction): we
                // store (hi_target, lo_target) implicitly by order: max goes
                // to the first element of the tuple.
                stages.push(stage);
                j /= 2;
            }
            k *= 2;
        }
        BitonicNetwork { n, padded, stages }
    }

    /// Number of (unpadded) inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Number of wires after power-of-two padding.
    pub fn padded_inputs(&self) -> usize {
        self.padded
    }

    /// Total number of compare-and-swap elements.
    pub fn cas_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Circuit depth in CAS stages: `log₂(p)·(log₂(p)+1)/2` for `p` wires.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// The CAS schedule, exposed for hardware costing and for tests.
    pub fn stages(&self) -> &[Vec<(usize, usize)>] {
        &self.stages
    }

    /// Sorts a bitstream of exactly `inputs()` bits, 1s first.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.inputs()`.
    pub fn sort(&self, bits: &Bitstream) -> Bitstream {
        assert_eq!(
            bits.len(),
            self.n,
            "network sized for {} inputs, got {}",
            self.n,
            bits.len()
        );
        let mut v = vec![false; self.padded];
        for (i, b) in bits.iter().enumerate() {
            v[i] = b;
        }
        for stage in &self.stages {
            for &(hi, lo) in stage {
                // max (OR) to `hi`, min (AND) to `lo` — 1s first ordering on
                // the wire pair.
                let a = v[hi];
                let b = v[lo];
                v[hi] = a | b;
                v[lo] = a & b;
            }
        }
        Bitstream::from_bits(v.into_iter().take(self.n))
    }
}

/// Adds thermometer streams with a BSN: concatenate, then sort (paper §II-A).
///
/// All operands must share one scale `α`; the sum has level `Σ qᵢ`, length
/// `Σ Lᵢ` and the same scale, so the result is exact (no saturation).
///
/// # Errors
///
/// Returns [`ScError::InvalidParam`] if `streams` is empty or scales differ
/// by more than 1 part in 10⁹.
///
/// ```
/// use sc_core::{bsn, ThermStream};
///
/// let a = ThermStream::from_level(3, 8, 0.5)?;
/// let b = ThermStream::from_level(-1, 8, 0.5)?;
/// let sum = bsn::add(&[&a, &b])?;
/// assert_eq!(sum.level(), 2);
/// assert_eq!(sum.len(), 16);
/// assert!(sum.is_normalized());
/// # Ok::<(), sc_core::ScError>(())
/// ```
pub fn add(streams: &[&ThermStream]) -> Result<ThermStream, ScError> {
    let first = streams.first().ok_or(ScError::InvalidParam {
        name: "streams",
        reason: "at least one stream required".into(),
    })?;
    let scale = first.scale();
    for s in streams {
        if (s.scale() - scale).abs() > 1e-9 * scale.abs().max(1.0) {
            return Err(ScError::InvalidParam {
                name: "streams",
                reason: format!(
                    "scale mismatch: {} vs {} (re-scale operands first)",
                    scale,
                    s.scale()
                ),
            });
        }
    }
    let concat = Bitstream::concat_all(streams.iter().map(|s| s.bits()));
    // Behavioural sort: property-tested equal to pushing the bits through a
    // BitonicNetwork (see `add_via_network` and the property suite), but
    // O(n) instead of O(n log² n) — the DSE sweeps call this in a hot loop.
    ThermStream::new(concat.sort_ones_first(), scale)
}

/// [`add`] routed through an explicit [`BitonicNetwork`] — the structural
/// model. Used by tests and the hardware-cost calibration; produces
/// bit-identical results to [`add`].
///
/// # Errors
///
/// Same conditions as [`add`].
pub fn add_via_network(streams: &[&ThermStream]) -> Result<ThermStream, ScError> {
    let first = streams.first().ok_or(ScError::InvalidParam {
        name: "streams",
        reason: "at least one stream required".into(),
    })?;
    let scale = first.scale();
    for s in streams {
        if (s.scale() - scale).abs() > 1e-9 * scale.abs().max(1.0) {
            return Err(ScError::InvalidParam {
                name: "streams",
                reason: format!("scale mismatch: {} vs {}", scale, s.scale()),
            });
        }
    }
    let concat = Bitstream::concat_all(streams.iter().map(|s| s.bits()));
    let net = BitonicNetwork::new(concat.len());
    ThermStream::new(net.sort(&concat), scale)
}

/// Subtracts `b` from `a` (`a + (−b)` via bitwise NOT, then BSN add).
///
/// # Errors
///
/// Same conditions as [`add`].
pub fn sub(a: &ThermStream, b: &ThermStream) -> Result<ThermStream, ScError> {
    let nb = b.negate();
    add(&[a, &nb])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_all_eight_bit_patterns() {
        let net = BitonicNetwork::new(8);
        for pattern in 0u32..256 {
            let bits = Bitstream::from_fn(8, |i| (pattern >> i) & 1 == 1);
            let sorted = net.sort(&bits);
            assert!(sorted.is_sorted_ones_first(), "pattern {pattern:#010b}");
            assert_eq!(sorted.count_ones(), bits.count_ones(), "pattern {pattern:#010b}");
        }
    }

    #[test]
    fn sorts_non_power_of_two_inputs() {
        let net = BitonicNetwork::new(6);
        assert_eq!(net.padded_inputs(), 8);
        for pattern in 0u32..64 {
            let bits = Bitstream::from_fn(6, |i| (pattern >> i) & 1 == 1);
            let sorted = net.sort(&bits);
            assert!(sorted.is_sorted_ones_first());
            assert_eq!(sorted.count_ones(), bits.count_ones());
        }
    }

    #[test]
    fn structural_counts_match_theory() {
        // For p = 2^k wires: depth = k(k+1)/2 stages, CAS = p/2 per stage.
        let net = BitonicNetwork::new(16);
        assert_eq!(net.depth(), 4 * 5 / 2);
        assert_eq!(net.cas_count(), net.depth() * 16 / 2);
    }

    #[test]
    fn add_is_exact_integer_addition() {
        for qa in -2..=2i64 {
            for qb in -4..=4i64 {
                let a = ThermStream::from_level(qa, 4, 1.0).unwrap();
                let b = ThermStream::from_level(qb, 8, 1.0).unwrap();
                let sum = add(&[&a, &b]).unwrap();
                assert_eq!(sum.level(), qa + qb);
                assert_eq!(sum.len(), 12);
            }
        }
    }

    #[test]
    fn add_rejects_scale_mismatch_and_empty() {
        let a = ThermStream::from_level(1, 4, 1.0).unwrap();
        let b = ThermStream::from_level(1, 4, 0.5).unwrap();
        assert!(add(&[&a, &b]).is_err());
        assert!(add(&[]).is_err());
    }

    #[test]
    fn add_and_add_via_network_agree() {
        for qa in -2..=2i64 {
            for qb in -4..=4i64 {
                let a = ThermStream::from_level(qa, 4, 1.0).unwrap();
                let b = ThermStream::from_level(qb, 8, 1.0).unwrap();
                let fast = add(&[&a, &b]).unwrap();
                let structural = add_via_network(&[&a, &b]).unwrap();
                assert_eq!(fast.bits(), structural.bits());
            }
        }
        assert!(add_via_network(&[]).is_err());
    }

    #[test]
    fn sub_matches_level_arithmetic() {
        let a = ThermStream::from_level(3, 8, 0.5).unwrap();
        let b = ThermStream::from_level(5, 16, 0.5).unwrap();
        let d = sub(&a, &b).unwrap();
        assert_eq!(d.level(), -2);
        assert!((d.value() + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "network sized for")]
    fn sort_checks_length() {
        BitonicNetwork::new(8).sort(&Bitstream::zeros(4));
    }
}
