//! Scaled thermometer-coded values: the deterministic SC number format.
//!
//! A [`ThermStream`] is a bitstream together with a scaling factor `α`.
//! Its value is `α · q` where the *level* `q = popcount − L/2` (paper §II-A).
//! The value is invariant under bit permutation, so intermediate results may
//! be unsorted; a bitonic sorting network ([`crate::bsn`]) restores the
//! all-ones-first normal form whenever position-sensitive operations
//! (sub-sampling, selective interconnect) follow.

use std::fmt;

use crate::{Bitstream, ScError};

/// A thermometer-coded scaled value: `value = scale · (popcount − len/2)`.
///
/// ```
/// use sc_core::ThermStream;
///
/// let x = ThermStream::from_level(3, 8, 0.25)?; // q = 3, L = 8, α = 0.25
/// assert_eq!(x.level(), 3);
/// assert!((x.value() - 0.75).abs() < 1e-12);
/// assert_eq!(x.bits().to_string(), "11111110"); // 7 ones = 3 + 8/2
/// # Ok::<(), sc_core::ScError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct ThermStream {
    bits: Bitstream,
    scale: f64,
}

impl ThermStream {
    /// Wraps raw bits with a scaling factor.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if `bits` has odd length (the level
    /// offset `L/2` must be integral) or `scale` is not finite and positive.
    pub fn new(bits: Bitstream, scale: f64) -> Result<Self, ScError> {
        if !bits.len().is_multiple_of(2) {
            return Err(ScError::InvalidParam {
                name: "bits",
                reason: format!("thermometer length must be even, got {}", bits.len()),
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ScError::InvalidParam {
                name: "scale",
                reason: format!("scale must be finite and positive, got {scale}"),
            });
        }
        Ok(ThermStream { bits, scale })
    }

    /// Builds the sorted (normal-form) stream for an integer level `q`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ValueOutOfRange`] if `|q| > len/2` and
    /// [`ScError::InvalidParam`] for an odd `len` or non-positive `scale`.
    pub fn from_level(q: i64, len: usize, scale: f64) -> Result<Self, ScError> {
        if !len.is_multiple_of(2) {
            return Err(ScError::InvalidParam {
                name: "len",
                reason: format!("thermometer length must be even, got {len}"),
            });
        }
        let half = (len / 2) as i64;
        if q < -half || q > half {
            return Err(ScError::ValueOutOfRange {
                value: q as f64,
                min: -half as f64,
                max: half as f64,
            });
        }
        let ones = (q + half) as usize;
        Self::new(Bitstream::from_fn(len, |i| i < ones), scale)
    }

    /// Encodes a real `x`, rounding to the nearest representable level and
    /// clamping to `[−scale·len/2, scale·len/2]`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is odd or `scale` is not finite and positive; use
    /// [`ThermStream::from_level`] for fallible construction.
    pub fn encode_clamped(x: f64, len: usize, scale: f64) -> Self {
        assert!(len.is_multiple_of(2), "thermometer length must be even");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let half = (len / 2) as i64;
        let q = (x / scale).round().clamp(-(half as f64), half as f64) as i64;
        // ascend-lint: allow(no-panic-in-hot-path) -- q was just clamped into [-len/2, len/2] and len/scale were asserted above, so from_level cannot reject
        Self::from_level(q, len, scale).expect("clamped level is always in range")
    }

    /// The integer level `q = popcount − len/2`.
    pub fn level(&self) -> i64 {
        self.bits.count_ones() as i64 - (self.bits.len() / 2) as i64
    }

    /// The represented value `scale · level`.
    pub fn value(&self) -> f64 {
        self.scale * self.level() as f64
    }

    /// The scaling factor `α`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Bitstream length `L` (the BSL).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Largest representable magnitude, `scale · len/2`.
    pub fn max_value(&self) -> f64 {
        self.scale * (self.bits.len() / 2) as f64
    }

    /// Borrows the raw bits.
    pub fn bits(&self) -> &Bitstream {
        &self.bits
    }

    /// Consumes the stream and returns the raw bits.
    pub fn into_bits(self) -> Bitstream {
        self.bits
    }

    /// Returns the stream in sorted (ones-first) normal form.
    ///
    /// Behavioural model of a pass through a bitonic sorting network.
    pub fn normalized(&self) -> ThermStream {
        ThermStream { bits: self.bits.sort_ones_first(), scale: self.scale }
    }

    /// True if the bits are in ones-first normal form.
    pub fn is_normalized(&self) -> bool {
        self.bits.is_sorted_ones_first()
    }

    /// Negation: bitwise NOT flips the level sign (`q → −q`).
    ///
    /// The result is *reversed-form* (ones at the tail) when the input was
    /// normal-form; value semantics are unaffected.
    pub fn negate(&self) -> ThermStream {
        ThermStream { bits: self.bits.not(), scale: self.scale }
    }

    /// Re-interprets the same bits under a new scale (hardware-free rescale,
    /// e.g. the `÷k` of the iterative softmax, which only edits `α`).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidParam`] if `scale` is not finite and positive.
    pub fn with_scale(&self, scale: f64) -> Result<ThermStream, ScError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ScError::InvalidParam {
                name: "scale",
                reason: format!("scale must be finite and positive, got {scale}"),
            });
        }
        Ok(ThermStream { bits: self.bits.clone(), scale })
    }
}

impl fmt::Debug for ThermStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ThermStream {{ len: {}, scale: {}, level: {}, value: {} }}",
            self.len(),
            self.scale,
            self.level(),
            self.value()
        )
    }
}

impl fmt::Display for ThermStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·{}", self.scale, self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_level_roundtrip() {
        for q in -4..=4 {
            let s = ThermStream::from_level(q, 8, 0.5).unwrap();
            assert_eq!(s.level(), q);
            assert!((s.value() - 0.5 * q as f64).abs() < 1e-12);
            assert!(s.is_normalized());
        }
    }

    #[test]
    fn rejects_odd_length_and_bad_scale() {
        assert!(ThermStream::from_level(0, 7, 1.0).is_err());
        assert!(ThermStream::new(Bitstream::zeros(4), 0.0).is_err());
        assert!(ThermStream::new(Bitstream::zeros(4), f64::NAN).is_err());
        assert!(ThermStream::from_level(5, 8, 1.0).is_err());
    }

    #[test]
    fn encode_clamped_rounds_and_clamps() {
        let s = ThermStream::encode_clamped(0.6, 4, 0.5);
        assert_eq!(s.level(), 1); // 0.6/0.5 = 1.2 → 1
        let s = ThermStream::encode_clamped(10.0, 4, 0.5);
        assert_eq!(s.level(), 2); // clamped to L/2
        let s = ThermStream::encode_clamped(-10.0, 4, 0.5);
        assert_eq!(s.level(), -2);
    }

    #[test]
    fn negate_flips_level() {
        let s = ThermStream::from_level(3, 8, 0.25).unwrap();
        let n = s.negate();
        assert_eq!(n.level(), -3);
        assert!((n.value() + s.value()).abs() < 1e-12);
    }

    #[test]
    fn value_is_permutation_invariant() {
        let bits = Bitstream::from_str_binary("01100101").unwrap();
        let s = ThermStream::new(bits, 1.0).unwrap();
        let n = s.normalized();
        assert_eq!(s.level(), n.level());
        assert!(n.is_normalized());
        assert!(!s.is_normalized());
    }

    #[test]
    fn with_scale_keeps_bits() {
        let s = ThermStream::from_level(2, 8, 1.0).unwrap();
        let t = s.with_scale(0.5).unwrap();
        assert_eq!(t.level(), 2);
        assert!((t.value() - 1.0).abs() < 1e-12);
        assert!(s.with_scale(-1.0).is_err());
    }

    #[test]
    fn max_value_matches_range() {
        let s = ThermStream::from_level(0, 16, 0.125).unwrap();
        assert!((s.max_value() - 1.0).abs() < 1e-12);
    }
}
