//! `ascend-cli` — the end-to-end ASCEND pipeline over artifact files.
//!
//! The paper's deployment flow, one subcommand per stage, chained through
//! persisted artifacts so no stage ever repeats another's work:
//!
//! ```text
//! ascend-cli train   --out model.ckpt          # QAT training  → checkpoint
//! ascend-cli compile --model model.ckpt \
//!                    --out engine.sceng        # checkpoint    → SC engine
//! ascend-cli eval    --engine engine.sceng     # engine        → accuracy
//! ascend-cli serve   --engine engine.sceng     # engine        → batched serving
//! ascend-cli info    --path any-artifact       # artifact introspection
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs; the build is
//! offline and dependency-free). Errors print to stderr and exit 2 for
//! usage problems, 1 for runtime failures.

#![forbid(unsafe_code)]
use std::path::{Path, PathBuf};

use ascend::engine::{EngineConfig, ScEngine};
use ascend::serve::ServeRequest;
use ascend::{BackendKind, Session};
use ascend_io::format::Artifact;
use ascend_io::ModelCheckpoint;
use ascend_vit::data::synth_cifar;
use ascend_vit::train::{evaluate, train_model, TrainConfig};
use ascend_vit::{PrecisionPlan, VitConfig, VitModel};

const USAGE: &str = "\
ascend-cli — train, compile, eval, and serve the ASCEND SC-ViT pipeline

USAGE:
    ascend-cli <train|compile|eval|serve|info> [--key value ...]

SUBCOMMANDS:
    train    Train a QAT ViT on SynthCIFAR and save a model checkpoint
             --out PATH (required)  --classes 4  --image 8  --patch 4
             --dim 16  --layers 2  --heads 2  --train-n 96  --test-n 48
             --data-seed 7  --epochs 3  --qat-epochs (= --epochs)
             --batch 16  --lr 0.001  --plan w2a2r16|w4a4r16|w16a16r16|fp
             --calib 16  --verbose true
    compile  Compile an SC engine from a checkpoint and save the artifact
             --model PATH (required)  --out PATH (required)
             --by 8  --s1 32  --s2 8  --k 3
    eval     Measure top-1 accuracy of a saved artifact on a chosen backend
             --engine PATH (required; engine artifact, or checkpoint)
             --backend sc|ref (sc; ref needs a checkpoint artifact)
             [--model PATH for float comparison]  [--fault-rate 0.0]
             [--fault-seed 7]  --test-n 48  --data-seed 7  --batch 16
    serve    Run the persistent serving pool on a saved artifact
             --engine PATH (required; engine artifact, or checkpoint)
             --backend sc|ref (sc)  --requests 8  --images 4
             --workers 0 (auto)  --micro-batch 4  --queue-depth 2
             --rounds 1 (repeated rounds reuse one worker pool)
             --data-seed 7
             With --listen ADDR:PORT, serve over HTTP/1.1 instead of the
             built-in smoke traffic (port 0 picks a free port):
             --listen 127.0.0.1:8080  --conn-workers 4
             --keep-alive-requests 1024
             --port-file PATH (write the bound address for scripts)
             --duration-secs 0 (0 = run until killed; otherwise drain
             gracefully after that many seconds)
             With repeated --artifact NAME=PATH pairs (instead of
             --engine), host many models behind one listener; each stays
             cold until its first POST /v1/models/NAME/infer:
             --artifact alpha=a.sceng --artifact beta=b.sceng
             --memory-budget-mb 0 (0 = unlimited; otherwise LRU-evict
             idle models to stay under the budget)
    profile  Per-stage timing breakdown of the forward pass
             --engine PATH (required; engine artifact, or checkpoint)
             --backend sc|ref (sc)  --images 16  --batch 4
             --data-seed 7  [--fault-rate 0.0]  [--fault-seed 7]
             Runs instrumented forwards and prints patch-embed /
             attention / softmax / GELU / MLP / head timings
             (observation is bit-neutral: same logits as the bare run)
    info     Describe any artifact file
             --path PATH (required)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return 0;
    }
    let result = Flags::parse(&args[1..]).and_then(|flags| match cmd.as_str() {
        "train" => cmd_train(flags),
        "compile" => cmd_compile(flags),
        "eval" => cmd_eval(flags),
        "serve" => cmd_serve(flags),
        "profile" => cmd_profile(flags),
        "info" => cmd_info(flags),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    });
    match result {
        Ok(()) => 0,
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            1
        }
        // Usage, UnknownFlag, DuplicateFlag: bad invocation, exit 2.
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            2
        }
    }
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum CliError {
    /// Bad invocation: print usage, exit 2.
    Usage(String),
    /// A flag no subcommand parameter consumed — named, never silently
    /// ignored (`--worker 4` must not run with defaults). Exit 2.
    UnknownFlag(String),
    /// The same flag given more than once — ambiguous, rejected by name
    /// rather than letting one occurrence win. Exit 2.
    DuplicateFlag(String),
    /// The pipeline itself failed: exit 1.
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => f.write_str(msg),
            CliError::UnknownFlag(name) => {
                write!(f, "unknown flag --{name} for this subcommand")
            }
            CliError::DuplicateFlag(name) => write!(f, "flag --{name} given twice"),
        }
    }
}

impl From<sc_core::ScError> for CliError {
    fn from(e: sc_core::ScError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

/// Flags that accumulate when repeated instead of being rejected as
/// duplicates: multi-model serving names one model per `--artifact
/// name=path` occurrence.
const REPEATABLE_FLAGS: &[&str] = &["artifact"];

/// Parsed `--key value` pairs with consumed-key tracking, so unknown or
/// misspelled flags are reported instead of silently ignored.
#[derive(Debug, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
    used: std::cell::RefCell<Vec<String>>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(CliError::Usage(format!("expected a --flag, got `{key}`")));
            };
            if name.is_empty() {
                return Err(CliError::Usage("empty flag name `--`".into()));
            }
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!("flag --{name} is missing its value")));
            };
            if !REPEATABLE_FLAGS.contains(&name) && pairs.iter().any(|(k, _)| k == name) {
                return Err(CliError::DuplicateFlag(name.to_string()));
            }
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs, used: std::cell::RefCell::new(Vec::new()) })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.used.borrow_mut().push(name.to_string());
        self.pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Every value a repeatable flag was given, in command-line order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.used.borrow_mut().push(name.to_string());
        self.pairs.iter().filter(|(k, _)| k == name).map(|(_, v)| v.as_str()).collect()
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{name} has invalid value `{v}`"))),
        }
    }

    /// Errors on any flag that no `get` call ever looked at, naming it.
    fn reject_unknown(&self) -> Result<(), CliError> {
        let used = self.used.borrow();
        for (k, _) in &self.pairs {
            if !used.iter().any(|u| u == k) {
                return Err(CliError::UnknownFlag(k.clone()));
            }
        }
        Ok(())
    }
}

fn parse_plan(s: &str) -> Result<PrecisionPlan, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "fp" => Ok(PrecisionPlan::fp()),
        "w2a2r16" => Ok(PrecisionPlan::w2_a2_r16()),
        "w4a4r16" => Ok(PrecisionPlan::w4_a4_r16()),
        "w16a2r16" => Ok(PrecisionPlan::w16_a2_r16()),
        "w16a16r16" => Ok(PrecisionPlan::w16_a16_r16()),
        other => Err(CliError::Usage(format!(
            "unknown plan `{other}` (expected fp|w2a2r16|w4a4r16|w16a2r16|w16a16r16)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_train(flags: Flags) -> Result<(), CliError> {
    let out = PathBuf::from(flags.require("out")?);
    let classes: usize = flags.get_parsed("classes", 4)?;
    let model_cfg = VitConfig {
        image: flags.get_parsed("image", 8)?,
        patch: flags.get_parsed("patch", 4)?,
        dim: flags.get_parsed("dim", 16)?,
        layers: flags.get_parsed("layers", 2)?,
        heads: flags.get_parsed("heads", 2)?,
        classes,
        ..Default::default()
    };
    let n_train: usize = flags.get_parsed("train-n", 96)?;
    let n_test: usize = flags.get_parsed("test-n", 48)?;
    let data_seed: u64 = flags.get_parsed("data-seed", 7)?;
    let epochs: usize = flags.get_parsed("epochs", 3)?;
    let qat_epochs: usize = flags.get_parsed("qat-epochs", epochs)?;
    let batch: usize = flags.get_parsed("batch", 16)?;
    let lr: f32 = flags.get_parsed("lr", 1e-3)?;
    let plan = parse_plan(flags.get("plan").unwrap_or("w2a2r16"))?;
    let calib_n: usize = flags.get_parsed("calib", 16)?;
    let verbose: bool = flags.get_parsed("verbose", false)?;
    flags.reject_unknown()?;
    if calib_n == 0 || calib_n > n_train {
        return Err(CliError::Usage(format!(
            "--calib {calib_n} must be in [1, --train-n = {n_train}]"
        )));
    }

    println!(
        "training {} ViT on SynthCIFAR-{classes} ({n_train} train / {n_test} test images)",
        plan.name()
    );
    let (train, test) = synth_cifar(classes, n_train, n_test, model_cfg.image, data_seed);
    let mut model = VitModel::new(model_cfg);
    let tc = TrainConfig { epochs, batch, lr, verbose, ..Default::default() };
    train_model(&mut model, None, &train, &test, &tc);
    println!(
        "  FP accuracy after {epochs} epochs: {:.2}%",
        evaluate(&model, &test, batch) * 100.0
    );

    let calib_idx: Vec<usize> = (0..calib_n).collect();
    let calib = train.patches(&calib_idx, model_cfg.patch);
    if !plan.is_fp() {
        model.set_plan(plan);
        model.calibrate_steps(&calib, calib_n);
        if qat_epochs > 0 {
            let qat = TrainConfig { epochs: qat_epochs, ..tc };
            train_model(&mut model, None, &train, &test, &qat);
        }
        println!(
            "  {} accuracy after {qat_epochs} QAT epochs: {:.2}%",
            plan.name(),
            evaluate(&model, &test, batch) * 100.0
        );
    }

    ModelCheckpoint::capture(&model).with_calib(calib, calib_n).save(&out)?;
    println!("checkpoint written to {}", out.display());
    Ok(())
}

fn cmd_compile(flags: Flags) -> Result<(), CliError> {
    let model_path = PathBuf::from(flags.require("model")?);
    let out = PathBuf::from(flags.require("out")?);
    let config = EngineConfig::from_quad(
        flags.get_parsed("by", 8)?,
        flags.get_parsed("s1", 32)?,
        flags.get_parsed("s2", 8)?,
        flags.get_parsed("k", 3)?,
    );
    flags.reject_unknown()?;

    let ckpt = ModelCheckpoint::load(&model_path)?;
    println!(
        "compiling SC engine from {} ({} plan, {} layers)",
        model_path.display(),
        ckpt.plan.name(),
        ckpt.config.layers
    );
    let engine = ScEngine::compile_from_checkpoint(&ckpt, config)?;
    let sm = engine.softmax_block().config();
    println!(
        "  softmax block: m={} Bx={} ax={:.4} By={} ay={:.4} s1={} s2={} k={}",
        sm.m, sm.bx, sm.ax, sm.by, sm.ay, sm.s1, sm.s2, sm.k
    );
    engine.save(&out)?;
    println!("engine artifact written to {}", out.display());
    Ok(())
}

/// Parses the shared `--backend sc|ref` flag.
fn parse_backend(flags: &Flags) -> Result<BackendKind, CliError> {
    match flags.get("backend") {
        None => Ok(BackendKind::Sc),
        Some(s) => s
            .parse()
            .map_err(|e: sc_core::ScError| CliError::Usage(e.to_string())),
    }
}

fn cmd_eval(flags: Flags) -> Result<(), CliError> {
    let engine_path = PathBuf::from(flags.require("engine")?);
    let backend = parse_backend(&flags)?;
    let model_path = flags.get("model").map(PathBuf::from);
    let fault_rate: f64 = flags.get_parsed("fault-rate", 0.0)?;
    let fault_seed: u64 = flags.get_parsed("fault-seed", 7)?;
    let n_test: usize = flags.get_parsed("test-n", 48)?;
    let data_seed: u64 = flags.get_parsed("data-seed", 7)?;
    let batch: usize = flags.get_parsed("batch", 16)?;
    flags.reject_unknown()?;

    // Gate on flag *presence*, not value, so an invalid rate (negative,
    // NaN, > 1) reaches the builder's validation instead of being
    // silently ignored as "no faults requested".
    let fault_requested = flags.get("fault-rate").is_some();
    if !fault_requested && flags.get("fault-seed").is_some() {
        return Err(CliError::Usage(
            "--fault-seed has no effect without --fault-rate".into(),
        ));
    }
    let mut builder = Session::builder().artifact(&engine_path).backend(backend);
    if fault_requested {
        builder = builder.fault(fault_rate, fault_seed);
    }
    let session = builder.build()?;
    let cfg = *session.backend().vit_config();
    let (_, test) = synth_cifar(cfg.classes, 1, n_test, cfg.image, data_seed);
    let acc = session.accuracy(&test, batch)? * 100.0;
    println!(
        "`{}` backend accuracy on SynthCIFAR-{} ({n_test} images): {acc:.2}%",
        session.backend().name(),
        cfg.classes
    );
    if let Some(mp) = model_path {
        let model = ModelCheckpoint::load(&mp)?.restore()?;
        let float_acc = evaluate(&model, &test, batch) * 100.0;
        println!("float (quantized) model accuracy:          {float_acc:.2}%");
    }
    Ok(())
}

fn cmd_serve(flags: Flags) -> Result<(), CliError> {
    // `--listen` switches the subcommand from self-generated smoke
    // traffic to the real HTTP front-end.
    if flags.pairs.iter().any(|(k, _)| k == "listen") {
        return cmd_serve_http(flags);
    }
    if flags.pairs.iter().any(|(k, _)| k == "artifact") {
        return Err(CliError::Usage(
            "--artifact name=path is multi-model HTTP serving; it requires --listen".into(),
        ));
    }
    let engine_path = PathBuf::from(flags.require("engine")?);
    let backend = parse_backend(&flags)?;
    let requests: usize = flags.get_parsed("requests", 8)?;
    let images: usize = flags.get_parsed("images", 4)?;
    let workers: usize = flags.get_parsed("workers", 0)?;
    let micro_batch: usize = flags.get_parsed("micro-batch", 4)?;
    let queue_depth: usize = flags.get_parsed("queue-depth", 2)?;
    let rounds: usize = flags.get_parsed("rounds", 1)?;
    let data_seed: u64 = flags.get_parsed("data-seed", 7)?;
    flags.reject_unknown()?;
    if requests == 0 || images == 0 || rounds == 0 {
        return Err(CliError::Usage(
            "--requests, --images, and --rounds must be non-zero".into(),
        ));
    }

    let session = Session::builder()
        .artifact(&engine_path)
        .backend(backend)
        .workers(workers)
        .micro_batch(micro_batch)
        .queue_depth(queue_depth)
        .build()?;
    let cfg = *session.backend().vit_config();
    let n = requests * images;
    let (_, test) = synth_cifar(cfg.classes, 1, n, cfg.image, data_seed);
    let mut reqs = Vec::with_capacity(requests);
    for r in 0..requests {
        let idx: Vec<usize> = (r * images..(r + 1) * images).collect();
        reqs.push(ServeRequest::new(test.patches(&idx, cfg.patch), images));
    }
    // One persistent pool for every round: the workers spawn here, once.
    let pool = session.runner()?;
    println!(
        "serving on the `{}` backend — persistent pool of {} workers, queue depth {}",
        session.backend().name(),
        pool.workers(),
        if queue_depth == 0 { "unbounded".to_string() } else { queue_depth.to_string() },
    );
    let mut outcome = pool.run(&reqs)?;
    println!("round 1/{rounds}: {}", outcome.report.summary());
    for round in 2..=rounds {
        let again = pool.run(&reqs)?;
        println!("round {round}/{rounds}: {}", again.report.summary());
        // Pool reuse must be invisible to the numerics: every round's
        // logits match round 1 bit for bit.
        let stable = outcome.logits.iter().zip(again.logits.iter()).all(|(a, b)| {
            a.data().iter().zip(b.data().iter()).all(|(x, y)| x.to_bits() == y.to_bits())
        });
        if !stable {
            return Err(CliError::Runtime(format!(
                "round {round} diverged from round 1 on the reused pool"
            )));
        }
        outcome.report = again.report;
    }
    println!(
        "request latencies: p50 {:.2} ms | p95 {:.2} ms | max {:.2} ms",
        outcome.report.latency_percentile(50.0).as_secs_f64() * 1e3,
        outcome.report.latency_percentile(95.0).as_secs_f64() * 1e3,
        outcome.report.latency_percentile(100.0).as_secs_f64() * 1e3,
    );

    // Serving is only trustworthy if parallel == serial, bit for bit —
    // for every backend, not just the SC engine.
    let mut identical = true;
    for (req, got) in reqs.iter().zip(outcome.logits.iter()) {
        let want = session.forward(&req.patches, req.images)?;
        identical &= want
            .data()
            .iter()
            .zip(got.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    }
    println!("bit-identical to serial forward: {identical}");
    if !identical {
        return Err(CliError::Runtime("parallel serving diverged from serial logits".into()));
    }
    Ok(())
}

/// `serve --listen ADDR:PORT`: the HTTP/1.1 front-end over the session's
/// persistent pool — non-blocking admission, load shedding with `503
/// Retry-After`, live `/metrics`, graceful drain.
///
/// With one or more `--artifact name=path` pairs the server hosts a
/// model registry instead of a single eager session: each model stays
/// cold until its first `POST /v1/models/{name}/infer`, and an optional
/// `--memory-budget-mb` bounds total residency via LRU eviction.
fn cmd_serve_http(flags: Flags) -> Result<(), CliError> {
    use ascend_http::{HttpConfig, HttpServer};

    if !flags.get_all("artifact").is_empty() {
        return cmd_serve_http_registry(flags);
    }
    let engine_path = PathBuf::from(flags.require("engine")?);
    let backend = parse_backend(&flags)?;
    let listen = flags.require("listen")?.to_string();
    let workers: usize = flags.get_parsed("workers", 0)?;
    let micro_batch: usize = flags.get_parsed("micro-batch", 4)?;
    // Absent --queue-depth keeps the session's bounded default
    // (4 × workers); `--queue-depth 0` is the explicit unbounded opt-in.
    let queue_depth: Option<usize> = match flags.get("queue-depth") {
        None => None,
        Some(_) => Some(flags.get_parsed("queue-depth", 0)?),
    };
    let conn_workers: usize = flags.get_parsed("conn-workers", 4)?;
    let keep_alive_requests: usize = flags.get_parsed("keep-alive-requests", 1024)?;
    let port_file = flags.get("port-file").map(PathBuf::from);
    let duration_secs: u64 = flags.get_parsed("duration-secs", 0)?;
    flags.reject_unknown()?;

    let mut builder = Session::builder()
        .artifact(&engine_path)
        .backend(backend)
        .workers(workers)
        .micro_batch(micro_batch);
    if let Some(depth) = queue_depth {
        builder = builder.queue_depth(depth);
    }
    let session = std::sync::Arc::new(builder.build()?);

    let mut http = HttpConfig::new(listen);
    http.conn_workers = conn_workers;
    http.keep_alive_requests = keep_alive_requests;
    let server = HttpServer::bind(std::sync::Arc::clone(&session), http)?;
    let addr = server.local_addr();
    let pool = session.runner()?;
    println!(
        "serving `{}` over http on {addr} — POST /v1/infer, GET /metrics \
         ({} pool workers, queue depth {}, {} connection handlers)",
        session.backend().name(),
        pool.workers(),
        if pool.queue_capacity() == 0 {
            "unbounded".to_string()
        } else {
            pool.queue_capacity().to_string()
        },
        conn_workers,
    );
    run_http_server(server, port_file, duration_secs)
}

/// Multi-model `serve --listen`: every `--artifact name=path` registers a
/// lazily-warmed model behind `POST /v1/models/{name}/infer`.
fn cmd_serve_http_registry(flags: Flags) -> Result<(), CliError> {
    use ascend_http::{HttpConfig, HttpServer};
    use ascend_registry::{ModelRegistry, ModelSpec, RegistryConfig};

    let mut models: Vec<(String, PathBuf)> = Vec::new();
    for pair in flags.get_all("artifact") {
        let Some((name, path)) = pair.split_once('=') else {
            return Err(CliError::Usage(format!(
                "--artifact expects name=path, got `{pair}`"
            )));
        };
        if name.is_empty() || path.is_empty() {
            return Err(CliError::Usage(format!(
                "--artifact expects name=path with both sides non-empty, got `{pair}`"
            )));
        }
        models.push((name.to_string(), PathBuf::from(path)));
    }
    if flags.get("engine").is_some() {
        return Err(CliError::Usage(
            "--engine serves a single model; with --artifact name=path every model \
             comes from the registry"
                .into(),
        ));
    }
    let backend = parse_backend(&flags)?;
    let listen = flags.require("listen")?.to_string();
    let workers: usize = flags.get_parsed("workers", 0)?;
    let micro_batch: usize = flags.get_parsed("micro-batch", 4)?;
    let queue_depth: Option<usize> = match flags.get("queue-depth") {
        None => None,
        Some(_) => Some(flags.get_parsed("queue-depth", 0)?),
    };
    let conn_workers: usize = flags.get_parsed("conn-workers", 4)?;
    let keep_alive_requests: usize = flags.get_parsed("keep-alive-requests", 1024)?;
    let port_file = flags.get("port-file").map(PathBuf::from);
    let duration_secs: u64 = flags.get_parsed("duration-secs", 0)?;
    let memory_budget_mb: usize = flags.get_parsed("memory-budget-mb", 0)?;
    flags.reject_unknown()?;

    // Same bounded default as the single-model path: 4 × resolved workers.
    let base = ascend::serve::ServeConfig { workers, micro_batch, queue_depth: 0 };
    let serve = ascend::serve::ServeConfig {
        queue_depth: queue_depth.unwrap_or(4 * base.resolved_workers()),
        ..base
    };
    let registry = std::sync::Arc::new(ModelRegistry::new(RegistryConfig {
        memory_budget_bytes: memory_budget_mb.saturating_mul(1024 * 1024),
        ..Default::default()
    }));
    for (name, path) in &models {
        registry
            .register(ModelSpec::artifact(name.as_str(), path.as_path()).backend(backend).serve(serve))?;
    }

    let mut http = HttpConfig::new(listen);
    http.conn_workers = conn_workers;
    http.keep_alive_requests = keep_alive_requests;
    let server = HttpServer::bind_registry(std::sync::Arc::clone(&registry), http)?;
    let addr = server.local_addr();
    println!(
        "serving {} models over http on {addr} — POST /v1/models/{{name}}/infer, \
         GET /healthz, GET /metrics (memory budget {}, {} connection handlers)",
        models.len(),
        if memory_budget_mb == 0 {
            "unlimited".to_string()
        } else {
            format!("{memory_budget_mb} MiB")
        },
        conn_workers,
    );
    for (name, path) in &models {
        println!("  model `{name}` <- {} (cold; warms on first request)", path.display());
    }
    run_http_server(server, port_file, duration_secs)
}

/// Shared tail of both HTTP serving modes: publish the bound address for
/// scripts, then either drain after a deadline or run until killed.
fn run_http_server(
    server: ascend_http::HttpServer,
    port_file: Option<PathBuf>,
    duration_secs: u64,
) -> Result<(), CliError> {
    let addr = server.local_addr();
    if let Some(path) = port_file {
        // Written atomically-enough for scripts: the address only appears
        // once the listener is live.
        std::fs::write(&path, addr.to_string())
            .map_err(|e| CliError::Runtime(format!("writing --port-file {path:?}: {e}")))?;
    }
    if duration_secs > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration_secs));
        server.shutdown_handle().shutdown();
        server.join();
        println!("drained after {duration_secs}s");
    } else {
        // Serve until the process is killed: join blocks while the accept
        // loop runs.
        server.join();
    }
    Ok(())
}

/// `profile`: run instrumented forwards and print the per-stage table.
///
/// The instrumented backend is the *same computation* as the bare one —
/// stage observation carries no data and never touches the math — so the
/// command also proves it, comparing instrumented logits bit-for-bit
/// against an uninstrumented forward of the same session's backend.
fn cmd_profile(flags: Flags) -> Result<(), CliError> {
    use ascend::StageStats;
    use std::sync::Arc;

    let engine_path = PathBuf::from(flags.require("engine")?);
    let backend = parse_backend(&flags)?;
    let images: usize = flags.get_parsed("images", 16)?;
    let batch: usize = flags.get_parsed("batch", 4)?;
    let data_seed: u64 = flags.get_parsed("data-seed", 7)?;
    let fault_rate: f64 = flags.get_parsed("fault-rate", 0.0)?;
    let fault_seed: u64 = flags.get_parsed("fault-seed", 7)?;
    flags.reject_unknown()?;
    if images == 0 || batch == 0 {
        return Err(CliError::Usage("--images and --batch must be non-zero".into()));
    }
    let fault_requested = flags.get("fault-rate").is_some();
    if !fault_requested && flags.get("fault-seed").is_some() {
        return Err(CliError::Usage("--fault-seed has no effect without --fault-rate".into()));
    }

    let stats = Arc::new(StageStats::new());
    let mut builder = Session::builder()
        .artifact(&engine_path)
        .backend(backend)
        .instrument(Arc::clone(&stats));
    let mut bare = Session::builder().artifact(&engine_path).backend(backend);
    if fault_requested {
        builder = builder.fault(fault_rate, fault_seed);
        bare = bare.fault(fault_rate, fault_seed);
    }
    let session = builder.build()?;
    let bare = bare.build()?;
    let cfg = *session.backend().vit_config();
    let (_, test) = synth_cifar(cfg.classes, 1, images, cfg.image, data_seed);
    let idx: Vec<usize> = (0..images).collect();
    let mut identical = true;
    for chunk in idx.chunks(batch) {
        let patches = test.patches(chunk, cfg.patch);
        let instrumented = session.forward(&patches, chunk.len())?;
        let reference = bare.forward(&patches, chunk.len())?;
        identical &= instrumented
            .data()
            .iter()
            .zip(reference.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    }

    println!(
        "profiled {} forwards on the `{}` backend ({images} images, batch {batch}):",
        stats.forwards(),
        session.backend().name(),
    );
    println!();
    print!("{}", stats.table());
    println!();
    println!("bit-identical to uninstrumented forward: {identical}");
    if !identical {
        return Err(CliError::Runtime(
            "instrumented forward diverged from the bare forward".into(),
        ));
    }
    Ok(())
}

fn cmd_info(flags: Flags) -> Result<(), CliError> {
    let path = PathBuf::from(flags.require("path")?);
    flags.reject_unknown()?;
    let art = Artifact::read_from(&path)?;
    let total: usize = art.section_index().iter().map(|(_, n)| n).sum();
    println!(
        "{}: {:?} artifact, {} sections, {total} payload bytes",
        path.display(),
        art.kind(),
        art.section_index().len()
    );
    for (tag, len) in art.section_index() {
        println!("  `{tag}`  {len} bytes");
    }
    describe(&path, &art);
    Ok(())
}

/// Kind-specific summary lines for `info`.
fn describe(path: &Path, art: &Artifact) {
    match art.kind() {
        ascend_io::ArtifactKind::ModelCheckpoint => {
            if let Ok(ckpt) = ModelCheckpoint::from_artifact(art) {
                let scalars: usize = ckpt.params.iter().map(|t| t.numel()).sum();
                println!(
                    "  model: {} layers, dim {}, {} classes, plan {}, {scalars} scalars, calib: {}",
                    ckpt.config.layers,
                    ckpt.config.dim,
                    ckpt.config.classes,
                    ckpt.plan.name(),
                    ckpt.calib
                        .as_ref()
                        .map_or("none".to_string(), |c| format!("{} images", c.batch)),
                );
            } else {
                eprintln!(
                    "warning: {} verified but does not decode as a checkpoint",
                    path.display()
                );
            }
        }
        ascend_io::ArtifactKind::Engine => {
            if let Ok(engine) = ScEngine::from_artifact(art) {
                let cfg = engine.vit_config();
                let sm = engine.softmax_block().config();
                println!(
                    "  engine: {} layers, dim {}, {} classes, plan {}, softmax [By={} s1={} s2={} k={}]",
                    cfg.layers,
                    cfg.dim,
                    cfg.classes,
                    engine.plan().name(),
                    sm.by,
                    sm.s1,
                    sm.s2,
                    sm.k,
                );
            } else {
                eprintln!(
                    "warning: {} verified but does not decode as an engine",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Flags::parse(&args).unwrap()
    }

    fn http_roundtrip(
        addr: std::net::SocketAddr,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> ascend_http::client::ClientResponse {
        let stream =
            std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(2))
                .expect("connect to served address");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        ascend_http::client::write_request(&mut writer, method, target, body, true)
            .expect("write request");
        ascend_http::client::read_response(&mut reader).expect("read response")
    }

    #[test]
    fn flags_parse_key_value_pairs() {
        let f = flags(&[("out", "m.ckpt"), ("epochs", "5")]);
        assert_eq!(f.get("out"), Some("m.ckpt"));
        assert_eq!(f.get_parsed("epochs", 0usize).unwrap(), 5);
        assert_eq!(f.get_parsed("batch", 16usize).unwrap(), 16);
        assert!(f.reject_unknown().is_ok());
    }

    #[test]
    fn flags_reject_malformed_input() {
        assert!(Flags::parse(&["positional".to_string()]).is_err());
        assert!(Flags::parse(&["--dangling".to_string()]).is_err());
        assert!(Flags::parse(&["--".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn duplicated_flags_are_a_typed_error_naming_the_flag() {
        let twice = ["--workers", "1", "--workers", "2"].map(String::from);
        match Flags::parse(&twice) {
            Err(CliError::DuplicateFlag(name)) => assert_eq!(name, "workers"),
            other => panic!("expected DuplicateFlag(workers), got {other:?}"),
        }
        let err = Flags::parse(&twice).unwrap_err();
        assert!(err.to_string().contains("--workers"), "message must name the flag: {err}");
    }

    #[test]
    fn unknown_flags_are_a_typed_error_naming_the_flag() {
        // `--worker 4` (singular typo) must never run with defaults.
        let f = flags(&[("worker", "4")]);
        match f.reject_unknown() {
            Err(CliError::UnknownFlag(name)) => assert_eq!(name, "worker"),
            other => panic!("expected UnknownFlag(worker), got {other:?}"),
        }
        let err = f.reject_unknown().unwrap_err();
        assert!(err.to_string().contains("--worker"), "message must name the flag: {err}");
    }

    #[test]
    fn unknown_and_duplicated_flags_exit_2_end_to_end() {
        let typo = ["serve", "--engine", "x.sceng", "--worker", "4"].map(String::from);
        assert_eq!(run(&typo), 2, "--worker typo must exit 2, not run with defaults");
        let twice =
            ["serve", "--engine", "x.sceng", "--workers", "1", "--workers", "2"].map(String::from);
        assert_eq!(run(&twice), 2, "duplicated --workers must exit 2");
    }

    #[test]
    fn repeatable_artifact_flags_accumulate_in_order() {
        let args = ["--artifact", "a=x.sceng", "--artifact", "b=y.sceng"].map(String::from);
        let f = Flags::parse(&args).expect("repeated --artifact must parse");
        assert_eq!(f.get_all("artifact"), vec!["a=x.sceng", "b=y.sceng"]);
        assert!(f.reject_unknown().is_ok(), "get_all must mark the flag consumed");
        // Absence is an empty list, not an error.
        assert!(flags(&[("listen", "x")]).get_all("artifact").is_empty());
    }

    #[test]
    fn registry_flag_misuse_exits_2_before_touching_any_file() {
        let no_listen = ["serve", "--artifact", "a=x.sceng"].map(String::from);
        assert_eq!(run(&no_listen), 2, "--artifact without --listen must be a usage error");

        let bad_pair =
            ["serve", "--listen", "127.0.0.1:0", "--artifact", "noequals"].map(String::from);
        assert_eq!(run(&bad_pair), 2, "--artifact without name=path must be a usage error");

        let empty_name =
            ["serve", "--listen", "127.0.0.1:0", "--artifact", "=x.sceng"].map(String::from);
        assert_eq!(run(&empty_name), 2, "--artifact with an empty name must be a usage error");

        let both = [
            "serve", "--listen", "127.0.0.1:0", "--artifact", "a=x.sceng", "--engine",
            "y.sceng",
        ]
        .map(String::from);
        assert_eq!(run(&both), 2, "--engine and --artifact together must be a usage error");
    }

    #[test]
    fn invalid_numeric_values_are_usage_errors() {
        let f = flags(&[("epochs", "three")]);
        assert!(matches!(f.get_parsed("epochs", 0usize), Err(CliError::Usage(_))));
    }

    #[test]
    fn plan_names_parse_case_insensitively() {
        assert_eq!(parse_plan("W2A2R16").unwrap(), PrecisionPlan::w2_a2_r16());
        assert_eq!(parse_plan("fp").unwrap(), PrecisionPlan::fp());
        assert!(parse_plan("w3a3r3").is_err());
    }

    #[test]
    fn unknown_subcommand_and_missing_flags_exit_2() {
        assert_eq!(run(&["frobnicate".to_string()]), 2);
        assert_eq!(run(&["compile".to_string()]), 2);
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn unknown_backend_is_a_usage_error() {
        let args =
            ["eval", "--engine", "whatever.sceng", "--backend", "fpga"].map(String::from);
        assert_eq!(run(&args), 2, "bad --backend must exit 2 before touching the file");
    }

    #[test]
    fn missing_artifact_file_exits_1() {
        let args = ["eval", "--engine", "/nonexistent/engine.sceng"].map(String::from);
        assert_eq!(run(&args), 1);
    }

    #[test]
    fn full_pipeline_through_artifact_files() {
        // The e2e smoke at miniature scale: train → compile → eval → serve
        // entirely through files in a temp dir.
        let dir = std::env::temp_dir().join(format!("ascend-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("m.ckpt").display().to_string();
        let eng = dir.join("e.sceng").display().to_string();

        let train = [
            "train", "--out", &ckpt, "--epochs", "1", "--qat-epochs", "0", "--train-n", "32",
            "--test-n", "16", "--calib", "8",
        ]
        .map(String::from);
        assert_eq!(run(&train), 0, "train failed");

        let compile = ["compile", "--model", &ckpt, "--out", &eng].map(String::from);
        assert_eq!(run(&compile), 0, "compile failed");

        let eval = ["eval", "--engine", &eng, "--test-n", "16", "--model", &ckpt]
            .map(String::from);
        assert_eq!(run(&eval), 0, "eval failed");

        // The float-reference backend evaluates straight from the
        // checkpoint — no compiled engine artifact needed.
        let eval_ref = [
            "eval", "--engine", &ckpt, "--backend", "ref", "--test-n", "16",
        ]
        .map(String::from);
        assert_eq!(run(&eval_ref), 0, "eval --backend ref failed");

        // The SC backend also compiles on the fly from a checkpoint.
        let eval_sc_ckpt = [
            "eval", "--engine", &ckpt, "--backend", "sc", "--test-n", "8",
        ]
        .map(String::from);
        assert_eq!(run(&eval_sc_ckpt), 0, "eval --backend sc from checkpoint failed");

        // Fault injection rides along as a decorator.
        let eval_fault = [
            "eval", "--engine", &eng, "--fault-rate", "0.01", "--test-n", "8",
        ]
        .map(String::from);
        assert_eq!(run(&eval_fault), 0, "eval --fault-rate failed");

        // An out-of-range rate must be rejected, not silently un-faulted.
        let bad_fault =
            ["eval", "--engine", &eng, "--fault-rate", "-0.5"].map(String::from);
        assert_eq!(run(&bad_fault), 1, "negative fault rate must fail");

        // A seed without a rate is a no-op the user should hear about.
        let orphan_seed =
            ["eval", "--engine", &eng, "--fault-seed", "9"].map(String::from);
        assert_eq!(run(&orphan_seed), 2, "--fault-seed without --fault-rate must be usage error");

        // Per-stage profiling: the command itself enforces bit identity
        // between the instrumented and bare forwards before exiting 0.
        let profile =
            ["profile", "--engine", &eng, "--images", "4", "--batch", "2"].map(String::from);
        assert_eq!(run(&profile), 0, "profile failed");

        // Profiling composes with the fault decorator and with the ref
        // backend compiled from a checkpoint.
        let profile_fault = [
            "profile", "--engine", &eng, "--images", "2", "--batch", "2",
            "--fault-rate", "0.01",
        ]
        .map(String::from);
        assert_eq!(run(&profile_fault), 0, "profile --fault-rate failed");
        let profile_ref = [
            "profile", "--engine", &ckpt, "--backend", "ref", "--images", "2", "--batch", "2",
        ]
        .map(String::from);
        assert_eq!(run(&profile_ref), 0, "profile --backend ref failed");

        let serve = [
            "serve", "--engine", &eng, "--requests", "3", "--images", "2", "--workers", "2",
        ]
        .map(String::from);
        assert_eq!(run(&serve), 0, "serve failed");

        // Repeated rounds reuse one persistent pool through a bounded
        // queue (backpressure path) and must stay bit-stable.
        let serve_rounds = [
            "serve", "--engine", &eng, "--requests", "3", "--images", "1", "--workers", "2",
            "--rounds", "3", "--queue-depth", "1", "--micro-batch", "1",
        ]
        .map(String::from);
        assert_eq!(run(&serve_rounds), 0, "serve --rounds over a bounded queue failed");

        // More workers than requests: the pool must still drain cleanly.
        let serve_wide = [
            "serve", "--engine", &eng, "--requests", "2", "--images", "1", "--workers", "6",
        ]
        .map(String::from);
        assert_eq!(run(&serve_wide), 0, "serve with workers > requests failed");

        let serve_ref = [
            "serve", "--engine", &ckpt, "--backend", "ref", "--requests", "2", "--images",
            "2", "--workers", "2",
        ]
        .map(String::from);
        assert_eq!(run(&serve_ref), 0, "serve --backend ref failed");

        // A compiled engine artifact cannot feed the reference backend:
        // runtime failure (exit 1), not a usage error.
        let ref_from_engine =
            ["eval", "--engine", &eng, "--backend", "ref"].map(String::from);
        assert_eq!(run(&ref_from_engine), 1, "ref from engine artifact must fail");

        for p in [&ckpt, &eng] {
            let info = ["info", "--path", p].map(String::from);
            assert_eq!(run(&info), 0, "info failed for {p}");
        }

        // HTTP serving leg: `serve --listen` on a free port, bounded for
        // time via --duration-secs, address discovered via --port-file.
        let port_file = dir.join("addr.txt");
        let pf = port_file.display().to_string();
        let serve_http = [
            "serve", "--engine", &eng, "--listen", "127.0.0.1:0", "--port-file", &pf,
            "--duration-secs", "3", "--workers", "2", "--queue-depth", "4",
        ]
        .map(String::from);
        let server = std::thread::spawn(move || run(&serve_http));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never wrote --port-file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let stream = std::net::TcpStream::connect_timeout(
            &addr,
            std::time::Duration::from_secs(2),
        )
        .expect("connect to served address");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        ascend_http::client::write_request(&mut writer, "GET", "/metrics", &[], true)
            .expect("metrics request");
        let response =
            ascend_http::client::read_response(&mut reader).expect("metrics response");
        assert_eq!(response.status, 200, "GET /metrics over `serve --listen` failed");
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("ascend_queue_capacity 4\n"), "{text}");
        assert_eq!(server.join().unwrap(), 0, "serve --listen failed");

        // Multi-model registry leg: two names over the same compiled
        // engine, each lazily warmed behind POST /v1/models/{name}/infer.
        let registry_pf = dir.join("addr2.txt");
        let rpf = registry_pf.display().to_string();
        let alpha = format!("alpha={eng}");
        let beta = format!("beta={eng}");
        let serve_registry = [
            "serve", "--listen", "127.0.0.1:0", "--artifact", &alpha, "--artifact", &beta,
            "--memory-budget-mb", "64", "--port-file", &rpf, "--duration-secs", "4",
            "--workers", "2",
        ]
        .map(String::from);
        let server = std::thread::spawn(move || run(&serve_registry));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&registry_pf) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "registry never wrote --port-file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        // Everything is cold, so the process reports not-ready.
        assert_eq!(http_roundtrip(addr, "GET", "/healthz", &[]).status, 503);
        // Trained at the defaults: 8×8 image, 4×4 patches → 4 patches of
        // 3·4·4 floats each.
        let payload = ascend_http::encode_infer_request(&vec![0.1f32; 4 * 48], 1);
        let ok = http_roundtrip(addr, "POST", "/v1/models/alpha/infer", &payload);
        assert_eq!(
            ok.status,
            200,
            "registry infer failed: {}",
            String::from_utf8_lossy(&ok.body)
        );
        let health = http_roundtrip(addr, "GET", "/healthz", &[]);
        assert_eq!(health.status, 200, "one warm model must make the process ready");
        let body = String::from_utf8(health.body).unwrap();
        assert!(body.contains("alpha=warm") && body.contains("beta=cold"), "{body}");
        assert_eq!(http_roundtrip(addr, "POST", "/v1/models/ghost/infer", &payload).status, 404);
        let scrape = http_roundtrip(addr, "GET", "/metrics", &[]);
        let text = String::from_utf8(scrape.body).unwrap();
        assert!(text.contains("ascend_model_state{model=\"alpha\"} 2"), "{text}");
        assert!(text.contains("ascend_model_state{model=\"beta\"} 0"), "{text}");
        assert_eq!(server.join().unwrap(), 0, "registry serve exited nonzero");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
