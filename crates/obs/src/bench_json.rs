//! The `BENCH_serve.json` perf-trajectory writer.
//!
//! ROADMAP item 2 tracks serving performance across PRs via `BENCH_*.json`
//! artifacts at the repo root. Two tools contribute records — the HTTP
//! loadgen and the criterion throughput bench — so the file is a JSON
//! object with one entry per source, and each writer *merges* its own
//! record instead of clobbering the file:
//!
//! ```json
//! {
//!   "loadgen": { "images_per_s": 812.4, "p50_ms": 9.1, ... },
//!   "throughput": { "images_per_s": 903.0, ... }
//! }
//! ```
//!
//! The merge parser is a tolerant top-level scanner (tracks string/escape
//! state and brace depth); a malformed existing file degrades to "keep only
//! my record" rather than an error.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::trace::escape_json;

/// One field value in a [`BenchRecord`].
#[derive(Debug, Clone)]
enum Value {
    Num(f64),
    Int(u64),
    Text(String),
}

/// A named benchmark record destined for `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    name: String,
    fields: Vec<(String, Value)>,
}

impl BenchRecord {
    /// A record for the given source name (e.g. `"loadgen"`).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// The source name this record is filed under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a floating-point field (non-finite values are written as 0).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        let v = if v.is_finite() { v } else { 0.0 };
        self.fields.push((key.to_string(), Value::Num(v)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Value::Int(v)));
        self
    }

    /// Adds a string field.
    pub fn text(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Value::Text(v.to_string())));
        self
    }

    /// Renders this record's value as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = match v {
                Value::Num(n) => write!(out, "\"{}\": {:.4}", escape_json(k), n),
                Value::Int(n) => write!(out, "\"{}\": {}", escape_json(k), n),
                Value::Text(s) => write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(s)),
            };
        }
        out.push('}');
        out
    }

    /// Merges this record into the JSON object file at `path`: existing
    /// entries under other names are preserved, the entry under this
    /// record's name is replaced, and entries are written sorted by name.
    pub fn write_merged(&self, path: &Path) -> io::Result<()> {
        let existing = fs::read_to_string(path).unwrap_or_default();
        let mut entries = parse_top_level(&existing);
        entries.retain(|(k, _)| k != &self.name);
        entries.push((self.name.clone(), self.to_json()));
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let _ = write!(out, "  \"{}\": {}", escape_json(k), v.trim());
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        fs::write(path, out)
    }
}

/// Splits the top level of a JSON object into `(key, raw_value)` pairs.
///
/// Tolerant by design: tracks string/escape state and `{}`/`[]` depth, and
/// returns whatever well-formed prefix it finds (empty on garbage input).
fn parse_top_level(s: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0usize;
    // Find the opening brace.
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    if i >= bytes.len() {
        return entries;
    }
    i += 1;
    loop {
        // Skip whitespace and commas to the next key (or the closing brace).
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b'}' {
            return entries;
        }
        if bytes[i] != b'"' {
            return entries; // malformed: bail with what we have
        }
        // Parse the key string.
        i += 1;
        let key_start = i;
        let mut escaped = false;
        while i < bytes.len() {
            if escaped {
                escaped = false;
            } else if bytes[i] == b'\\' {
                escaped = true;
            } else if bytes[i] == b'"' {
                break;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return entries;
        }
        let key = String::from_utf8_lossy(&bytes[key_start..i]).into_owned();
        i += 1;
        // Skip to the colon, then the value.
        while i < bytes.len() && bytes[i] != b':' {
            i += 1;
        }
        if i >= bytes.len() {
            return entries;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Capture the raw value: scan to the next top-level ',' or '}'.
        let val_start = i;
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_string {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_string = false;
                }
            } else {
                match b {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b',' | b'}' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        let value = String::from_utf8_lossy(&bytes[val_start..i])
            .trim()
            .to_string();
        if !value.is_empty() {
            entries.push((key, value));
        }
        if i >= bytes.len() {
            return entries;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_single_line_json() {
        let r = BenchRecord::new("loadgen")
            .num("images_per_s", 812.5)
            .int("shed", 3)
            .text("backend", "sc");
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"images_per_s\": 812.5000, \"shed\": 3, \"backend\": \"sc\"}"
        );
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        let r = BenchRecord::new("x").num("bad", f64::INFINITY).num("nan", f64::NAN);
        assert_eq!(r.to_json(), "{\"bad\": 0.0000, \"nan\": 0.0000}");
    }

    #[test]
    fn parse_top_level_handles_nesting_and_strings() {
        let s = "{\n  \"a\": {\"x\": [1, 2], \"s\": \"br}ace\"},\n  \"b\": 3\n}\n";
        let entries = parse_top_level(s);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[0].1, "{\"x\": [1, 2], \"s\": \"br}ace\"}");
        assert_eq!(entries[1], ("b".to_string(), "3".to_string()));
    }

    #[test]
    fn parse_top_level_tolerates_garbage() {
        assert!(parse_top_level("").is_empty());
        assert!(parse_top_level("not json").is_empty());
        assert_eq!(parse_top_level("{\"k\": 1").len(), 1);
    }

    #[test]
    fn write_merged_preserves_other_entries() {
        let dir = std::env::temp_dir().join(format!(
            "ascend_obs_bench_{}_{}",
            std::process::id(),
            TraceIdHelper::unique()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");

        BenchRecord::new("throughput")
            .num("images_per_s", 900.0)
            .write_merged(&path)
            .unwrap();
        BenchRecord::new("loadgen")
            .num("images_per_s", 800.0)
            .int("shed", 2)
            .write_merged(&path)
            .unwrap();
        // Re-writing loadgen replaces its entry, keeps throughput.
        BenchRecord::new("loadgen")
            .num("images_per_s", 850.0)
            .write_merged(&path)
            .unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"throughput\": {\"images_per_s\": 900.0000}"));
        assert!(text.contains("\"loadgen\": {\"images_per_s\": 850.0000}"));
        assert!(!text.contains("800.0"));
        assert!(!text.contains("\"shed\""));
        let entries = parse_top_level(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "loadgen"); // sorted

        std::fs::remove_dir_all(&dir).ok();
    }

    // Tiny helper: unique suffix without Instant/SystemTime plumbing.
    struct TraceIdHelper;
    impl TraceIdHelper {
        fn unique() -> u64 {
            crate::trace::TraceId::mint().0
        }
    }
}
