//! Lock-free metric primitives and the named registry behind `/metrics`.
//!
//! All update paths are single relaxed atomic operations — no locks, no
//! allocation, no panics — so they are safe to call from pool workers and
//! connection threads at any rate. The registry's mutex is touched only at
//! registration time (startup) and render time (a scrape), never on the
//! metric update path. Counts may be mutually inconsistent by a handful of
//! in-flight updates at render time; snapshots re-derive totals from the
//! bucket array so every rendered histogram is internally consistent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, in-flight count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of nanoseconds, so the
/// full `u64` nanosecond range (584 years) is covered with no configuration.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 latency histogram on relaxed atomics.
///
/// Bucket `i` counts observations whose nanosecond value `v` satisfies
/// `ilog2(v) == i` (bucket 0 additionally holds `v == 0`), i.e. bucket `i`
/// spans `[2^i, 2^(i+1) - 1]` ns. Relative resolution is a factor of two
/// everywhere — coarse, but monotone, allocation-free, and mergeable — and
/// percentile queries return the bucket *bounds*, making the error explicit.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = if ns == 0 { 0 } else { ns.ilog2() as usize };
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one duration observation.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket array, safe to query at leisure.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets
                    .get(i)
                    .map_or(0, |b| b.load(Ordering::Relaxed))
            }),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Inclusive lower bound of bucket `i`, in nanoseconds.
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i.min(63)
    }
}

/// Inclusive upper bound of bucket `i`, in nanoseconds.
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (`buckets[i]` spans `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all observed nanosecond values.
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// Total observation count (derived from the buckets, so it is always
    /// consistent with them even under concurrent updates).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Nearest-rank percentile bounds: the `(lo, hi)` nanosecond range of
    /// the bucket containing the `p`-th percentile observation. The exact
    /// nearest-rank value over the same samples always lies in `[lo, hi]`.
    /// Returns `(0, 0)` for an empty histogram.
    pub fn percentile_bounds_ns(&self, p: f64) -> (u64, u64) {
        let n = self.count();
        if n == 0 {
            return (0, 0);
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: rank = ceil(p/100 * n), clamped to [1, n] — the same
        // definition ServeReport::latency_percentile uses.
        let rank = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return (bucket_lo(i), bucket_hi(i));
            }
        }
        // Unreachable when count() > 0, but stay total.
        (0, 0)
    }

    /// Conservative (upper-bound) nearest-rank percentile in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.percentile_bounds_ns(p).1
    }

    /// Conservative nearest-rank percentile as a duration.
    pub fn percentile(&self, p: f64) -> Duration {
        Duration::from_nanos(self.percentile_ns(p))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics renderable as Prometheus text.
///
/// Registration is idempotent: registering the same name with the same kind
/// returns the existing handle, so independent components can share a metric
/// by name. A name re-registered with a *different* kind yields a detached
/// handle (usable, but never rendered) rather than panicking or clobbering.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn find(entries: &[Entry], name: &str) -> Option<usize> {
        entries.iter().position(|e| e.name == name)
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        if let Some(i) = Self::find(&entries, name) {
            if let Some(Metric::Counter(c)) = entries.get(i).map(|e| &e.metric) {
                return Arc::clone(c);
            }
            return Arc::new(Counter::new());
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        if let Some(i) = Self::find(&entries, name) {
            if let Some(Metric::Gauge(g)) = entries.get(i).map(|e| &e.metric) {
                return Arc::clone(g);
            }
            return Arc::new(Gauge::new());
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        if let Some(i) = Self::find(&entries, name) {
            if let Some(Metric::Histogram(h)) = entries.get(i).map(|e| &e.metric) {
                return Arc::clone(h);
            }
            return Arc::new(Histogram::new());
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Renders every registered metric as Prometheus text exposition,
    /// sorted by metric name for a stable scrape.
    pub fn render(&self) -> String {
        let entries = self.lock();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            let na = entries.get(a).map(|e| e.name.as_str()).unwrap_or("");
            let nb = entries.get(b).map(|e| e.name.as_str()).unwrap_or("");
            na.cmp(nb)
        });
        let mut out = String::new();
        for i in order {
            let Some(e) = entries.get(i) else { continue };
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.kind()));
            match &e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", e.name, c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", e.name, g.get()));
                }
                Metric::Histogram(h) => {
                    // ascend-lint: allow(lock-order) -- Histogram::snapshot is lock-free (atomic loads); the by-name callee union confuses it with TraceBuffer::snapshot, which does lock
                    render_histogram(&mut out, &e.name, &h.snapshot());
                }
            }
        }
        out
    }
}

/// Renders one histogram in Prometheus exposition format: cumulative
/// `_bucket{le="..."}` lines (seconds) up to the highest populated bucket,
/// then `+Inf`, `_sum`, and `_count`.
fn render_histogram(out: &mut String, name: &str, snap: &HistSnapshot) {
    let count = snap.count();
    let top = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i.min(62));
    let mut cum = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate().take(top + 1) {
        cum = cum.saturating_add(c);
        let le = bucket_hi(i) as f64 / 1e9;
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
    out.push_str(&format!("{name}_sum {}\n", snap.sum_ns as f64 / 1e9));
    out.push_str(&format!("{name}_count {count}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_bucket_placement() {
        let h = Histogram::new();
        h.observe_ns(0); // bucket 0
        h.observe_ns(1); // bucket 0
        h.observe_ns(2); // bucket 1
        h.observe_ns(3); // bucket 1
        h.observe_ns(1024); // bucket 10
        h.observe_ns(u64::MAX); // bucket 63
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[63], 1);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Each bucket's hi is one below the next bucket's lo; no gaps, no
        // overlap, and the last bucket reaches u64::MAX.
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1) - 1, "bucket {i}");
        }
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(63), u64::MAX);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile_bounds_ns(50.0), (0, 0));
        assert_eq!(h.snapshot().percentile_ns(99.0), 0);
    }

    #[test]
    fn percentile_bounds_bracket_exact_value() {
        let h = Histogram::new();
        let samples: Vec<u64> = vec![10, 20, 35, 900, 1_000_000, 5, 77, 77, 2, 450];
        for &v in &samples {
            h.observe_ns(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = s.percentile_bounds_ns(p);
            assert!(
                lo <= exact && exact <= hi,
                "p{p}: exact {exact} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn registry_is_idempotent_per_name_and_kind() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        assert!(Arc::ptr_eq(&a, &b));
        // Same name, different kind: detached handle, render unchanged.
        let h = r.histogram("x_total", "oops");
        h.observe_ns(5);
        a.inc();
        let text = r.render();
        assert_eq!(text.matches("# TYPE x_total").count(), 1);
        assert!(text.contains("x_total 1\n"));
    }

    #[test]
    fn render_shapes_prometheus_text() {
        let r = Registry::new();
        r.counter("ascend_requests_total", "requests").add(3);
        r.gauge("ascend_queue_depth", "depth").set(2);
        let h = r.histogram("ascend_latency_seconds", "latency");
        h.observe(Duration::from_micros(100));
        h.observe(Duration::from_micros(200));
        let text = r.render();
        assert!(text.contains("# TYPE ascend_requests_total counter"));
        assert!(text.contains("ascend_requests_total 3"));
        assert!(text.contains("# TYPE ascend_queue_depth gauge"));
        assert!(text.contains("ascend_queue_depth 2"));
        assert!(text.contains("# TYPE ascend_latency_seconds histogram"));
        assert!(text.contains("ascend_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ascend_latency_seconds_count 2"));
        // Buckets are cumulative and end at the total count.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("ascend_latency_seconds_bucket"))
            .collect();
        let mut last = 0u64;
        for line in &bucket_lines {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
        assert_eq!(last, 2);
    }
}
