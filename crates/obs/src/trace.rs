//! Request tracing: trace ids, spans, and the bounded trace ring.
//!
//! A [`TraceId`] is minted once per request at admission (the HTTP handler
//! or the CLI entry point) and carried through the `ServePool` job so the
//! worker that executes the request can attribute its spans. Spans land in
//! a [`TraceBuffer`] — a bounded ring that keeps the most recent spans and
//! renders them as chrome://tracing "complete" (`"ph":"X"`) events, viewable
//! in `chrome://tracing` or Perfetto via `GET /debug/trace`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A process-unique request identifier.
///
/// Ids are minted from a process-global counter starting at 1; id 0 never
/// occurs, so it can serve as an "untraced" sentinel in wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the next process-unique trace id.
    pub fn mint() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// One completed span: a named interval attributed to a trace and a worker.
///
/// Timestamps are microseconds since the owning [`TraceBuffer`]'s creation,
/// which is exactly the `ts` convention chrome://tracing expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The request this span belongs to.
    pub trace_id: TraceId,
    /// Span name (e.g. `"queue_wait"`, `"service"`).
    pub name: &'static str,
    /// Worker index (rendered as the chrome `tid`); 0 for non-pool spans.
    pub worker: u32,
    /// Start, in microseconds since the buffer epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A bounded ring of the most recent [`Span`]s.
///
/// Recording takes a short mutex (push + possible pop-front); the buffer is
/// written on the request path but only after the response latency has been
/// determined, so the lock never sits inside a timed region.
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Instant,
    capacity: usize,
    spans: Mutex<VecDeque<Span>>,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Span>> {
        match self.spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The instant all span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained spans.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Records a completed interval `[start, start + dur)` for `trace_id`,
    /// evicting the oldest span if the ring is full. A `start` predating the
    /// buffer epoch clamps to the epoch.
    pub fn record(
        &self,
        trace_id: TraceId,
        name: &'static str,
        worker: u32,
        start: Instant,
        dur: Duration,
    ) {
        let start_us =
            u64::try_from(start.saturating_duration_since(self.epoch).as_micros())
                .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let span = Span {
            trace_id,
            name,
            worker,
            start_us,
            dur_us,
        };
        let mut spans = self.lock();
        if spans.len() >= self.capacity {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// A copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        self.lock().iter().copied().collect()
    }

    /// Drops all retained spans.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Renders the retained spans as a chrome://tracing JSON object
    /// (`{"traceEvents": [...]}` with complete `"ph":"X"` events). Load the
    /// output directly in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(64 + spans.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{}}}}}",
                escape_json(s.name),
                s.start_us,
                s.dur_us,
                s.worker,
                s.trace_id.0
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let buf = TraceBuffer::new(3);
        let t0 = buf.epoch();
        for i in 0..5u64 {
            buf.record(TraceId(i + 1), "service", 0, t0, Duration::from_micros(i));
        }
        let spans = buf.snapshot();
        assert_eq!(spans.len(), 3);
        let ids: Vec<u64> = spans.iter().map(|s| s.trace_id.0).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn record_clamps_pre_epoch_starts() {
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let buf = TraceBuffer::new(4);
        buf.record(TraceId(1), "queue_wait", 2, before, Duration::from_micros(9));
        let spans = buf.snapshot();
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].dur_us, 9);
        assert_eq!(spans[0].worker, 2);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let buf = TraceBuffer::new(8);
        let t0 = buf.epoch();
        buf.record(TraceId(7), "queue_wait", 1, t0, Duration::from_micros(3));
        buf.record(TraceId(7), "service", 1, t0, Duration::from_micros(40));
        let json = buf.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        assert!(json.contains("\"name\":\"queue_wait\""));
        assert!(json.contains("\"name\":\"service\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"trace_id\":7"));
        // Balanced braces/brackets outside strings (names contain none here).
        let braces = json.matches('{').count();
        assert_eq!(braces, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_buffer_renders_empty_event_list() {
        let buf = TraceBuffer::new(2);
        assert!(buf.is_empty());
        assert_eq!(
            buf.to_chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
