//! ascend-obs: the workspace's single observability and timing authority.
//!
//! Every other crate in the workspace is either *compute* (the SC kernels,
//! tensor ops, the engine forward) or *serving glue* (pool, HTTP front-end,
//! CLI). Compute must stay clock-free so outputs are bit-reproducible — the
//! `no-wallclock-in-forward` lint denies `Instant::now()` there — yet the
//! serving layer has to answer "where did this request spend its time?".
//! This crate resolves the tension by concentrating all timing in one place:
//!
//! - [`metrics`] — lock-free metric primitives ([`Counter`], [`Gauge`],
//!   log2-bucketed [`Histogram`]) plus a named [`Registry`] that renders
//!   Prometheus text for `GET /metrics`. Update paths are single relaxed
//!   atomic ops; the registry mutex is touched only at registration and
//!   render time.
//! - [`trace`] — request tracing: a [`TraceId`] minted at admission flows
//!   through `ServePool` jobs; workers record queue-wait and service spans
//!   into a bounded [`TraceBuffer`] ring, exportable as chrome://tracing
//!   JSON via `GET /debug/trace`.
//! - [`stage`] — the clock-free [`StageObserver`] protocol. The engine's
//!   forward emits `enter`/`exit` events for each [`Stage`] (patch-embed,
//!   attention, softmax, GELU, MLP, head) without ever reading a clock;
//!   the [`StageTimer`] implementation here is the sanctioned place where
//!   those events become durations.
//! - [`bench_json`] — the `BENCH_serve.json` perf-trajectory writer shared
//!   by loadgen and the throughput bench: each tool merges its own record
//!   into the file without clobbering the others.
//!
//! The crate is std-only, dependency-free, `#![forbid(unsafe_code)]`, and
//! held to the hot-path (panic-free) lint class: a metrics update must never
//! be able to take down a worker thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;
pub mod metrics;
pub mod stage;
pub mod trace;

pub use bench_json::BenchRecord;
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, Registry, HIST_BUCKETS};
pub use stage::{NoopObserver, Stage, StageObserver, StageTimer};
pub use trace::{Span, TraceBuffer, TraceId};
