//! The clock-free stage-observer protocol and its timing implementation.
//!
//! The engine's `forward_one` must never read a clock (the
//! `no-wallclock-in-forward` lint denies it), yet per-stage profiling needs
//! to know where a forward spends its time. The split: compute code emits
//! *events* — [`StageObserver::enter`]/[`StageObserver::exit`] around each
//! [`Stage`] — and only the observer implementation turns events into
//! durations. [`StageTimer`] (here, in the sanctioned timing crate) is that
//! implementation; [`NoopObserver`] is the zero-cost default the bare
//! forward path uses.
//!
//! Stages are non-overlapping by convention: the engine closes `Attention`
//! before opening `Softmax` and re-opens it after, so per-stage totals are
//! additive and sum to (approximately) the whole forward.

use std::time::{Duration, Instant};

/// The profiled phases of one ViT forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Patch-embedding linear + sequence assembly (CLS token, positions).
    PatchEmbed,
    /// Attention linear algebra: q/k/v projections, scores, merge, output
    /// projection (softmax excluded — it is its own stage).
    Attention,
    /// The SC softmax over attention score rows.
    Softmax,
    /// The SC GELU inside the MLP block.
    Gelu,
    /// MLP linear algebra: fc1/fc2 and the surrounding affine/quant steps
    /// (GELU excluded).
    Mlp,
    /// Final layer-norm affine + classification head linear.
    Head,
}

/// Number of distinct stages.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in forward-pass order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::PatchEmbed,
        Stage::Attention,
        Stage::Softmax,
        Stage::Gelu,
        Stage::Mlp,
        Stage::Head,
    ];

    /// Stable dense index in `0..STAGE_COUNT`.
    pub fn index(self) -> usize {
        match self {
            Stage::PatchEmbed => 0,
            Stage::Attention => 1,
            Stage::Softmax => 2,
            Stage::Gelu => 3,
            Stage::Mlp => 4,
            Stage::Head => 5,
        }
    }

    /// Snake-case stage name, stable across releases (used as the
    /// `stage="..."` label value in metric names and in the profile table).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::PatchEmbed => "patch_embed",
            Stage::Attention => "attention",
            Stage::Softmax => "softmax",
            Stage::Gelu => "gelu",
            Stage::Mlp => "mlp",
            Stage::Head => "head",
        }
    }
}

/// Receiver for stage boundary events emitted by an instrumented forward.
///
/// Implementations must tolerate unbalanced events (an `exit` without a
/// matching `enter` is ignored) — the emitting code may bail out early on
/// error paths.
pub trait StageObserver {
    /// A stage begins now.
    fn enter(&mut self, stage: Stage);
    /// The most recently entered `stage` ends now.
    fn exit(&mut self, stage: Stage);
}

/// The do-nothing observer used by the uninstrumented forward path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl StageObserver for NoopObserver {
    fn enter(&mut self, _stage: Stage) {}
    fn exit(&mut self, _stage: Stage) {}
}

/// A [`StageObserver`] that accumulates wall-clock time per stage.
///
/// Multiple `enter`/`exit` pairs for the same stage accumulate (a 12-layer
/// model enters `Attention` twelve times per forward); `exit` without a
/// pending `enter` is ignored.
#[derive(Debug, Default, Clone)]
pub struct StageTimer {
    open: [Option<Instant>; STAGE_COUNT],
    total_ns: [u64; STAGE_COUNT],
    calls: [u64; STAGE_COUNT],
}

impl StageTimer {
    /// A timer with all stage totals at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated time in `stage` across all completed `enter`/`exit`
    /// pairs observed so far.
    pub fn total(&self, stage: Stage) -> Duration {
        Duration::from_nanos(
            self.total_ns
                .get(stage.index())
                .copied()
                .unwrap_or(0),
        )
    }

    /// Number of completed `enter`/`exit` pairs for `stage`.
    pub fn calls(&self, stage: Stage) -> u64 {
        self.calls.get(stage.index()).copied().unwrap_or(0)
    }

    /// Sum of all stage totals.
    pub fn grand_total(&self) -> Duration {
        Duration::from_nanos(self.total_ns.iter().sum())
    }

    /// Resets all totals and pending entries.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl StageObserver for StageTimer {
    fn enter(&mut self, stage: Stage) {
        if let Some(slot) = self.open.get_mut(stage.index()) {
            *slot = Some(Instant::now());
        }
    }

    fn exit(&mut self, stage: Stage) {
        let idx = stage.index();
        let Some(started) = self.open.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let elapsed = started.elapsed();
        if let Some(total) = self.total_ns.get_mut(idx) {
            *total =
                total.saturating_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        if let Some(calls) = self.calls.get_mut(idx) {
            *calls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_match_all_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }

    #[test]
    fn timer_accumulates_across_pairs() {
        let mut t = StageTimer::new();
        for _ in 0..3 {
            t.enter(Stage::Softmax);
            std::thread::sleep(Duration::from_millis(1));
            t.exit(Stage::Softmax);
        }
        assert_eq!(t.calls(Stage::Softmax), 3);
        assert!(t.total(Stage::Softmax) >= Duration::from_millis(3));
        assert_eq!(t.calls(Stage::Gelu), 0);
        assert_eq!(t.total(Stage::Gelu), Duration::ZERO);
        assert_eq!(t.grand_total(), t.total(Stage::Softmax));
    }

    #[test]
    fn unmatched_exit_is_ignored() {
        let mut t = StageTimer::new();
        t.exit(Stage::Head);
        assert_eq!(t.calls(Stage::Head), 0);
        assert_eq!(t.total(Stage::Head), Duration::ZERO);
    }

    #[test]
    fn reset_clears_totals() {
        let mut t = StageTimer::new();
        t.enter(Stage::Mlp);
        t.exit(Stage::Mlp);
        assert_eq!(t.calls(Stage::Mlp), 1);
        t.reset();
        assert_eq!(t.calls(Stage::Mlp), 0);
        assert_eq!(t.grand_total(), Duration::ZERO);
    }

    #[test]
    fn noop_observer_is_inert() {
        let mut n = NoopObserver;
        n.enter(Stage::Attention);
        n.exit(Stage::Attention);
    }
}
