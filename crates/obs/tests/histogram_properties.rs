//! Property tests for the log2 histogram: cumulative monotonicity and
//! nearest-rank percentile agreement with an exact sorted-sample oracle
//! (the same nearest-rank definition `ServeReport::latency_percentile`
//! uses, so bracketing the oracle here is what makes the `/metrics`
//! percentiles trustworthy against the report's).

use ascend_obs::{HistSnapshot, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

fn cumulative(snap: &HistSnapshot) -> Vec<u64> {
    let mut cum = Vec::with_capacity(HIST_BUCKETS);
    let mut acc = 0u64;
    for &c in &snap.buckets {
        acc += c;
        cum.push(acc);
    }
    cum
}

/// Exact nearest-rank percentile over raw samples (the ServeReport rule).
fn exact_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn cumulative_counts_are_monotone_and_end_at_total(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_ns(v);
        }
        let snap = h.snapshot();
        let cum = cumulative(&snap);
        for w in cum.windows(2) {
            prop_assert!(w[0] <= w[1], "cumulative counts decreased");
        }
        prop_assert_eq!(*cum.last().unwrap(), samples.len() as u64);
        prop_assert_eq!(snap.count(), samples.len() as u64);
    }

    #[test]
    fn percentile_bounds_bracket_exact_nearest_rank(
        samples in proptest::collection::vec(0u64..10_000_000_000u64, 1..150),
        p in 0.0f64..100.0
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_ns(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_nearest_rank(&sorted, p);
        let (lo, hi) = h.snapshot().percentile_bounds_ns(p);
        prop_assert!(
            lo <= exact && exact <= hi,
            "p{}: exact {} outside histogram bucket [{}, {}]", p, exact, lo, hi
        );
    }

    #[test]
    fn percentiles_are_monotone_in_p(
        samples in proptest::collection::vec(0u64..1_000_000_000u64, 1..100)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_ns(v);
        }
        let snap = h.snapshot();
        let mut last = 0u64;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = snap.percentile_ns(p);
            prop_assert!(v >= last, "p{} = {} < previous {}", p, v, last);
            last = v;
        }
    }

    #[test]
    fn sum_matches_sample_sum(
        samples in proptest::collection::vec(0u64..1_000_000u64, 0..100)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe_ns(v);
        }
        prop_assert_eq!(h.snapshot().sum_ns, samples.iter().sum::<u64>());
    }
}
